package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alltoall/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenConfig pins every source of nondeterminism: one worker, the serial
// engine, a fixed seed, and partitions scaled to at most 16 nodes so the
// rendering test stays fast. Output is byte-identical at any worker or
// shard count (the engines guarantee it); the pinned values just make that
// assumption visible in the fixture name.
func goldenConfig() experiments.Config {
	return experiments.Config{MaxNodes: 16, Seed: 1, LargeBytes: 240, Workers: 1, Shards: 1}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/aabench -update` to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s rendering drifted from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestGoldenTables locks down the ASCII table rendering end to end:
// experiment runner -> result rows -> report.Table -> Write. Any change to
// column layout, number formatting, or the simulated values themselves
// shows up as a golden diff.
func TestGoldenTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, id := range []string{"table1", "table4"} {
		t.Run(id, func(t *testing.T) {
			tbl, err := experiments.Catalog[id](goldenConfig())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			var b strings.Builder
			if err := tbl.Write(&b); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, id+".golden", []byte(b.String()))
		})
	}
}

// TestGoldenCSV locks down the CSV emitter on the same experiment, so both
// output paths of -exp are pinned.
func TestGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tbl, err := experiments.Catalog["table1"](goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.csv.golden", []byte(b.String()))
}

// TestGoldenBenchJSON pins the -bench-json document layout. Timings are
// nondeterministic, so the fixture marshals a fixed report literal: what the
// golden locks is the schema - field names, order, schema_version - not the
// measured values. Consumers parsing the file break loudly here first.
func TestGoldenBenchJSON(t *testing.T) {
	perf := benchReport{
		SchemaVersion: benchSchemaVersion,
		GoVersion:     "go1.22.0",
		GOMAXPROCS:    8,
		Workers:       4,
		Shards:        0,
		Coalesce:      "",
		Experiments: []benchExperiment{{
			Experiment:      "table1",
			Seconds:         1.5,
			Runs:            12,
			Events:          1000000,
			QueuedEvents:    720000,
			Packets:         24000,
			EventsPerSec:    666666.67,
			EventsPerPacket: 30,
			RunsPerSec:      8,
		}},
		TotalSeconds:    1.5,
		TotalRuns:       12,
		TotalEvents:     1000000,
		TotalQueued:     720000,
		TotalPackets:    24000,
		EventsPerSec:    666666.67,
		EventsPerPacket: 30,
	}
	buf, err := json.MarshalIndent(perf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bench.json.golden", append(buf, '\n'))
}

// TestGoldenTraceJSONL pins the -trace-out JSONL stream end to end: a seeded
// deterministic experiment run through a TraceSink, with per-run observation
// summaries and window traces. Locks both the record schema (schema_version,
// record kinds) and the simulated byte counts themselves.
func TestGoldenTraceJSONL(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := goldenConfig()
	cfg.Trace = experiments.NewTraceSink(true)
	cfg.TracePrefix = "table1"
	if _, err := experiments.Catalog["table1"](cfg); err != nil {
		t.Fatalf("table1: %v", err)
	}
	var b strings.Builder
	if err := cfg.Trace.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.trace.golden", []byte(b.String()))
}

// TestGoldenCheckedIdentical asserts the invariant checker is observation-
// free: running the same experiment with Config.Check enabled must render
// byte-identical tables (the checker may only read the simulation state,
// never perturb it).
func TestGoldenCheckedIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := goldenConfig()
	cfg.Check = true
	tbl, err := experiments.Catalog["table1"](cfg)
	if err != nil {
		t.Fatalf("checked table1: %v", err)
	}
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1.golden", []byte(b.String()))
}
