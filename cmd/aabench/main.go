// Command aabench regenerates the paper's tables and figures on the
// simulated Blue Gene/L torus.
//
// Usage:
//
//	aabench -exp table1            # one experiment
//	aabench -exp all               # everything (long)
//	aabench -exp table3 -full      # true machine sizes (hours)
//	aabench -exp fig6 -csv         # CSV series instead of ASCII
//
// By default partitions larger than -maxnodes (1024) are scaled down by
// halving every dimension, preserving the aspect ratio that drives the
// paper's phenomena; rows are annotated with the simulated size.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alltoall/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id: table1..table4, fig1..fig7, or all")
	full := flag.Bool("full", false, "simulate true machine sizes (no scaling; very slow)")
	maxNodes := flag.Int("maxnodes", 1024, "scale partitions above this many nodes")
	seed := flag.Uint64("seed", 1, "randomization seed")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	large := flag.Int("large", 0, "override the large-message payload bytes")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: aabench -exp <id>")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experiments.Order)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Full:       *full,
		MaxNodes:   *maxNodes,
		Seed:       *seed,
		LargeBytes: *large,
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Order
	}
	for _, id := range ids {
		runner, ok := experiments.Catalog[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "aabench: unknown experiment %q (have %v)\n", id, experiments.Order)
			os.Exit(2)
		}
		start := time.Now()
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aabench: %s: %v\n", id, err)
			if len(ids) == 1 {
				os.Exit(1)
			}
			continue // keep regenerating the remaining experiments
		}
		if *csv {
			if err := table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "aabench: %v\n", err)
				os.Exit(1)
			}
		} else {
			if err := table.Write(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "aabench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
