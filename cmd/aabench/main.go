// Command aabench regenerates the paper's tables and figures on the
// simulated Blue Gene/L torus.
//
// Usage:
//
//	aabench -exp table1            # one experiment
//	aabench -exp all               # everything (long)
//	aabench -exp table3 -full      # true machine sizes (hours)
//	aabench -exp fig6 -csv         # CSV series instead of ASCII
//	aabench -exp table2 -j 4       # limit the worker pool to 4 cores
//	aabench -exp all -bench-json BENCH.json   # machine-readable perf record
//
// By default partitions larger than -maxnodes (1024) are scaled down by
// halving every dimension, preserving the aspect ratio that drives the
// paper's phenomena; rows are annotated with the simulated size.
//
// Rows of an experiment are independent simulations and run concurrently on
// all cores (-j overrides; -j 1 is serial). When an experiment has fewer
// rows than cores, single runs are additionally parallelized on the sharded
// event engine (-shards overrides the automatic choice). Output is
// byte-identical at any worker or shard count. Per-row progress goes to
// stderr so stdout stays clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"alltoall/internal/experiments"
	"alltoall/internal/parallel"
	"alltoall/internal/report"
)

// benchSchemaVersion identifies the -bench-json document layout; bump on
// any breaking change to field names or semantics.
//
// v2: added queued_events, packets, events_per_packet (per experiment and
// as totals). events counts logical simulator actions; queued_events counts
// actual event-queue pops, which coalescing makes smaller, and
// events_per_packet = queued_events/packets is the hardware-independent
// event-volume metric the CI regression gate compares across commits.
//
// v3: added sync (the -sync protocol selection) and the sharded engine's
// synchronization counters, per experiment and as totals:
// sync_horizon_advances (windows/clock advances), sync_blocked_waits
// (barrier crossings or blocked backoff episodes), sync_blocked_wait_ns
// (wall-clock spent blocked, async only), sync_cross_shard_events and
// sync_cross_shard_bytes (boundary traffic). All zero for unsharded runs.
const benchSchemaVersion = 3

// benchExperiment is one experiment's perf record in the -bench-json file.
type benchExperiment struct {
	Experiment      string  `json:"experiment"`
	Seconds         float64 `json:"seconds"`
	Runs            int64   `json:"runs"`
	Events          int64   `json:"events"`
	QueuedEvents    int64   `json:"queued_events"`
	Packets         int64   `json:"packets"`
	EventsPerSec    float64 `json:"events_per_sec"`
	EventsPerPacket float64 `json:"events_per_packet"`
	RunsPerSec      float64 `json:"runs_per_sec"`

	SyncAdvances int64 `json:"sync_horizon_advances"`
	SyncWaits    int64 `json:"sync_blocked_waits"`
	SyncWaitNs   int64 `json:"sync_blocked_wait_ns"`
	SyncXPkts    int64 `json:"sync_cross_shard_events"`
	SyncXBytes   int64 `json:"sync_cross_shard_bytes"`
}

// benchReport is the -bench-json document: enough context to compare
// apples to apples across commits and machines.
type benchReport struct {
	SchemaVersion   int               `json:"schema_version"`
	GoVersion       string            `json:"go_version"`
	GOMAXPROCS      int               `json:"gomaxprocs"`
	Workers         int               `json:"workers"`
	Shards          int               `json:"shards"`   // 0 = automatic per run
	Coalesce        string            `json:"coalesce"` // "" = default (on)
	Sync            string            `json:"sync"`     // "" = default (async)
	Experiments     []benchExperiment `json:"experiments"`
	TotalSeconds    float64           `json:"total_seconds"`
	TotalRuns       int64             `json:"total_runs"`
	TotalEvents     int64             `json:"total_events"`
	TotalQueued     int64             `json:"total_queued_events"`
	TotalPackets    int64             `json:"total_packets"`
	EventsPerSec    float64           `json:"events_per_sec"`
	EventsPerPacket float64           `json:"events_per_packet"`

	TotalSyncAdvances int64 `json:"total_sync_horizon_advances"`
	TotalSyncWaits    int64 `json:"total_sync_blocked_waits"`
	TotalSyncWaitNs   int64 `json:"total_sync_blocked_wait_ns"`
	TotalSyncXPkts    int64 `json:"total_sync_cross_shard_events"`
	TotalSyncXBytes   int64 `json:"total_sync_cross_shard_bytes"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aabench: "+format+"\n", args...)
	os.Exit(2)
}

// observedTable renders one experiment's per-run observations: where each
// run's traffic concentrated and how much head-of-line blocking it saw.
func observedTable(id string, sink *experiments.TraceSink) *report.Table {
	t := report.NewTable(fmt.Sprintf("%s observed (schema v%d)", id, experiments.ObserveSchemaVersion),
		"run", "sat", "util", "max link", "hol", "inj fifo B")
	for _, r := range sink.Runs() {
		if !strings.HasPrefix(r.Label, id+" ") {
			continue
		}
		s := r.Summary
		var u float64
		for _, v := range s.UtilByDim {
			if v > u {
				u = v
			}
		}
		t.AddRow(strings.TrimPrefix(r.Label, id+" "), s.SaturatedDim,
			fmt.Sprintf("%.1f%%", 100*u), fmt.Sprintf("%.1f%%", 100*s.MaxLinkUtil),
			s.HoLBlocked, s.MaxInjFIFOBytes)
	}
	return t
}

func main() {
	exp := flag.String("exp", "", "experiment id: table1..table4, fig1..fig7, or all")
	full := flag.Bool("full", false, "simulate true machine sizes (no scaling; very slow)")
	maxNodes := flag.Int("maxnodes", 1024, "scale partitions above this many nodes")
	seed := flag.Uint64("seed", 1, "randomization seed")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	large := flag.Int("large", 0, "override the large-message payload bytes")
	workers := flag.Int("j", 0, "parallel workers per experiment (0 = all cores, 1 = serial)")
	shards := flag.Int("shards", 0, "event-engine shards per run (0 = auto, 1 = serial engine)")
	checkInv := flag.Bool("check", false, "run every simulation with the runtime invariant checker (~1.4x slower)")
	eventq := flag.String("eventq", "", "event queue: calendar (default) or heap (identical results; perf ablation)")
	coalesce := flag.String("coalesce", "", "same-tick event coalescing: on (default) or off (identical results; perf ablation)")
	syncMode := flag.String("sync", "", "sharded-engine protocol: async (default) or bsp barriers (identical results; perf ablation; only affects runs with shards > 1)")
	faults := flag.String("faults", "", `link-fault schedule applied to every run, semicolon-separated "t:node:dir:action" events (see aasim -faults; node ids refer to the scaled partitions)`)
	observeRuns := flag.Bool("observe", false, "instrument every run and print a per-run observation table after each experiment")
	traceOut := flag.String("trace-out", "", "write every run's windowed observation trace as one JSONL file (implies -observe)")
	quiet := flag.Bool("quiet", false, "suppress per-row progress lines on stderr")
	benchJSON := flag.String("bench-json", "", "write a machine-readable perf report to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: aabench -exp <id>")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experiments.Order)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Full:       *full,
		MaxNodes:   *maxNodes,
		Seed:       *seed,
		LargeBytes: *large,
		Workers:    *workers,
		Shards:     *shards,
		Check:      *checkInv,
		EventQueue: *eventq,
		Coalesce:   *coalesce,
		Sync:       *syncMode,
		Faults:     *faults,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Order
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	perf := benchReport{
		SchemaVersion: benchSchemaVersion,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       parallel.Workers(*workers),
		Shards:        *shards,
		Coalesce:      *coalesce,
		Sync:          *syncMode,
	}
	var sink *experiments.TraceSink
	if *observeRuns || *traceOut != "" {
		sink = experiments.NewTraceSink(*traceOut != "")
	}
	failed := false
	for _, id := range ids {
		runner, ok := experiments.Catalog[id]
		if !ok {
			fatalf("unknown experiment %q (have %v)", id, experiments.Order)
		}
		metrics := &experiments.Metrics{}
		cfg.Metrics = metrics
		cfg.Trace = sink
		cfg.TracePrefix = id
		start := time.Now()
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aabench: %s: %v\n", id, err)
			failed = true
			if len(ids) == 1 {
				os.Exit(1)
			}
			continue // keep regenerating the remaining experiments
		}
		elapsed := time.Since(start)
		sec := elapsed.Seconds()
		perf.Experiments = append(perf.Experiments, benchExperiment{
			Experiment:      id,
			Seconds:         sec,
			Runs:            metrics.Runs(),
			Events:          metrics.Events(),
			QueuedEvents:    metrics.QueuedEvents(),
			Packets:         metrics.Packets(),
			EventsPerSec:    float64(metrics.Events()) / sec,
			EventsPerPacket: metrics.EventsPerPacket(),
			RunsPerSec:      float64(metrics.Runs()) / sec,
			SyncAdvances:    metrics.SyncAdvances(),
			SyncWaits:       metrics.SyncWaits(),
			SyncWaitNs:      metrics.SyncWaitNs(),
			SyncXPkts:       metrics.CrossShardEvents(),
			SyncXBytes:      metrics.CrossShardBytes(),
		})
		perf.TotalSeconds += sec
		perf.TotalRuns += metrics.Runs()
		perf.TotalEvents += metrics.Events()
		perf.TotalQueued += metrics.QueuedEvents()
		perf.TotalPackets += metrics.Packets()
		perf.TotalSyncAdvances += metrics.SyncAdvances()
		perf.TotalSyncWaits += metrics.SyncWaits()
		perf.TotalSyncWaitNs += metrics.SyncWaitNs()
		perf.TotalSyncXPkts += metrics.CrossShardEvents()
		perf.TotalSyncXBytes += metrics.CrossShardBytes()
		if *csv {
			if err := table.WriteCSV(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		} else {
			if err := table.Write(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			ev := float64(metrics.Events())
			fmt.Printf("[%s completed in %s: %d workers, %d runs, %.1fM events, %.2fM events/s, %.1f queued events/packet]\n\n",
				id, elapsed.Round(time.Millisecond), parallel.Workers(*workers),
				metrics.Runs(), ev/1e6, ev/1e6/sec, metrics.EventsPerPacket())
		}
		if *observeRuns && !*csv {
			if err := observedTable(id, sink).Write(os.Stdout); err != nil {
				fatalf("%v", err)
			}
			fmt.Println()
		}
	}
	if perf.TotalSeconds > 0 {
		perf.EventsPerSec = float64(perf.TotalEvents) / perf.TotalSeconds
	}
	if perf.TotalPackets > 0 {
		perf.EventsPerPacket = float64(perf.TotalQueued) / float64(perf.TotalPackets)
	}
	if *benchJSON != "" {
		buf, err := json.MarshalIndent(perf, "", "  ")
		if err != nil {
			fatalf("-bench-json: %v", err)
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			fatalf("-bench-json: %v", err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("-trace-out: %v", err)
		}
		if err := sink.WriteJSONL(f); err != nil {
			f.Close()
			fatalf("-trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("-trace-out: %v", err)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("-memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("-memprofile: %v", err)
		}
		f.Close()
	}
	if failed {
		os.Exit(1)
	}
}
