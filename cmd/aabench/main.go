// Command aabench regenerates the paper's tables and figures on the
// simulated Blue Gene/L torus.
//
// Usage:
//
//	aabench -exp table1            # one experiment
//	aabench -exp all               # everything (long)
//	aabench -exp table3 -full      # true machine sizes (hours)
//	aabench -exp fig6 -csv         # CSV series instead of ASCII
//	aabench -exp table2 -j 4       # limit the worker pool to 4 cores
//
// By default partitions larger than -maxnodes (1024) are scaled down by
// halving every dimension, preserving the aspect ratio that drives the
// paper's phenomena; rows are annotated with the simulated size.
//
// Rows of an experiment are independent simulations and run concurrently on
// all cores (-j overrides; -j 1 is serial). Output is byte-identical at any
// worker count. Per-row progress goes to stderr so stdout stays clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"alltoall/internal/experiments"
	"alltoall/internal/parallel"
)

func main() {
	exp := flag.String("exp", "", "experiment id: table1..table4, fig1..fig7, or all")
	full := flag.Bool("full", false, "simulate true machine sizes (no scaling; very slow)")
	maxNodes := flag.Int("maxnodes", 1024, "scale partitions above this many nodes")
	seed := flag.Uint64("seed", 1, "randomization seed")
	csv := flag.Bool("csv", false, "emit CSV instead of ASCII tables")
	large := flag.Int("large", 0, "override the large-message payload bytes")
	workers := flag.Int("j", 0, "parallel workers per experiment (0 = all cores, 1 = serial)")
	quiet := flag.Bool("quiet", false, "suppress per-row progress lines on stderr")
	flag.Parse()

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: aabench -exp <id>")
		fmt.Fprintf(os.Stderr, "experiments: %v all\n", experiments.Order)
		os.Exit(2)
	}
	cfg := experiments.Config{
		Full:       *full,
		MaxNodes:   *maxNodes,
		Seed:       *seed,
		LargeBytes: *large,
		Workers:    *workers,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Order
	}
	for _, id := range ids {
		runner, ok := experiments.Catalog[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "aabench: unknown experiment %q (have %v)\n", id, experiments.Order)
			os.Exit(2)
		}
		metrics := &experiments.Metrics{}
		cfg.Metrics = metrics
		start := time.Now()
		table, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aabench: %s: %v\n", id, err)
			if len(ids) == 1 {
				os.Exit(1)
			}
			continue // keep regenerating the remaining experiments
		}
		if *csv {
			if err := table.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "aabench: %v\n", err)
				os.Exit(1)
			}
		} else {
			if err := table.Write(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "aabench: %v\n", err)
				os.Exit(1)
			}
			elapsed := time.Since(start)
			ev := float64(metrics.Events())
			fmt.Printf("[%s completed in %s: %d workers, %d runs, %.1fM events, %.2fM events/s]\n\n",
				id, elapsed.Round(time.Millisecond), parallel.Workers(*workers),
				metrics.Runs(), ev/1e6, ev/1e6/elapsed.Seconds())
		}
	}
}
