// Command benchguard parses `go test -bench` output and guards against
// performance regressions.
//
// Record a baseline from benchmark output (stdin or files):
//
//	go test -bench 'EventQueue' -benchtime 2s ./internal/network | \
//	    benchguard -record -out BENCH_2026-08-08.json
//
// Compare a fresh run against a baseline recorded on the SAME machine,
// failing (exit 1) when any benchmark present in both lost more than
// -threshold of its events/s:
//
//	go test -bench 'EventQueue' ./internal/network | \
//	    benchguard -baseline BENCH_2026-08-08.json
//
// Compare a RATIO of two benchmarks against the baseline's ratio:
//
//	go test -bench 'EventQueue' ./internal/network | \
//	    benchguard -baseline BENCH_2026-08-08.json \
//	    -ratio 'EventQueueCalendar/EventQueueHeap'
//
// Ratio mode exists because absolute events/s do not transfer between
// machines: a baseline committed to the repository was measured on one
// box, CI runs on another. The calendar-vs-heap speedup ratio cancels the
// hardware term, so a committed baseline stays meaningful anywhere. Use
// absolute mode only when baseline and candidate ran on the same runner
// (e.g. base-SHA vs head-SHA within one CI job).
//
// Guard the simulated event VOLUME (queued events per injected packet, the
// "events/pkt" metric) against a committed ceiling:
//
//	go test -bench 'NetworkRunLarge' ./internal/network | \
//	    benchguard -baseline BENCH.json -volume -threshold 0.02
//
// events/pkt counts how many event-queue pops the simulator spends per
// simulated packet - a property of the code, not the machine - so unlike
// events/s it compares exactly against a baseline from any host, and the
// threshold can be tight.
//
// Benchmarks appearing in only one side are reported but never fail the
// check, so the guard tolerates baselines recorded before a benchmark
// existed. The threshold is deliberately generous (default 10%) - this is
// a smoke alarm for real regressions, not a microbenchmark referee.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed JSON schema.
type Baseline struct {
	SchemaVersion int               `json:"schema_version"`
	Note          string            `json:"note,omitempty"`
	GOOS          string            `json:"goos"`
	GOARCH        string            `json:"goarch"`
	CPU           string            `json:"cpu,omitempty"`
	Benchmarks    map[string]Sample `json:"benchmarks"`
}

// Sample is one benchmark's best observed metrics across the parsed runs
// (max events/s, min ns/op: the least-noisy estimate of the code's speed).
type Sample struct {
	N            int     `json:"n"` // samples folded in
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// EventsPerPacket is the queued-event volume per injected packet
	// ("events/pkt"), deterministic for a fixed build so runs fold by min
	// only to shed warm-up artifacts.
	EventsPerPacket float64 `json:"events_per_packet,omitempty"`
	// WaitsPerAdvance is the sharded engine's synchronization overhead
	// ("waits/adv"): blocked waits per horizon advance. Deterministic for
	// the BSP barrier protocol (fixed barriers per window), scheduling-
	// dependent but stable for the async engine; runs fold by min.
	WaitsPerAdvance float64 `json:"waits_per_advance,omitempty"`
}

const schemaVersion = 1

func main() {
	var (
		record    = flag.Bool("record", false, "emit a baseline JSON from the input instead of comparing")
		out       = flag.String("out", "", "output path for -record (default stdout)")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against")
		threshold = flag.Float64("threshold", 0.10, "allowed fractional events/s loss before failing")
		ratio     = flag.String("ratio", "", "compare the A/B events-per-sec ratio of two benchmarks (\"A/B\") instead of absolute values")
		volume    = flag.Bool("volume", false, "compare events/pkt against the baseline ceiling (hardware-independent; fails when current exceeds baseline by more than -threshold)")
		waits     = flag.Bool("waits", false, "compare waits/adv (sharded-engine blocked waits per horizon advance) against the baseline ceiling; fails when current exceeds baseline by more than -threshold")
		note      = flag.String("note", "", "free-form note stored in the recorded baseline")
	)
	flag.Parse()

	in, err := openInputs(flag.Args())
	if err != nil {
		fatal(err)
	}
	cur, cpu, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(cur) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	if *record {
		b := Baseline{
			SchemaVersion: schemaVersion,
			Note:          *note,
			GOOS:          runtime.GOOS,
			GOARCH:        runtime.GOARCH,
			CPU:           cpu,
			Benchmarks:    cur,
		}
		w := io.Writer(os.Stdout)
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(b); err != nil {
			fatal(err)
		}
		return
	}

	if *baseline == "" {
		fatal(fmt.Errorf("need -record or -baseline"))
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", *baseline, err))
	}

	var failures []string
	switch {
	case *ratio != "":
		failures, err = checkRatio(base.Benchmarks, cur, *ratio, *threshold)
		if err != nil {
			fatal(err)
		}
	case *volume:
		failures, err = checkVolume(base.Benchmarks, cur, *threshold)
		if err != nil {
			fatal(err)
		}
	case *waits:
		failures, err = checkWaits(base.Benchmarks, cur, *threshold)
		if err != nil {
			fatal(err)
		}
	default:
		failures = checkAbsolute(base.Benchmarks, cur, *threshold)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}

func openInputs(paths []string) (io.Reader, error) {
	if len(paths) == 0 {
		return os.Stdin, nil
	}
	var rs []io.Reader
	for _, p := range paths {
		if p == "-" {
			rs = append(rs, os.Stdin)
			continue
		}
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		rs = append(rs, f)
	}
	return io.MultiReader(rs...), nil
}

// parseBench extracts per-benchmark samples from `go test -bench` output.
// Repeated runs of one benchmark fold into a single best-observed sample.
// Also returns the "cpu:" header line when present.
func parseBench(r io.Reader) (map[string]Sample, string, error) {
	out := make(map[string]Sample)
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		name, s, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		prev, seen := out[name]
		if !seen {
			out[name] = s
			continue
		}
		prev.N += s.N
		if s.NsPerOp < prev.NsPerOp {
			prev.NsPerOp = s.NsPerOp
		}
		if s.EventsPerSec > prev.EventsPerSec {
			prev.EventsPerSec = s.EventsPerSec
		}
		if s.EventsPerPacket > 0 && (prev.EventsPerPacket == 0 || s.EventsPerPacket < prev.EventsPerPacket) {
			prev.EventsPerPacket = s.EventsPerPacket
		}
		if s.WaitsPerAdvance > 0 && (prev.WaitsPerAdvance == 0 || s.WaitsPerAdvance < prev.WaitsPerAdvance) {
			prev.WaitsPerAdvance = s.WaitsPerAdvance
		}
		out[name] = prev
	}
	return out, cpu, sc.Err()
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkEventQueueHeap-4  5000000  207.3 ns/op  4823456 events/s
//
// The name is normalized by stripping the "Benchmark" prefix and the
// trailing -GOMAXPROCS suffix, so "BenchmarkEventQueueHeap-4" and
// "BenchmarkEventQueueHeap-8" fold into "EventQueueHeap".
func parseBenchLine(line string) (string, Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Sample{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", Sample{}, false // not an iteration count
	}
	s := Sample{N: 1}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.NsPerOp = v
		case "events/s":
			s.EventsPerSec = v
		case "events/pkt":
			s.EventsPerPacket = v
		case "waits/adv":
			s.WaitsPerAdvance = v
		}
	}
	if s.NsPerOp == 0 && s.EventsPerSec == 0 {
		return "", Sample{}, false
	}
	return name, s, true
}

// metric returns the comparable throughput for a sample: events/s when the
// benchmark reports it, else ops/s derived from ns/op.
func metric(s Sample) float64 {
	if s.EventsPerSec > 0 {
		return s.EventsPerSec
	}
	if s.NsPerOp > 0 {
		return 1e9 / s.NsPerOp
	}
	return math.NaN()
}

// checkAbsolute flags every benchmark present in both maps whose throughput
// fell by more than threshold. Benchmarks on only one side are tolerated
// (reported to stderr) so old baselines keep working as benchmarks evolve.
func checkAbsolute(base, cur map[string]Sample, threshold float64) []string {
	var names []string
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	var failures []string
	matched := 0
	for _, n := range names {
		c, ok := cur[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s in baseline but not in input (skipped)\n", n)
			continue
		}
		matched++
		b, cv := metric(base[n]), metric(c)
		fmt.Printf("%-40s baseline %12.0f  current %12.0f  (%+.1f%%)\n", n, b, cv, (cv/b-1)*100)
		if cv < b*(1-threshold) {
			failures = append(failures,
				fmt.Sprintf("%s: %.0f -> %.0f events/s (-%.1f%%, threshold %.0f%%)",
					n, b, cv, (1-cv/b)*100, threshold*100))
		}
	}
	if matched == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmarks in common with the baseline; nothing checked")
	}
	return failures
}

// checkVolume compares events/pkt for every benchmark present in both maps
// against the baseline's value as a ceiling: simulated event volume is a
// property of the code, not the machine, so any growth beyond threshold is
// a real regression (a coalescing or elision path stopped firing).
// Benchmarks without the metric on either side are skipped.
func checkVolume(base, cur map[string]Sample, threshold float64) ([]string, error) {
	var names []string
	for n, s := range base {
		if s.EventsPerPacket > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var failures []string
	matched := 0
	for _, n := range names {
		c, ok := cur[n]
		if !ok || c.EventsPerPacket == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s has no events/pkt in input (skipped)\n", n)
			continue
		}
		matched++
		b, cv := base[n].EventsPerPacket, c.EventsPerPacket
		fmt.Printf("%-40s baseline %8.2f events/pkt  current %8.2f  (%+.1f%%)\n", n, b, cv, (cv/b-1)*100)
		if cv > b*(1+threshold) {
			failures = append(failures,
				fmt.Sprintf("%s: event volume %.2f -> %.2f events/pkt (+%.1f%%, ceiling %.0f%%)",
					n, b, cv, (cv/b-1)*100, threshold*100))
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no benchmark with events/pkt in common with the baseline; nothing checked")
	}
	return failures, nil
}

// checkWaits compares waits/adv for every benchmark carrying the metric on
// both sides against the baseline's value as a ceiling. For the BSP barrier
// protocol the ratio is a deterministic property of the window loop (a fixed
// number of barrier crossings per window), so growth means the protocol got
// chattier; for the async engine it is scheduling-dependent but stable, and
// growth means shards block on their peers' clocks more often per unit of
// progress.
func checkWaits(base, cur map[string]Sample, threshold float64) ([]string, error) {
	var names []string
	for n, s := range base {
		if s.WaitsPerAdvance > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var failures []string
	matched := 0
	for _, n := range names {
		c, ok := cur[n]
		if !ok || c.WaitsPerAdvance == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s has no waits/adv in input (skipped)\n", n)
			continue
		}
		matched++
		b, cv := base[n].WaitsPerAdvance, c.WaitsPerAdvance
		fmt.Printf("%-40s baseline %8.3f waits/adv  current %8.3f  (%+.1f%%)\n", n, b, cv, (cv/b-1)*100)
		if cv > b*(1+threshold) {
			failures = append(failures,
				fmt.Sprintf("%s: sync overhead %.3f -> %.3f waits/adv (+%.1f%%, ceiling %.0f%%)",
					n, b, cv, (cv/b-1)*100, threshold*100))
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("no benchmark with waits/adv in common with the baseline; nothing checked")
	}
	return failures, nil
}

// splitRatioSpec resolves "A/B" where A and B may themselves contain
// slashes (sub-benchmark names like NetworkRunLarge/queue=calendar): every
// split point is tried against the baseline's benchmark names, outermost
// first, and the one where both sides exist wins.
func splitRatioSpec(base map[string]Sample, spec string) (string, string, bool) {
	for i := 0; i < len(spec); i++ {
		if spec[i] != '/' {
			continue
		}
		a, b := spec[:i], spec[i+1:]
		if a == "" || b == "" {
			continue
		}
		if _, ok := base[a]; !ok {
			continue
		}
		if _, ok := base[b]; ok {
			return a, b, true
		}
	}
	return "", "", false
}

// checkRatio compares the A/B throughput ratio in cur against the same
// ratio in base. This cancels the hardware term, so it is the right check
// against a baseline committed from a different machine.
func checkRatio(base, cur map[string]Sample, spec string, threshold float64) ([]string, error) {
	if !strings.Contains(spec, "/") {
		return nil, fmt.Errorf("-ratio wants \"A/B\", got %q", spec)
	}
	a, b, ok := splitRatioSpec(base, spec)
	if !ok {
		return nil, fmt.Errorf("-ratio %q: no split \"A/B\" with both sides in the baseline", spec)
	}
	get := func(m map[string]Sample, name, side string) (float64, error) {
		s, ok := m[name]
		if !ok {
			return 0, fmt.Errorf("%s: benchmark %q not found", side, name)
		}
		return metric(s), nil
	}
	ba, err := get(base, a, "baseline")
	if err != nil {
		return nil, err
	}
	bb, err := get(base, b, "baseline")
	if err != nil {
		return nil, err
	}
	ca, err := get(cur, a, "input")
	if err != nil {
		return nil, err
	}
	cb, err := get(cur, b, "input")
	if err != nil {
		return nil, err
	}
	baseR, curR := ba/bb, ca/cb
	fmt.Printf("ratio %s/%s: baseline %.3f  current %.3f  (%+.1f%%)\n", a, b, baseR, curR, (curR/baseR-1)*100)
	if curR < baseR*(1-threshold) {
		return []string{fmt.Sprintf("ratio %s/%s fell %.3f -> %.3f (-%.1f%%, threshold %.0f%%)",
			a, b, baseR, curR, (1-curR/baseR)*100, threshold*100)}, nil
	}
	return nil, nil
}
