package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
pkg: alltoall/internal/network
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEventQueueHeap-4         	 5000000	       207.3 ns/op	   4823456 events/s
BenchmarkEventQueueHeap-4         	 5000000	       210.0 ns/op	   4761904 events/s
BenchmarkEventQueueCalendar-4     	10000000	       110.1 ns/op	   9082652 events/s
BenchmarkNetworkRunLarge/queue=heap-4      	       1	37709004495 ns/op	    863557 events/s
PASS
ok  	alltoall/internal/network	146.837s
`

func parse(t *testing.T, s string) map[string]Sample {
	t.Helper()
	m, cpu, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if cpu == "" {
		t.Error("cpu header not captured")
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, sampleOut)
	if len(m) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(m), m)
	}
	h := m["EventQueueHeap"]
	if h.N != 2 {
		t.Errorf("heap samples = %d, want 2 folded", h.N)
	}
	// Best-of folding: min ns/op, max events/s.
	if h.NsPerOp != 207.3 || h.EventsPerSec != 4823456 {
		t.Errorf("heap sample = %+v, want best-of fold", h)
	}
	if m["NetworkRunLarge/queue=heap"].EventsPerSec != 863557 {
		t.Errorf("sub-benchmark name not normalized: %v", m)
	}
	if _, ok := m["EventQueueCalendar"]; !ok {
		t.Errorf("calendar benchmark missing: %v", m)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	alltoall/internal/network	146.837s",
		"goos: linux",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken-4 notanint 5 ns/op",
	} {
		if name, _, ok := parseBenchLine(line); ok {
			t.Errorf("parsed noise line %q as benchmark %q", line, name)
		}
	}
}

func TestCheckAbsolute(t *testing.T) {
	base := map[string]Sample{
		"A":    {N: 1, EventsPerSec: 1000},
		"B":    {N: 1, EventsPerSec: 1000},
		"Gone": {N: 1, EventsPerSec: 1000},
	}
	cur := map[string]Sample{
		"A":   {N: 1, EventsPerSec: 950},  // -5%: within threshold
		"B":   {N: 1, EventsPerSec: 850},  // -15%: regression
		"New": {N: 1, EventsPerSec: 1000}, // not in baseline: ignored
	}
	fails := checkAbsolute(base, cur, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "B:") {
		t.Errorf("failures = %v, want exactly B", fails)
	}
}

func TestCheckAbsoluteNsPerOpFallback(t *testing.T) {
	base := map[string]Sample{"A": {N: 1, NsPerOp: 100}}
	cur := map[string]Sample{"A": {N: 1, NsPerOp: 120}} // 20% slower
	if fails := checkAbsolute(base, cur, 0.10); len(fails) != 1 {
		t.Errorf("ns/op fallback missed the regression: %v", fails)
	}
}

func TestCheckRatio(t *testing.T) {
	base := map[string]Sample{
		"Cal":  {N: 1, EventsPerSec: 1300},
		"Heap": {N: 1, EventsPerSec: 1000},
	}
	// Twice-as-fast hardware, same 1.3 ratio: must pass.
	cur := map[string]Sample{
		"Cal":  {N: 1, EventsPerSec: 2600},
		"Heap": {N: 1, EventsPerSec: 2000},
	}
	fails, err := checkRatio(base, cur, "Cal/Heap", 0.10)
	if err != nil || len(fails) != 0 {
		t.Errorf("hardware-scaled equal ratio failed: %v %v", fails, err)
	}
	// Ratio collapse to 1.0 on faster hardware: must fail.
	cur["Cal"] = Sample{N: 1, EventsPerSec: 2000}
	fails, err = checkRatio(base, cur, "Cal/Heap", 0.10)
	if err != nil || len(fails) != 1 {
		t.Errorf("ratio collapse not flagged: %v %v", fails, err)
	}
	if _, err := checkRatio(base, cur, "Cal/Missing", 0.10); err == nil {
		t.Error("missing benchmark in ratio spec not an error")
	}
	if _, err := checkRatio(base, cur, "nonsense", 0.10); err == nil {
		t.Error("malformed ratio spec not an error")
	}
}

func TestParseEventsPerPacket(t *testing.T) {
	out := `BenchmarkNetworkRunLarge/queue=calendar-4 	       1	30087419020 ns/op	   1082309 events/s	        22.51 events/pkt
BenchmarkNetworkRunLarge/queue=calendar-4 	       1	30099999999 ns/op	   1082000 events/s	        22.51 events/pkt
`
	m, _, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	s := m["NetworkRunLarge/queue=calendar"]
	if s.EventsPerPacket != 22.51 {
		t.Errorf("EventsPerPacket = %v, want 22.51", s.EventsPerPacket)
	}
}

func TestCheckVolume(t *testing.T) {
	base := map[string]Sample{
		"A":     {N: 1, EventsPerSec: 1000, EventsPerPacket: 22.5},
		"B":     {N: 1, EventsPerSec: 1000, EventsPerPacket: 31.0},
		"NoVol": {N: 1, EventsPerSec: 1000},
	}
	cur := map[string]Sample{
		"A":     {N: 1, EventsPerSec: 5000, EventsPerPacket: 22.8}, // +1.3%: within ceiling
		"B":     {N: 1, EventsPerSec: 5000, EventsPerPacket: 32.0}, // +3.2%: volume regression
		"NoVol": {N: 1, EventsPerSec: 5000},
	}
	fails, err := checkVolume(base, cur, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || !strings.Contains(fails[0], "B:") {
		t.Errorf("failures = %v, want exactly B", fails)
	}
	// Volume shrinking (coalescing improved) never fails.
	cur["B"] = Sample{N: 1, EventsPerPacket: 20}
	if fails, err = checkVolume(base, cur, 0.02); err != nil || len(fails) != 0 {
		t.Errorf("improvement flagged: %v %v", fails, err)
	}
	// Nothing in common is an error, not a silent pass.
	if _, err := checkVolume(base, map[string]Sample{"X": {EventsPerPacket: 1}}, 0.02); err == nil {
		t.Error("empty intersection not an error")
	}
}

func TestCheckRatioSlashedNames(t *testing.T) {
	base := map[string]Sample{
		"NetworkRunLarge/queue=calendar": {N: 1, EventsPerSec: 1300},
		"NetworkRunLarge/queue=heap":     {N: 1, EventsPerSec: 1000},
	}
	cur := map[string]Sample{
		"NetworkRunLarge/queue=calendar": {N: 1, EventsPerSec: 2600},
		"NetworkRunLarge/queue=heap":     {N: 1, EventsPerSec: 2000},
	}
	spec := "NetworkRunLarge/queue=calendar/NetworkRunLarge/queue=heap"
	fails, err := checkRatio(base, cur, spec, 0.10)
	if err != nil || len(fails) != 0 {
		t.Errorf("slashed-name ratio: fails=%v err=%v", fails, err)
	}
	cur["NetworkRunLarge/queue=calendar"] = Sample{N: 1, EventsPerSec: 2000}
	if fails, err = checkRatio(base, cur, spec, 0.10); err != nil || len(fails) != 1 {
		t.Errorf("slashed-name ratio collapse not flagged: fails=%v err=%v", fails, err)
	}
}

func TestParseWaitsPerAdvance(t *testing.T) {
	out := `BenchmarkNetworkRunLarge/sync=bsp/shards=4-4 	       1	31994061402 ns/op	        22.51 events/pkt	   1017810 events/s	         3.002 waits/adv
BenchmarkNetworkRunLarge/sync=bsp/shards=4-4 	       1	31999999999 ns/op	        22.51 events/pkt	   1017000 events/s	         3.001 waits/adv
`
	m, _, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	s := m["NetworkRunLarge/sync=bsp/shards=4"]
	if s.WaitsPerAdvance != 3.001 {
		t.Errorf("WaitsPerAdvance = %v, want 3.001 (min fold)", s.WaitsPerAdvance)
	}
}

func TestCheckWaits(t *testing.T) {
	base := map[string]Sample{
		"A":       {N: 1, EventsPerSec: 1000, WaitsPerAdvance: 3.0},
		"B":       {N: 1, EventsPerSec: 1000, WaitsPerAdvance: 1.1},
		"NoWaits": {N: 1, EventsPerSec: 1000},
	}
	cur := map[string]Sample{
		"A":       {N: 1, EventsPerSec: 900, WaitsPerAdvance: 3.01}, // +0.3%: within ceiling
		"B":       {N: 1, EventsPerSec: 900, WaitsPerAdvance: 1.3},  // +18%: sync got chattier
		"NoWaits": {N: 1, EventsPerSec: 900},
	}
	fails, err := checkWaits(base, cur, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || !strings.Contains(fails[0], "B:") {
		t.Errorf("failures = %v, want exactly B", fails)
	}
	// Waiting less than the baseline never fails.
	cur["B"] = Sample{N: 1, WaitsPerAdvance: 0.5}
	if fails, err = checkWaits(base, cur, 0.02); err != nil || len(fails) != 0 {
		t.Errorf("improvement flagged: %v %v", fails, err)
	}
	if _, err := checkWaits(base, map[string]Sample{"X": {WaitsPerAdvance: 1}}, 0.02); err == nil {
		t.Error("empty intersection not an error")
	}
}
