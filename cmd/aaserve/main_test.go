package main

import (
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alltoall/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGoldenServedJob pins the full POST /v1/jobs response for the smoke
// job byte for byte: envelope layout, canonical request echo, key encoding,
// and the served result JSON. The CI smoke job replays the same fixture
// against a real aaserve process with curl and diffs against the same
// golden, so this test and the service must stay in lockstep.
func TestGoldenServedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	body, err := os.ReadFile(filepath.Join("testdata", "serve_job.json"))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Workers: 1})
	defer s.Close()
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body))))
	if w.Code != http.StatusOK {
		t.Fatalf("POST = %d: %s", w.Code, w.Body.String())
	}
	if hdr := w.Header().Get("X-AA-Cache"); hdr != "miss" {
		t.Errorf("fresh server served X-AA-Cache %q, want miss", hdr)
	}

	got := w.Body.Bytes()
	golden := filepath.Join("testdata", "serve_job.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/aaserve -update` to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("served response drifted from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}
