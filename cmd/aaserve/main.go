// Command aaserve serves all-to-all simulation jobs over HTTP/JSON.
//
// Usage:
//
//	aaserve [-addr :8080] [-workers 4] [-queue 16] [-cache 512]
//	        [-timeout 2m] [-maxshards 16] [-maxnodes 65536]
//
// Submit a job and block for the result:
//
//	curl -s localhost:8080/v1/jobs -d '{"strategy":"tps","shape":"8x32x16","msg_bytes":1024}'
//
// Append ?async=1 to get 202 + a job id immediately, then poll
// GET /v1/jobs/{id}. GET /metrics reports queue depth, in-flight jobs,
// cache hit rate and per-strategy latency histograms. When the queue is
// full, submissions get 429 with a Retry-After estimate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"alltoall/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 4, "concurrent simulation workers")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4*workers)")
	cache := flag.Int("cache", 512, "result LRU entries (negative disables)")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline")
	maxShards := flag.Int("maxshards", 16, "per-job shard ceiling")
	maxNodes := flag.Int("maxnodes", 64*1024, "per-job torus size ceiling")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		MaxShards:      *maxShards,
		MaxNodes:       *maxNodes,
	})

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "aaserve: listening on %s (%d workers)\n", *addr, *workers)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "aaserve:", err)
			os.Exit(1)
		}
	case <-sigc:
		fmt.Fprintln(os.Stderr, "aaserve: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		hs.Shutdown(ctx)
		cancel()
	}
	srv.Close()
}
