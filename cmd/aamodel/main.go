// Command aamodel evaluates the paper's analytic performance model
// (Equations 1-4) without running the simulator.
//
// Usage:
//
//	aamodel -shape 8x32x16 -msg 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"alltoall/internal/collective"
	"alltoall/internal/model"
	"alltoall/internal/torus"
)

func main() {
	x := flag.Int("x", 8, "X dimension")
	y := flag.Int("y", 8, "Y dimension")
	z := flag.Int("z", 8, "Z dimension")
	msg := flag.Int("msg", 1024, "per-pair payload bytes")
	flag.Parse()

	shape := torus.New(*x, *y, *z)
	if err := shape.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "aamodel: %v\n", err)
		os.Exit(2)
	}
	c := model.DefaultCalib()
	m := *msg
	pvx, pvy := collective.BalancedFactor(shape.P())

	peak := model.PeakTime(shape, m)
	direct := model.DirectTime(c, shape, m)
	vmesh := model.VMeshTime(c, shape, pvx, pvy, m)

	fmt.Printf("partition            %v (%d nodes)\n", shape, shape.P())
	fmt.Printf("contention C         %.3f (M/8 = %.3f on a torus)\n",
		model.ContentionFactor(shape), float64(shape.MaxDim())/8)
	fmt.Printf("message              %d bytes per pair\n", m)
	fmt.Printf("peak time (Eq 2)     %.0f units = %.3f ms\n", peak, c.Seconds(peak)*1e3)
	fmt.Printf("direct time (Eq 3)   %.0f units = %.3f ms (%.1f%% of peak)\n",
		direct, c.Seconds(direct)*1e3, 100*peak/direct)
	fmt.Printf("vmesh %3dx%-3d (Eq 4) %.0f units = %.3f ms\n", pvx, pvy, vmesh, c.Seconds(vmesh)*1e3)
	fmt.Printf("crossover (Eq 3=4)   ~%d bytes ignoring startup\n", model.CrossoverBytes(c))
	fmt.Printf("peak per-node rate   %.1f MB/s\n", model.PeakPerNodeBandwidth(c, shape))
	fmt.Printf("TPS linear dim       %v\n", collective.SelectTPSLinearDim(shape))
}
