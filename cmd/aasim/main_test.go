package main

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alltoall"
	"alltoall/internal/report"
)

func TestParseShape(t *testing.T) {
	cases := []struct {
		in      string
		size    [3]int
		wrap    [3]bool
		wantErr bool
	}{
		{"8x8x8", [3]int{8, 8, 8}, [3]bool{true, true, true}, false},
		{"8", [3]int{8, 1, 1}, [3]bool{true, false, false}, false},
		{"8x32", [3]int{8, 32, 1}, [3]bool{true, true, false}, false},
		{"8x8x4M", [3]int{8, 8, 4}, [3]bool{true, true, false}, false},
		{"8x8x4m", [3]int{8, 8, 4}, [3]bool{true, true, false}, false},
		{"8x2", [3]int{8, 2, 1}, [3]bool{true, false, false}, false},
		{"", [3]int{}, [3]bool{}, true},
		{"8x8x8x8", [3]int{}, [3]bool{}, true},
		{"axb", [3]int{}, [3]bool{}, true},
		{"0x8", [3]int{}, [3]bool{}, true},
	}
	for _, c := range cases {
		s, err := alltoall.ParseShape(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseShape(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if s.Size != c.size || s.Wrap != c.wrap {
			t.Errorf("ParseShape(%q) = %+v, want size %v wrap %v", c.in, s, c.size, c.wrap)
		}
	}
}

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/aasim -update` to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s rendering drifted from golden file (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// goldenFaults is the fault schedule the faulted fixtures share: a permanent
// kill plus a transient outage on a 4x4x2 torus.
const goldenFaults = "0:5:+x:kill;300:12:-y:down;2500:12:-y:up"

// goldenRun executes one deterministic configuration: fixed shape, seed, and
// message size, invariant checker on. Everything the goldens pin is
// byte-identical at any shard count; the serial engine is just the simplest
// fixture (TestGoldenShardIndependent holds the rendering to that claim).
func goldenRun(t *testing.T, strat alltoall.Strategy, faults string, shards int, obs *alltoall.Collector) alltoall.Result {
	t.Helper()
	shape, err := alltoall.ParseShape("4x4x2")
	if err != nil {
		t.Fatal(err)
	}
	opts := []alltoall.Option{
		alltoall.WithOptions(alltoall.Options{
			Shape:    shape,
			MsgBytes: 240,
			Seed:     1,
			Check:    true,
			Shards:   shards,
		}),
	}
	if faults != "" {
		fs, err := alltoall.ParseFaults(faults)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, alltoall.WithFaults(fs))
	}
	if obs != nil {
		opts = append(opts, alltoall.WithObserver(obs))
	}
	res, err := alltoall.RunContext(context.Background(), strat, opts...)
	if err != nil {
		t.Fatalf("%s run: %v", strat, err)
	}
	return res
}

// TestGoldenResult locks the deterministic result block for a healthy run of
// a direct strategy and of the two-phase schedule (which adds its extra
// line), pinning layout, number formatting, and the simulated values.
func TestGoldenResult(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, strat := range []alltoall.Strategy{alltoall.AR, alltoall.TPS} {
		t.Run(string(strat), func(t *testing.T) {
			res := goldenRun(t, strat, "", 1, nil)
			var b strings.Builder
			renderResult(&b, res)
			checkGolden(t, "result_"+strings.ToLower(string(strat))+".golden", []byte(b.String()))
		})
	}
}

// TestGoldenFaultedResult locks the rendering of a faulted run, including the
// faults line and the attribution report's fault section. The fixture doubles
// as an end-to-end regression for the -faults path: schedule parsing,
// graceful degradation, checker-clean completion, and deterministic fault
// observability.
func TestGoldenFaultedResult(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	obs := alltoall.NewCollector(alltoall.ObserveConfig{})
	res := goldenRun(t, alltoall.AR, goldenFaults, 1, obs)
	if res.DeadLinkTicks == 0 {
		t.Error("faulted golden run accrued no dead-link ticks")
	}
	var b strings.Builder
	renderResult(&b, res)
	b.WriteByte('\n')
	if err := (report.Attribution{}).Write(&b, obs); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "result_ar_faulted.golden", []byte(b.String()))
}

// TestGoldenShardIndependent asserts the golden rendering really is
// shard-count independent: the faulted fixture on the 4-way sharded engine
// must render byte-identically to the serial golden file.
func TestGoldenShardIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	res := goldenRun(t, alltoall.AR, goldenFaults, 4, nil)
	var b strings.Builder
	renderResult(&b, res)
	serial := goldenRun(t, alltoall.AR, goldenFaults, 1, nil)
	var a strings.Builder
	renderResult(&a, serial)
	if a.String() != b.String() {
		t.Errorf("sharded faulted run renders differently:\nserial:\n%s\nsharded:\n%s", a.String(), b.String())
	}
}
