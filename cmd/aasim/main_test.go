package main

import "testing"

func TestParseShape(t *testing.T) {
	cases := []struct {
		in      string
		size    [3]int
		wrap    [3]bool
		wantErr bool
	}{
		{"8x8x8", [3]int{8, 8, 8}, [3]bool{true, true, true}, false},
		{"8", [3]int{8, 1, 1}, [3]bool{true, false, false}, false},
		{"8x32", [3]int{8, 32, 1}, [3]bool{true, true, false}, false},
		{"8x8x4M", [3]int{8, 8, 4}, [3]bool{true, true, false}, false},
		{"8x8x4m", [3]int{8, 8, 4}, [3]bool{true, true, false}, false},
		{"8x2", [3]int{8, 2, 1}, [3]bool{true, false, false}, false},
		{"", [3]int{}, [3]bool{}, true},
		{"8x8x8x8", [3]int{}, [3]bool{}, true},
		{"axb", [3]int{}, [3]bool{}, true},
		{"0x8", [3]int{}, [3]bool{}, true},
	}
	for _, c := range cases {
		s, err := parseShape(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseShape(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if s.Size != c.size || s.Wrap != c.wrap {
			t.Errorf("parseShape(%q) = %+v, want size %v wrap %v", c.in, s, c.size, c.wrap)
		}
	}
}
