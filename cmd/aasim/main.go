// Command aasim runs a single all-to-all configuration on the simulated
// torus and prints a detailed result.
//
// Usage:
//
//	aasim -shape 8x32x16 -strategy TPS -msg 1024
//	aasim -shape 8x8x4M -strategy AR -msg 240     # M marks a mesh dimension
//	aasim -shape 8x8x8 -msg 1920 -shards 4        # window-parallel engine
//	aasim -shape 16x8x8 -msg 240 -observe         # bottleneck attribution
//	aasim -shape 16x8x8 -msg 240 -observe -trace-out run.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"alltoall"
	"alltoall/internal/report"
)

// startCPUProfile begins CPU profiling to path ("" = disabled) and returns
// the stop function.
func startCPUProfile(path string) func() {
	if path == "" {
		return func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: -cpuprofile: %v\n", err)
		os.Exit(2)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "aasim: -cpuprofile: %v\n", err)
		os.Exit(2)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile records a heap profile to path ("" = disabled).
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: -memprofile: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	runtime.GC() // up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "aasim: -memprofile: %v\n", err)
		os.Exit(2)
	}
}

// renderResult writes the deterministic result block: everything aasim
// reports except the wall-clock "simulated in" line, which depends on host
// speed. The golden-file tests pin this rendering byte for byte, so a
// deterministic run at any shard count must produce identical output here.
func renderResult(w io.Writer, res alltoall.Result) {
	calib := alltoall.DefaultCalib()
	fmt.Fprintf(w, "strategy        %s\n", res.Strategy)
	fmt.Fprintf(w, "partition       %v (%d nodes)\n", res.Shape, res.Shape.P())
	fmt.Fprintf(w, "message         %d bytes per pair\n", res.MsgBytes)
	fmt.Fprintf(w, "completion      %d units = %.3f ms\n", res.Time, res.Seconds*1e3)
	fmt.Fprintf(w, "peak (Eq 2)     %.0f units = %.3f ms\n", res.PeakTime, calib.Seconds(res.PeakTime)*1e3)
	fmt.Fprintf(w, "percent of peak %.1f%%\n", res.PercentPeak)
	fmt.Fprintf(w, "per-node rate   %.1f MB/s\n", res.PerNodeMBs)
	fmt.Fprintf(w, "packets         %d (%d wire bytes)\n", res.PacketsInjected, res.WireBytes)
	fmt.Fprintf(w, "mean latency    %.0f units = %.1f us\n", res.MeanLatencyUnits, calib.Seconds(res.MeanLatencyUnits)*1e6)
	fmt.Fprintf(w, "link util       mean %.2f max %.2f\n", res.MeanLinkUtil, res.MaxLinkUtil)
	if res.DeadLinkTicks > 0 || res.Reroutes > 0 {
		fmt.Fprintf(w, "faults          %d dead-link ticks, %d packets rerouted\n", res.DeadLinkTicks, res.Reroutes)
	}
	if res.Strategy == alltoall.TPS {
		fmt.Fprintf(w, "TPS linear dim  %v\n", res.TPSLinearDim)
	}
	if res.Strategy == alltoall.VMesh {
		fmt.Fprintf(w, "virtual mesh    %dx%d, phases %v units\n", res.VMeshCols, res.VMeshRows, res.PhaseTimes)
	}
}

func main() {
	shapeStr := flag.String("shape", "8x8x8", "partition, e.g. 8x32x16 or 8x8x4M (M = mesh dimension)")
	strat := flag.String("strategy", "AR", "AR | DR | Throttle | MPI | TPS | VMesh")
	msg := flag.Int("msg", 1024, "per-pair payload bytes")
	seed := flag.Uint64("seed", 1, "randomization seed")
	burst := flag.Int("burst", 0, "packets per destination visit (0 = default)")
	shards := flag.Int("shards", 1, "event-engine shards; >1 parallelizes this run across cores (identical output)")
	checkInv := flag.Bool("check", false, "enable the runtime invariant checker (~1.4x slower; fails with a node/time-stamped diagnostic on violation)")
	eventq := flag.String("eventq", "", "event queue: calendar (default) or heap (identical results; perf ablation)")
	coalesce := flag.String("coalesce", "", "same-tick event coalescing: on (default) or off (identical results; perf ablation)")
	syncMode := flag.String("sync", "", "sharded-engine protocol: async (default) or bsp barriers (identical results; perf ablation; needs -shards > 1)")
	faults := flag.String("faults", "", `link-fault schedule, semicolon-separated "t:node:dir:action" events (dir: +x -x +y -y +z -z; action: down, up, kill, or xN degrade), e.g. "0:12:+x:kill;5000:40:-y:down;9000:40:-y:up"`)
	observe := flag.Bool("observe", false, "instrument the run and print a bottleneck-attribution report")
	observeWindow := flag.Int64("observe-window", 0, "observation bucket width in time units (0 = default)")
	traceOut := flag.String("trace-out", "", "write the per-window observation trace as JSONL to this file (implies -observe)")
	dump := flag.String("dump", "", "file for a network state dump if the run stalls")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	shape, err := alltoall.ParseShape(*shapeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: %v\n", err)
		os.Exit(2)
	}
	strategy, err := alltoall.ParseStrategy(*strat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: %v\n", err)
		os.Exit(2)
	}
	// aasim submits the same canonical job value that aaserve accepts over
	// HTTP; run machinery (the collector, a debug dump path) rides along as
	// RunRequest extras because it never changes the Result.
	req := alltoall.Request{
		Strategy:      strategy,
		Shape:         shape,
		MsgBytes:      *msg,
		Seed:          *seed,
		Burst:         *burst,
		Shards:        *shards,
		Check:         *checkInv,
		EventQueue:    *eventq,
		Coalesce:      *coalesce,
		Sync:          *syncMode,
		Faults:        *faults,
		Observe:       *observe || *traceOut != "",
		ObserveWindow: *observeWindow,
	}
	if err := req.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "aasim: %v\n", err)
		os.Exit(2)
	}
	var obs *alltoall.Collector
	var extra []alltoall.Option
	if req.Observe {
		obs = alltoall.NewCollector(alltoall.ObserveConfig{Window: *observeWindow})
		extra = append(extra, alltoall.WithObserver(obs))
	}
	if *dump != "" {
		extra = append(extra, alltoall.WithDebugDump(*dump))
	}
	stopCPU := startCPUProfile(*cpuprofile)
	start := time.Now()
	res, err := alltoall.RunRequest(context.Background(), req, extra...)
	elapsed := time.Since(start)
	stopCPU()
	writeMemProfile(*memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: %v\n", err)
		os.Exit(1)
	}
	renderResult(os.Stdout, res)
	engine := "serial"
	if *shards > 1 {
		engine = fmt.Sprintf("%d shards", *shards)
	}
	fmt.Printf("simulated in    %s (%s engine, %d events, %.2fM events/s)\n",
		elapsed.Round(time.Millisecond), engine, res.Events, float64(res.Events)/1e6/elapsed.Seconds())
	if obs != nil {
		fmt.Println()
		if err := (report.Attribution{}).Write(os.Stdout, obs); err != nil {
			fmt.Fprintf(os.Stderr, "aasim: attribution: %v\n", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aasim: -trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteTrace(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "aasim: -trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "aasim: -trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace           %s\n", *traceOut)
	}
}
