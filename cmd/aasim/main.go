// Command aasim runs a single all-to-all configuration on the simulated
// torus and prints a detailed result.
//
// Usage:
//
//	aasim -shape 8x32x16 -strategy TPS -msg 1024
//	aasim -shape 8x8x4M -strategy AR -msg 240     # M marks a mesh dimension
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"alltoall"
)

// parseShape accepts "8", "8x8", "8x32x16", with an optional M suffix per
// dimension marking it as a mesh (no wrap links).
func parseShape(s string) (alltoall.Shape, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) < 1 || len(parts) > 3 {
		return alltoall.Shape{}, fmt.Errorf("shape %q: want 1-3 dimensions", s)
	}
	size := [3]int{1, 1, 1}
	wrap := [3]bool{}
	for i, p := range parts {
		mesh := strings.HasSuffix(p, "m")
		p = strings.TrimSuffix(p, "m")
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return alltoall.Shape{}, fmt.Errorf("shape %q: bad dimension %q", s, p)
		}
		size[i] = v
		wrap[i] = !mesh && v > 2
	}
	return alltoall.NewMesh(size[0], size[1], size[2], wrap[0], wrap[1], wrap[2]), nil
}

func main() {
	shapeStr := flag.String("shape", "8x8x8", "partition, e.g. 8x32x16 or 8x8x4M (M = mesh dimension)")
	strat := flag.String("strategy", "AR", "AR | DR | Throttle | MPI | TPS | VMesh")
	msg := flag.Int("msg", 1024, "per-pair payload bytes")
	seed := flag.Uint64("seed", 1, "randomization seed")
	burst := flag.Int("burst", 0, "packets per destination visit (0 = default)")
	dump := flag.String("dump", "", "file for a network state dump if the run stalls")
	flag.Parse()

	shape, err := parseShape(*shapeStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: %v\n", err)
		os.Exit(2)
	}
	start := time.Now()
	res, err := alltoall.Run(alltoall.Strategy(*strat), alltoall.Options{
		Shape:     shape,
		MsgBytes:  *msg,
		Seed:      *seed,
		Burst:     *burst,
		DebugDump: *dump,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aasim: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	calib := alltoall.DefaultCalib()
	fmt.Printf("strategy        %s\n", res.Strategy)
	fmt.Printf("partition       %v (%d nodes)\n", res.Shape, res.Shape.P())
	fmt.Printf("message         %d bytes per pair\n", res.MsgBytes)
	fmt.Printf("completion      %d units = %.3f ms\n", res.Time, res.Seconds*1e3)
	fmt.Printf("peak (Eq 2)     %.0f units = %.3f ms\n", res.PeakTime, calib.Seconds(res.PeakTime)*1e3)
	fmt.Printf("percent of peak %.1f%%\n", res.PercentPeak)
	fmt.Printf("per-node rate   %.1f MB/s\n", res.PerNodeMBs)
	fmt.Printf("packets         %d (%d wire bytes)\n", res.PacketsInjected, res.WireBytes)
	fmt.Printf("mean latency    %.0f units = %.1f us\n", res.MeanLatencyUnits, calib.Seconds(res.MeanLatencyUnits)*1e6)
	fmt.Printf("link util       mean %.2f max %.2f\n", res.MeanLinkUtil, res.MaxLinkUtil)
	fmt.Printf("simulated in    %s (%d events, %.2fM events/s)\n",
		elapsed.Round(time.Millisecond), res.Events, float64(res.Events)/1e6/elapsed.Seconds())
	if res.Strategy == alltoall.TPS {
		fmt.Printf("TPS linear dim  %v\n", res.TPSLinearDim)
	}
	if res.Strategy == alltoall.VMesh {
		fmt.Printf("virtual mesh    %dx%d, phases %v units\n", res.VMeshCols, res.VMeshRows, res.PhaseTimes)
	}
}
