package alltoall

import (
	"alltoall/internal/network"
	"alltoall/internal/serve"
	"alltoall/internal/torus"
)

// Unified error reporting: every failure mode a caller is expected to
// branch on is an exported sentinel, threaded with %w through both event
// engines (serial and sharded), both run entry styles (Options structs and
// functional options), the pattern runner, and the aaserve HTTP service,
// which maps each to a fixed status code. Classify with errors.Is; the
// message text around a sentinel is diagnostic detail, not API.
var (
	// ErrCanceled is wrapped by the error a canceled run returns: the
	// serial engine polls the context between events, the sharded engine
	// checks at its window barriers. HTTP: 408 Request Timeout.
	ErrCanceled = network.ErrCanceled

	// ErrMaxTime is wrapped when simulated time exceeds the MaxTime bound
	// before the workload completes (a stall or a collapsed
	// configuration). HTTP: 422 Unprocessable Entity.
	ErrMaxTime = network.ErrMaxTime

	// ErrBadShape is wrapped by every shape-validation and shape-parsing
	// error. HTTP: 400 Bad Request.
	ErrBadShape = torus.ErrBadShape

	// ErrQueueFull is returned by the serving layer when a job is refused
	// by admission control because the scheduler queue is at capacity.
	// HTTP: 429 Too Many Requests with a Retry-After estimate.
	ErrQueueFull = serve.ErrQueueFull
)
