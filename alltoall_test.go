package alltoall_test

import (
	"testing"

	"alltoall"
)

func TestFacadeRun(t *testing.T) {
	res, err := alltoall.Run(alltoall.AR, alltoall.Options{
		Shape:    alltoall.NewTorus(4, 4, 1),
		MsgBytes: 64,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PercentPeak <= 0 {
		t.Errorf("percent of peak = %v", res.PercentPeak)
	}
}

func TestFacadeStrategies(t *testing.T) {
	ss := alltoall.Strategies()
	if len(ss) != 7 {
		t.Fatalf("strategies = %v", ss)
	}
	want := map[alltoall.Strategy]bool{
		alltoall.AR: true, alltoall.DR: true, alltoall.Throttle: true,
		alltoall.MPI: true, alltoall.TPS: true, alltoall.VMesh: true,
		alltoall.XYZ: true,
	}
	for _, s := range ss {
		if !want[s] {
			t.Errorf("unexpected strategy %q", s)
		}
	}
}

func TestFacadePeak(t *testing.T) {
	// Equation 2 on the paper's largest machine: 40x32x16, C = 5.
	s := alltoall.NewTorus(40, 32, 16)
	if got := alltoall.PeakTime(s, 1); got != float64(20480*5) {
		t.Errorf("peak = %v", got)
	}
}

func TestFacadeTPSDim(t *testing.T) {
	if d := alltoall.SelectTPSLinearDim(alltoall.NewTorus(8, 32, 16)); d != alltoall.Y {
		t.Errorf("linear dim = %v, want Y", d)
	}
}

func TestFacadeMesh(t *testing.T) {
	s := alltoall.NewMesh(8, 8, 4, true, true, false)
	if s.Wrap[alltoall.Z] {
		t.Error("Z should be a mesh dimension")
	}
	res, err := alltoall.Run(alltoall.DR, alltoall.Options{Shape: alltoall.NewMesh(4, 4, 1, true, true, false), MsgBytes: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PayloadBytes == 0 {
		t.Error("no payload delivered")
	}
}

func TestFacadePredictions(t *testing.T) {
	c := alltoall.DefaultCalib()
	s := alltoall.NewTorus(8, 8, 8)
	if alltoall.PredictDirect(c, s, 1000) <= alltoall.PeakTime(s, 1000) {
		t.Error("Eq3 prediction must exceed the Eq2 peak (startup + header)")
	}
	if alltoall.PredictVMesh(c, s, 32, 16, 8) <= 0 {
		t.Error("Eq4 prediction not positive")
	}
	cols, rows := alltoall.BalancedVMeshFactor(512)
	if cols != 32 || rows != 16 {
		t.Errorf("factorization %dx%d", cols, rows)
	}
}

func TestFacadePattern(t *testing.T) {
	res, err := alltoall.RunPattern(alltoall.Shift{Offset: 2}, alltoall.PatternOptions{
		Shape:    alltoall.NewTorus(4, 4, 1),
		MsgBytes: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 16 {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestFacadeTPSCreditFlowControl(t *testing.T) {
	// Each intermediate forwards 3 finals x 2 packets per source (the
	// fourth final in its plane is itself), so a batch of 4 yields credits.
	res, err := alltoall.Run(alltoall.TPS, alltoall.Options{
		Shape:           alltoall.NewTorus(8, 2, 2),
		MsgBytes:        400,
		Seed:            1,
		TPSCreditWindow: 8,
		TPSCreditBatch:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CreditPackets == 0 {
		t.Error("flow control sent no credits")
	}
	if res.MaxIntermediateBacklog == 0 {
		t.Error("no forwarding backlog recorded")
	}
}
