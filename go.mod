module alltoall

go 1.22
