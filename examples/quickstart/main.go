// Quickstart: run one all-to-all on a simulated Blue Gene/L midplane and
// print how close it gets to the bisection-limited peak.
package main

import (
	"fmt"
	"log"

	"alltoall"
)

func main() {
	// An 8x8x8 torus is one Blue Gene/L midplane (512 nodes). Every node
	// sends a distinct 1 KiB message to every other node.
	res, err := alltoall.Run(alltoall.AR, alltoall.Options{
		Shape:    alltoall.NewTorus(8, 8, 8),
		MsgBytes: 1024,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-to-all on %v: %d nodes x %d bytes to each of %d peers\n",
		res.Shape, res.Shape.P(), res.MsgBytes, res.Shape.P()-1)
	fmt.Printf("completed in %.2f ms (%.1f%% of the Equation 2 peak)\n",
		res.Seconds*1e3, res.PercentPeak)
	fmt.Printf("per-node throughput: %.0f MB/s (bisection limit %.0f MB/s)\n",
		res.PerNodeMBs, res.PerNodeMBs*100/res.PercentPeak)
}
