// Quickstart: run one all-to-all on a simulated Blue Gene/L midplane and
// print how close it gets to the bisection-limited peak.
package main

import (
	"context"
	"fmt"
	"log"

	"alltoall"
)

func main() {
	// An 8x8x8 torus is one Blue Gene/L midplane (512 nodes). Every node
	// sends a distinct 1 KiB message to every other node. A Request is the
	// canonical job value: the same struct runs here, from the aasim CLI,
	// and as an aaserve HTTP job, with req.Key() as its cache identity.
	req, err := alltoall.NewRequest(alltoall.AR,
		alltoall.WithShape(alltoall.NewTorus(8, 8, 8)),
		alltoall.WithMsgBytes(1024),
		alltoall.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := alltoall.RunRequest(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-to-all on %v: %d nodes x %d bytes to each of %d peers\n",
		res.Shape, res.Shape.P(), res.MsgBytes, res.Shape.P()-1)
	fmt.Printf("completed in %.2f ms (%.1f%% of the Equation 2 peak)\n",
		res.Seconds*1e3, res.PercentPeak)
	fmt.Printf("per-node throughput: %.0f MB/s (bisection limit %.0f MB/s)\n",
		res.PerNodeMBs, res.PerNodeMBs*100/res.PercentPeak)
}
