// Short-message optimization: the paper's Section 4.2. For very short
// messages the per-destination software header (48 bytes) and the 64-byte
// minimum packet dominate the wire cost of a direct all-to-all. The 2D
// virtual-mesh scheme combines the blocks for a whole virtual-mesh column
// into one message, amortizing headers; every byte crosses the network
// twice, so the scheme loses for large messages. The crossover is around
// h - 2*proto = 32 bytes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"alltoall"
)

func main() {
	msgMax := flag.Int("max", 256, "largest message size to sweep")
	flag.Parse()

	shape := alltoall.NewTorus(8, 8, 4)
	fmt.Printf("AR vs VMesh on %v (%d nodes)\n\n", shape, shape.P())
	fmt.Printf("%8s  %12s  %12s  %s\n", "bytes", "AR ms", "VMesh ms", "winner")

	crossover := -1
	for m := 1; m <= *msgMax; m *= 4 {
		ar, err := alltoall.RunContext(context.Background(), alltoall.AR,
			alltoall.WithShape(shape), alltoall.WithMsgBytes(m), alltoall.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		vm, err := alltoall.RunContext(context.Background(), alltoall.VMesh,
			alltoall.WithShape(shape), alltoall.WithMsgBytes(m), alltoall.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		winner := "VMesh"
		if ar.Time <= vm.Time {
			winner = "AR"
			if crossover < 0 {
				crossover = m
			}
		}
		fmt.Printf("%8d  %12.4f  %12.4f  %s\n", m, ar.Seconds*1e3, vm.Seconds*1e3, winner)
	}
	if crossover > 0 {
		fmt.Printf("\ndirect strategy takes over near %d bytes (paper: 32-64 bytes)\n", crossover)
	} else {
		fmt.Println("\nVMesh won the whole sweep; raise -max to find the crossover")
	}
}
