// Asymmetric-torus rescue: the paper's headline result. On an asymmetric
// torus, the direct adaptive-routing all-to-all loses a large fraction of
// peak to network contention (the long dimension's links saturate and
// head-of-line blocking spreads); the Two Phase Schedule routes packets
// along the long dimension first, to an intermediate that re-injects them
// across the symmetric plane, and restores near-peak throughput.
//
// This example compares AR, DR and TPS on an asymmetric 2n x n x n torus.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"alltoall"
)

func main() {
	n := flag.Int("n", 6, "base dimension: the torus is 2n x n x n (try -n 8 for the paper's 1024-node shape)")
	msg := flag.Int("msg", 480, "per-pair payload bytes")
	flag.Parse()

	shape := alltoall.NewTorus(2*(*n), *n, *n)
	fmt.Printf("asymmetric torus %v (%d nodes), %d-byte messages\n\n",
		shape, shape.P(), *msg)

	for _, strat := range []alltoall.Strategy{alltoall.AR, alltoall.DR, alltoall.TPS} {
		res, err := alltoall.RunContext(context.Background(), strat,
			alltoall.WithShape(shape),
			alltoall.WithMsgBytes(*msg),
			alltoall.WithSeed(1),
		)
		if err != nil {
			log.Fatalf("%s: %v", strat, err)
		}
		note := ""
		if strat == alltoall.TPS {
			note = fmt.Sprintf("  (phase 1 along %v)", res.TPSLinearDim)
		}
		fmt.Printf("%-8s %6.1f%% of peak  %8.3f ms%s\n",
			strat, res.PercentPeak, res.Seconds*1e3, note)
	}
	fmt.Println("\nExpected shape (paper, Table 2/3): AR degrades on the asymmetric")
	fmt.Println("torus; TPS recovers to near the direct strategies' symmetric level.")
}
