// Many-to-many patterns: the paper's analysis applied beyond all-to-all.
// Runs a catalogue of classic communication patterns on one simulated
// torus and reports achieved throughput and the contention each induces.
package main

import (
	"context"
	"fmt"
	"log"

	"alltoall"
)

func main() {
	shape := alltoall.NewTorus(8, 8, 4)
	fmt.Printf("many-to-many patterns on %v (%d nodes), 512-byte messages\n\n", shape, shape.P())
	fmt.Printf("%-14s %10s %12s %10s %10s\n", "pattern", "messages", "time (us)", "max util", "mean util")

	patterns := []alltoall.Pattern{
		alltoall.DimShift{Dim: alltoall.X, Hops: 1},
		alltoall.Shift{Offset: 37},
		alltoall.RandomPermutation{Seed: 7},
		alltoall.RandomSubset{K: 8, Seed: 7},
		alltoall.HotSpot{Root: 0},
	}
	for _, p := range patterns {
		res, err := alltoall.RunPatternContext(context.Background(), p,
			alltoall.WithShape(shape),
			alltoall.WithMsgBytes(512),
			alltoall.WithSeed(1),
		)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		fmt.Printf("%-14s %10d %12.1f %10.2f %10.2f\n",
			res.Pattern, res.Messages, res.Seconds*1e6, res.MaxLinkUtil, res.MeanLinkUtil)
	}
	fmt.Println("\nNearest-neighbour shifts stream at link speed; random many-to-many")
	fmt.Println("spreads load like the all-to-all; the hot spot serializes on the")
	fmt.Println("root's reception links no matter how good the routing is.")
}
