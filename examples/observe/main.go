// Bottleneck attribution: seeing the paper's Section 5 diagnosis instead
// of inferring it. On an asymmetric torus the direct adaptive-routing
// all-to-all loses throughput because the long dimension's links saturate
// while Y/Z packets head-of-line block behind them in the dynamic VCs. An
// observer attached to the run measures exactly that: per-dimension link
// utilization (X pinned, Y/Z idle), a hot head-of-line-blocking counter,
// and a per-window heatmap - then shows the Two Phase Schedule dissolving
// all three on the same shape.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"alltoall"
	"alltoall/internal/report"
)

func main() {
	n := flag.Int("n", 8, "base dimension: the torus is 2n x n x n (8 = the paper's 1024-node shape)")
	msg := flag.Int("msg", 240, "per-pair payload bytes")
	trace := flag.String("trace-out", "", "write the per-window JSONL trace for the AR run to this file")
	flag.Parse()

	shape := alltoall.NewTorus(2*(*n), *n, *n)
	fmt.Printf("observing all-to-all on %v (%d nodes), %d-byte messages\n\n", shape, shape.P(), *msg)

	for _, strat := range []alltoall.Strategy{alltoall.AR, alltoall.TPS} {
		obs := alltoall.NewCollector(alltoall.ObserveConfig{})
		res, err := alltoall.RunContext(context.Background(), strat,
			alltoall.WithShape(shape),
			alltoall.WithMsgBytes(*msg),
			alltoall.WithSeed(1),
			alltoall.WithObserver(obs),
		)
		if err != nil {
			log.Fatalf("%s: %v", strat, err)
		}
		fmt.Printf("=== %s: %.1f%% of peak ===\n\n", strat, res.PercentPeak)
		if err := (report.Attribution{}).Write(os.Stdout, obs); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if *trace != "" && strat == alltoall.AR {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			if err := obs.WriteTrace(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("(AR trace written to %s)\n\n", *trace)
		}
	}
}
