// Model fit: reproduce the Figure 1 methodology - compare the measured
// all-to-all time against the paper's analytic model (Equation 3) and the
// bisection-limited peak (Equation 2) across message sizes.
package main

import (
	"context"
	"fmt"
	"log"

	"alltoall"
)

func main() {
	shape := alltoall.NewTorus(8, 8, 8)
	calib := alltoall.DefaultCalib()
	fmt.Printf("AR on %v: measured vs model\n\n", shape)
	fmt.Printf("%8s  %14s  %14s  %14s  %s\n",
		"bytes", "measured ms", "Eq3 model ms", "Eq2 peak ms", "model err")

	for _, m := range []int{64, 256, 1024, 4096} {
		res, err := alltoall.RunContext(context.Background(), alltoall.AR,
			alltoall.WithShape(shape), alltoall.WithMsgBytes(m), alltoall.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		pred := alltoall.PredictDirect(calib, shape, m)
		peak := alltoall.PeakTime(shape, m)
		errPct := 100 * (res.Seconds - calib.Seconds(pred)) / calib.Seconds(pred)
		fmt.Printf("%8d  %14.4f  %14.4f  %14.4f  %+.1f%%\n",
			m, res.Seconds*1e3, calib.Seconds(pred)*1e3, calib.Seconds(peak)*1e3, errPct)
	}
	fmt.Println("\nThe model tracks the measurement to within the simulator's")
	fmt.Println("packet-granularity tax; both converge toward the Eq 2 peak")
	fmt.Println("as messages grow and startup costs amortize.")
}
