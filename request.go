package alltoall

import (
	"context"

	"alltoall/internal/collective"
	"alltoall/internal/torus"
)

// Request is the canonical, value-comparable description of one simulation
// job and the redesigned front door of this API: the same Request type is
// submitted programmatically (RunRequest), from the aasim CLI, by the
// experiments engine, and over HTTP to the aaserve service - and a given
// Request produces a byte-identical Result wherever and however often it
// runs, which is what makes Key() a sound cache identity.
//
// The zero value plus Strategy, Shape and MsgBytes is a complete job; every
// other field's zero value means "library default". Request marshals
// to/from the stable snake_case JSON wire form used by aaserve (shapes in
// the ParseShape grammar). See collective.Request for field documentation.
type Request = collective.Request

// NewRequest builds the canonical Request for a strategy from functional
// options - the Options ⇄ Request bridge. Options carrying non-canonical
// state (explicit Params/Calib overrides, an Observer, a Cache, a debug
// dump path) return an error wrapping collective.ErrNotCanonical: those
// never change a run's Result, so they are excluded from request identity;
// attach them per call as RunRequest extras instead.
//
//	req, err := alltoall.NewRequest(alltoall.TPS,
//		alltoall.WithShape(alltoall.NewTorus(8, 32, 16)),
//		alltoall.WithMsgBytes(1024))
//	key := req.Key() // stable cache/bench identity
func NewRequest(strat Strategy, opts ...Option) (Request, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return collective.NewRequest(strat, o)
}

// RunRequest executes a canonical Request under a context; it is RunContext
// with a value identity. Cancellation and deadlines abort the simulation
// promptly with an error wrapping ErrCanceled. The extra options, by
// contract, attach run machinery only - WithCache, WithObserver, a debug
// dump - never anything that changes the simulated outcome; Results are
// byte-identical for equal Requests at any concurrency, on every entry
// point.
//
//	res, err := alltoall.RunRequest(ctx, req)
func RunRequest(ctx context.Context, req Request, extra ...Option) (Result, error) {
	xs := make([]func(*collective.Options), len(extra))
	for i, e := range extra {
		xs[i] = e
	}
	return collective.RunRequest(ctx, req, xs...)
}

// ParseStrategy resolves a strategy name case-insensitively ("tps" = TPS)
// to its canonical spelling, as the CLIs and the aaserve wire format do.
func ParseStrategy(name string) (Strategy, error) { return collective.ParseStrategy(name) }

// ParseShape reads the textual shape grammar shared by the CLIs and the
// aaserve wire format: "8", "8x8", "8x32x16", with an optional M (or m)
// suffix per dimension marking it as a mesh. Errors wrap ErrBadShape.
// Shape.Canon renders the inverse, injective form.
func ParseShape(s string) (Shape, error) { return torus.Parse(s) }

// NetCache recycles simulation-network allocations across runs that share a
// shape and machine parameters (see WithCache). A cache must not be shared
// between concurrent runs; give each worker its own.
type NetCache = collective.NetCache

// WithCache lets the run recycle the cached network's router, queue,
// packet-pool and event-queue allocations via Network.Reset when the shape
// and parameters match (message-size sweeps, repeated served jobs). Purely
// run machinery: results are byte-identical with or without a cache.
func WithCache(c *NetCache) Option { return func(o *Options) { o.Cache = c } }

// WithDetRouting forces deterministic dimension-ordered routing for runs
// whose workload does not already fix the routing mode. Only pattern runs
// (RunPatternContext) consult it; the collective strategies choose routing
// per strategy.
func WithDetRouting(on bool) Option { return func(o *Options) { o.DetRouting = on } }
