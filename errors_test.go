package alltoall_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"alltoall"
)

// TestErrMaxTime checks the exceeded-time sentinel threads out of both
// engines through the public API.
func TestErrMaxTime(t *testing.T) {
	for _, shards := range []int{1, 4} {
		_, err := alltoall.RunContext(context.Background(), alltoall.AR,
			alltoall.WithShape(alltoall.NewTorus(4, 4, 2)),
			alltoall.WithMsgBytes(1024),
			alltoall.WithMaxTime(50),
			alltoall.WithShards(shards),
		)
		if !errors.Is(err, alltoall.ErrMaxTime) {
			t.Errorf("shards=%d: err = %v, want wrapping ErrMaxTime", shards, err)
		}
	}
}

// TestErrCanceled cancels a long run mid-flight on both engines.
func TestErrCanceled(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, shards := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		// Big enough that 30ms of wall time cannot finish it.
		_, err := alltoall.RunContext(ctx, alltoall.AR,
			alltoall.WithShape(alltoall.NewTorus(8, 8, 8)),
			alltoall.WithMsgBytes(2048),
			alltoall.WithShards(shards),
		)
		cancel()
		if !errors.Is(err, alltoall.ErrCanceled) {
			t.Errorf("shards=%d: err = %v, want wrapping ErrCanceled", shards, err)
		}
	}
}

func TestErrBadShape(t *testing.T) {
	if _, err := alltoall.ParseShape("0x4"); !errors.Is(err, alltoall.ErrBadShape) {
		t.Errorf("ParseShape err = %v, want wrapping ErrBadShape", err)
	}
	_, err := alltoall.RunContext(context.Background(), alltoall.AR,
		alltoall.WithMsgBytes(64)) // zero shape
	if !errors.Is(err, alltoall.ErrBadShape) {
		t.Errorf("RunContext err = %v, want wrapping ErrBadShape", err)
	}
	req := alltoall.Request{Strategy: alltoall.AR, MsgBytes: 64}
	if err := req.Validate(); !errors.Is(err, alltoall.ErrBadShape) {
		t.Errorf("Request.Validate err = %v, want wrapping ErrBadShape", err)
	}
}

// TestErrQueueFull checks the re-exported sentinel matches what the serving
// layer wraps (the HTTP 429 path is covered in internal/serve).
func TestErrQueueFull(t *testing.T) {
	wrapped := fmt.Errorf("submit: %w", alltoall.ErrQueueFull)
	if !errors.Is(wrapped, alltoall.ErrQueueFull) {
		t.Error("ErrQueueFull does not survive wrapping")
	}
}
