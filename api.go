package alltoall

import (
	"context"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/observe"
)

// Option configures a RunContext call. Options are applied in argument
// order over a zero configuration, so a later option overrides an earlier
// one.
//
// Configuration precedence, documented here once and holding everywhere:
// an explicit Option wins over the corresponding Options/Params struct
// field (options are applied after WithOptions/WithParams), and any field
// left at its zero value takes the library default (DefaultParams,
// DefaultCalib, Burst 2, PaceFraction 0.95, and a MaxTime derived from the
// peak-time model). The one asymmetry: checking is enable-only - either
// WithCheck(true) or Params.Check turns the invariant checker on.
type Option func(*collective.Options)

// WithOptions seeds the whole legacy Options struct; later options
// override individual fields.
//
// Deprecated: WithOptions exists to bridge callers migrating from Run to
// RunContext. New code should compose individual options, or build a
// canonical Request (NewRequest / RunRequest) when the configuration is a
// job identity.
func WithOptions(o Options) Option { return func(dst *Options) { *dst = o } }

// WithShape sets the torus/mesh partition (required).
func WithShape(s Shape) Option { return func(o *Options) { o.Shape = s } }

// WithMsgBytes sets the per-pair payload m in bytes (required, >= 1).
func WithMsgBytes(m int) Option { return func(o *Options) { o.MsgBytes = m } }

// WithSeed sets the randomization seed for destination orders.
func WithSeed(seed uint64) Option { return func(o *Options) { o.Seed = seed } }

// WithShards selects the deterministic sharded engine with n workers
// (results are byte-identical to the serial engine; 0 or 1 stays serial).
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithSync selects the sharded engine's synchronization protocol: "" or
// SyncAsync for the asynchronous conservative engine (the default), SyncBSP
// for the lockstep window-barrier escape hatch. Results are byte-identical
// either way; this is a performance knob, meaningful only with shards > 1.
func WithSync(mode string) Option { return func(o *Options) { o.Sync = mode } }

// WithCheck enables the runtime invariant checker (~1.4x simulation time).
func WithCheck(on bool) Option { return func(o *Options) { o.Check = on } }

// WithFaults installs a deterministic link-fault schedule: links go down,
// come back, die permanently, or degrade at scheduled times, and the routers
// steer packets around the damage via the adaptive dynamic VCs and the
// escape bubble channel. Results stay byte-identical at any shard count.
// Parse a schedule from the -faults spec grammar with ParseFaults, or build
// a FaultSchedule directly. nil (or an empty schedule) faults nothing and is
// byte-identical to an unfaulted run.
func WithFaults(fs *FaultSchedule) Option { return func(o *Options) { o.Faults = fs } }

// WithParams sets the simulated machine parameters (zero value: DefaultParams).
func WithParams(p Params) Option { return func(o *Options) { o.Par = p } }

// WithCalib sets the analytic-model calibration constants (zero value:
// DefaultCalib).
func WithCalib(c Calib) Option { return func(o *Options) { o.Calib = c } }

// WithMaxTime bounds the simulated time before the run aborts (0 derives a
// generous bound from the peak-time model).
func WithMaxTime(t int64) Option { return func(o *Options) { o.MaxTime = t } }

// WithObserver installs an observer on the run; pass a *Collector to get
// link/VC utilization, head-of-line-blocking attribution, FIFO watermarks,
// and a windowed trace. The run's Result.Observed then carries the
// collector's Summary. Observation never perturbs the simulation; a nil
// observer (the default) costs one predicted branch per event.
func WithObserver(obs Observer) Option { return func(o *Options) { o.Observer = obs } }

// WithDebugDump writes a network state dump to path if the run stalls
// against its MaxTime bound. Run machinery only: it never changes a Result,
// so it is excluded from Request identity (attach it as a RunRequest extra).
func WithDebugDump(path string) Option { return func(o *Options) { o.DebugDump = path } }

// RunContext executes one all-to-all with the given strategy under a
// context. Cancellation aborts the simulation promptly (the serial engine
// polls between events; the sharded engine checks at its window barriers)
// and surfaces an error wrapping ErrCanceled.
//
//	obs := alltoall.NewCollector(alltoall.ObserveConfig{})
//	res, err := alltoall.RunContext(ctx, alltoall.AR,
//		alltoall.WithShape(alltoall.NewTorus(16, 8, 8)),
//		alltoall.WithMsgBytes(1024),
//		alltoall.WithObserver(obs))
func RunContext(ctx context.Context, strat Strategy, opts ...Option) (Result, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return collective.RunContext(ctx, strat, o)
}

// Observer taps the simulator's hot path for instrumentation; see
// WithObserver. Collector is the standard implementation.
type Observer = network.Observer

// Collector gathers per-link/per-VC traffic, head-of-line blocking, FIFO
// watermarks, and CPU occupancy for a run (or an accumulated sweep); see
// the observe package for details. Use NewCollector.
type Collector = observe.Collector

// ObserveConfig tunes a Collector (zero value: sensible defaults).
type ObserveConfig = observe.Config

// NewCollector returns a Collector with the given configuration (zero
// value for defaults). A collector may accumulate several runs on one
// shape; Reset clears it.
func NewCollector(cfg ObserveConfig) *Collector { return observe.New(cfg) }

// Summary is the stable run-level digest a Collector produces, returned on
// Result.Observed.
type Summary = observe.Summary

// FaultSchedule is a deterministic set of timed link faults; see WithFaults.
type FaultSchedule = network.FaultSchedule

// FaultEvent is one scheduled link transition of a FaultSchedule.
type FaultEvent = network.FaultEvent

// Fault actions for FaultEvent (down / up / kill / degrade).
const (
	FaultDown    = network.FaultDown
	FaultUp      = network.FaultUp
	FaultKill    = network.FaultKill
	FaultDegrade = network.FaultDegrade
)

// ParseFaults parses the textual fault-schedule grammar shared with the
// aasim/aabench -faults flag: semicolon-separated "t:node:dir:action" events
// where dir is one of +x -x +y -y +z -z and action is down, up, kill, or xN
// (degrade: wire occupancy multiplied by N).
func ParseFaults(spec string) (*FaultSchedule, error) { return network.ParseFaults(spec) }
