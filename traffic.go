package alltoall

import "alltoall/internal/traffic"

// Beyond all-to-all: many-to-many traffic patterns on the same simulated
// torus (the paper's introduction motivates applying its analysis to such
// patterns). See the traffic example for usage.

// Pattern generates per-source destination lists for a many-to-many run.
type Pattern = traffic.Pattern

// The built-in patterns.
type (
	// Shift sends each rank one message Offset ranks ahead (wrapping).
	Shift = traffic.Shift
	// DimShift shifts along one torus dimension by a fixed hop count.
	DimShift = traffic.DimShift
	// Transpose exchanges X and Y coordinates (square XY planes only).
	Transpose = traffic.Transpose
	// RandomPermutation pairs every rank with a distinct random partner.
	RandomPermutation = traffic.RandomPermutation
	// HotSpot sends every rank's message to one root (incast).
	HotSpot = traffic.HotSpot
	// RandomSubset sends each rank one message to K distinct random peers.
	RandomSubset = traffic.RandomSubset
)

// PatternOptions configures RunPattern.
type PatternOptions = traffic.Options

// PatternResult reports a RunPattern run.
type PatternResult = traffic.Result

// RunPattern executes a many-to-many pattern on the simulated torus.
func RunPattern(p Pattern, opts PatternOptions) (PatternResult, error) {
	return traffic.Run(p, opts)
}
