package alltoall

import (
	"context"

	"alltoall/internal/traffic"
)

// Beyond all-to-all: many-to-many traffic patterns on the same simulated
// torus (the paper's introduction motivates applying its analysis to such
// patterns). See the traffic example for usage.

// Pattern generates per-source destination lists for a many-to-many run.
type Pattern = traffic.Pattern

// The built-in patterns.
type (
	// Shift sends each rank one message Offset ranks ahead (wrapping).
	Shift = traffic.Shift
	// DimShift shifts along one torus dimension by a fixed hop count.
	DimShift = traffic.DimShift
	// Transpose exchanges X and Y coordinates (square XY planes only).
	Transpose = traffic.Transpose
	// RandomPermutation pairs every rank with a distinct random partner.
	RandomPermutation = traffic.RandomPermutation
	// HotSpot sends every rank's message to one root (incast).
	HotSpot = traffic.HotSpot
	// RandomSubset sends each rank one message to K distinct random peers.
	RandomSubset = traffic.RandomSubset
)

// PatternOptions configures RunPattern.
type PatternOptions = traffic.Options

// PatternResult reports a RunPattern run.
type PatternResult = traffic.Result

// RunPatternContext executes a many-to-many pattern on the simulated torus
// under a context, with the same Option vocabulary as RunContext: shape,
// message size, seed, shards, checking, event queue, coalescing and faults
// all mean the same thing for pattern runs as for the all-to-all
// strategies, plus WithDetRouting selects deterministic dimension-ordered
// routing. Cancellation aborts the run with an error wrapping ErrCanceled;
// an exceeded MaxTime wraps ErrMaxTime.
//
//	res, err := alltoall.RunPatternContext(ctx, alltoall.Transpose{},
//		alltoall.WithShape(alltoall.NewTorus(8, 8, 1)),
//		alltoall.WithMsgBytes(4096))
func RunPatternContext(ctx context.Context, p Pattern, opts ...Option) (PatternResult, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return traffic.RunOpts(ctx, p, o)
}

// RunPattern executes a many-to-many pattern on the simulated torus.
//
// Deprecated: RunPattern is the legacy struct-options entry point, kept as
// a thin wrapper; prefer RunPatternContext, which shares the unified Option
// set with RunContext and adds cancellation and engine sharding.
func RunPattern(p Pattern, opts PatternOptions) (PatternResult, error) {
	return traffic.Run(p, opts)
}
