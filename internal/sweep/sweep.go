// Package sweep runs families of all-to-all experiments: message-size
// sweeps (the paper's figures plot throughput against message size) and
// partition sweeps (percent of peak across machine shapes).
package sweep

import (
	"context"
	"fmt"

	"alltoall/internal/collective"
	"alltoall/internal/parallel"
)

// Point is one sweep sample.
type Point struct {
	MsgBytes int
	Result   collective.Result
}

// MessageSizes returns a doubling ladder of message sizes in [lo, hi],
// always including both endpoints.
func MessageSizes(lo, hi int) []int {
	if lo < 1 {
		lo = 1
	}
	var out []int
	for m := lo; m < hi; m *= 2 {
		out = append(out, m)
	}
	if len(out) == 0 || out[len(out)-1] != hi {
		return append(out, hi)
	}
	return out
}

// Messages runs one strategy across the given message sizes, reusing opts
// for everything else. Points run in parallel across all cores; see
// MessagesN for worker control.
func Messages(strat collective.Strategy, opts collective.Options, sizes []int) ([]Point, error) {
	return MessagesN(context.Background(), 0, strat, opts, sizes)
}

// MessagesN is Messages with explicit context and worker count (<= 0 means
// GOMAXPROCS). Each run is seeded independently of scheduling, and every
// worker carries its own network cache, so results are identical at any
// worker count and are returned in size order.
func MessagesN(ctx context.Context, workers int, strat collective.Strategy, opts collective.Options, sizes []int) ([]Point, error) {
	return parallel.MapLocal(ctx, workers, sizes,
		func() *collective.NetCache { return &collective.NetCache{} },
		func(_ context.Context, cache *collective.NetCache, _ int, m int) (Point, error) {
			o := opts
			o.MsgBytes = m
			o.Cache = cache
			res, err := collective.Run(strat, o)
			if err != nil {
				return Point{}, fmt.Errorf("sweep: %s at m=%d: %w", strat, m, err)
			}
			return Point{MsgBytes: m, Result: res}, nil
		})
}

// Crossover returns the smallest swept message size at which strategy b's
// completion time meets or beats strategy a's, or -1 if it never does. Both
// series must be over identical sizes.
func Crossover(a, b []Point) int {
	for i := range a {
		if i < len(b) && b[i].MsgBytes == a[i].MsgBytes && a[i].Result.Time <= b[i].Result.Time {
			return a[i].MsgBytes
		}
	}
	return -1
}
