// Package sweep runs families of all-to-all experiments: message-size
// sweeps (the paper's figures plot throughput against message size) and
// partition sweeps (percent of peak across machine shapes).
package sweep

import (
	"fmt"

	"alltoall/internal/collective"
)

// Point is one sweep sample.
type Point struct {
	MsgBytes int
	Result   collective.Result
}

// MessageSizes returns a doubling ladder of message sizes in [lo, hi],
// always including both endpoints.
func MessageSizes(lo, hi int) []int {
	if lo < 1 {
		lo = 1
	}
	var out []int
	for m := lo; m < hi; m *= 2 {
		out = append(out, m)
	}
	if len(out) == 0 || out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// Messages runs one strategy across the given message sizes, reusing opts
// for everything else.
func Messages(strat collective.Strategy, opts collective.Options, sizes []int) ([]Point, error) {
	out := make([]Point, 0, len(sizes))
	for _, m := range sizes {
		o := opts
		o.MsgBytes = m
		res, err := collective.Run(strat, o)
		if err != nil {
			return out, fmt.Errorf("sweep: %s at m=%d: %w", strat, m, err)
		}
		out = append(out, Point{MsgBytes: m, Result: res})
	}
	return out, nil
}

// Crossover returns the smallest swept message size at which strategy b's
// completion time meets or beats strategy a's, or -1 if it never does. Both
// series must be over identical sizes.
func Crossover(a, b []Point) int {
	for i := range a {
		if i < len(b) && b[i].MsgBytes == a[i].MsgBytes && a[i].Result.Time <= b[i].Result.Time {
			return a[i].MsgBytes
		}
	}
	return -1
}
