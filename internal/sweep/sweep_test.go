package sweep

import (
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/torus"
)

func TestMessageSizes(t *testing.T) {
	got := MessageSizes(8, 64)
	want := []int{8, 16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", got, want)
		}
	}
	if s := MessageSizes(5, 5); len(s) != 1 || s[0] != 5 {
		t.Errorf("degenerate sweep = %v", s)
	}
	if s := MessageSizes(0, 2); s[0] != 1 {
		t.Errorf("lo clamp failed: %v", s)
	}
	if s := MessageSizes(8, 100); s[len(s)-1] != 100 {
		t.Errorf("hi endpoint missing: %v", s)
	}
}

func TestMessagesSweep(t *testing.T) {
	pts, err := Messages(collective.StratAR,
		collective.Options{Shape: torus.New(4, 4, 1), Seed: 1}, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Result.Time >= pts[1].Result.Time {
		t.Errorf("larger message should take longer: %d vs %d", pts[0].Result.Time, pts[1].Result.Time)
	}
}

func TestMessagesSweepError(t *testing.T) {
	_, err := Messages(collective.Strategy("bogus"),
		collective.Options{Shape: torus.New(4, 4, 1), Seed: 1}, []int{8})
	if err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestCrossover(t *testing.T) {
	mk := func(m int, tt int64) Point {
		return Point{MsgBytes: m, Result: collective.Result{Time: tt}}
	}
	a := []Point{mk(8, 100), mk(16, 150), mk(32, 210)}
	b := []Point{mk(8, 200), mk(16, 160), mk(32, 200)}
	// a beats b until 32 where a=210 >= b=200... Crossover(a,b) returns the
	// first size where a.Time <= b.Time, i.e. where a wins: that is 8.
	if got := Crossover(a, b); got != 8 {
		t.Errorf("crossover = %d, want 8", got)
	}
	if got := Crossover(b, a); got != 32 {
		t.Errorf("crossover = %d, want 32", got)
	}
	if got := Crossover(b[:2], a[:2]); got != -1 {
		t.Errorf("crossover = %d, want -1", got)
	}
}
