package sweep

import (
	"context"
	"reflect"
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/torus"
)

// TestMessagesNWorkerInvariance: the same sweep at 1 and at 8 workers must
// produce deeply equal points in the same order. This is the core guarantee
// that lets the experiment engine fan out rows without changing any table.
func TestMessagesNWorkerInvariance(t *testing.T) {
	opts := collective.Options{Shape: torus.New(4, 4, 2), Seed: 7}
	sizes := MessageSizes(8, 256)
	serial, err := MessagesN(context.Background(), 1, collective.StratTPS, opts, sizes)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MessagesN(context.Background(), 8, collective.StratTPS, opts, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("parallel sweep diverged from serial:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

// BenchmarkSweepParallel measures a small TPS message-size sweep end to end
// through the worker pool (workers = GOMAXPROCS, per-worker network cache).
func BenchmarkSweepParallel(b *testing.B) {
	opts := collective.Options{Shape: torus.New(4, 4, 2), Seed: 3}
	sizes := MessageSizes(8, 512)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := MessagesN(ctx, 0, collective.StratTPS, opts, sizes)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != len(sizes) {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

// BenchmarkSweepSerial is the same sweep pinned to one worker, for
// before/after comparison against BenchmarkSweepParallel.
func BenchmarkSweepSerial(b *testing.B) {
	opts := collective.Options{Shape: torus.New(4, 4, 2), Seed: 3}
	sizes := MessageSizes(8, 512)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MessagesN(ctx, 1, collective.StratTPS, opts, sizes); err != nil {
			b.Fatal(err)
		}
	}
}
