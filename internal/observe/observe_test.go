// Tests live in observe_test so they can drive full collective runs: the
// import chain collective -> observe forbids an internal test package.
package observe_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

func run(t *testing.T, strat collective.Strategy, shape torus.Shape, shards int, obs *observe.Collector) collective.Result {
	t.Helper()
	opts := collective.Options{
		Shape:    shape,
		MsgBytes: 240,
		Seed:     1,
		Shards:   shards,
	}
	if obs != nil { // a typed-nil *Collector must not become a non-nil Observer
		opts.Observer = obs
	}
	res, err := collective.RunContext(context.Background(), strat, opts)
	if err != nil {
		t.Fatalf("%s on %v: %v", strat, shape, err)
	}
	return res
}

// TestHoLSignature pins the head-of-line-blocking diagnostic to the paper's
// Section 5 claim: the counter is quiet on a symmetric torus (adaptive
// routing balances, nothing saturates ahead of anything) and hot on an
// asymmetric one (Y/Z dynamic-VC packets stuck behind saturated X links),
// where attribution must also name X and show idle Y/Z capacity.
func TestHoLSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("full collective runs")
	}

	obs := observe.New(observe.Config{})
	run(t, collective.StratAR, torus.New(8, 8, 8), 1, obs)
	sym := obs.Summary()
	if sym.SaturatedDim == "" {
		t.Fatalf("symmetric run recorded no traffic")
	}

	obs2 := observe.New(observe.Config{})
	res := run(t, collective.StratAR, torus.New(16, 8, 8), 1, obs2)
	asym := obs2.Summary()

	if asym.SaturatedDim != "x" {
		t.Errorf("asymmetric AR: saturated dim = %q, want x", asym.SaturatedDim)
	}
	if asym.UtilByDim[0] < 0.7 {
		t.Errorf("asymmetric AR: X util = %.2f, want >= 0.7 (saturated)", asym.UtilByDim[0])
	}
	for d := 1; d < torus.NumDims; d++ {
		if asym.UtilByDim[d] > 0.75*asym.UtilByDim[0] {
			t.Errorf("asymmetric AR: dim %d util %.2f not clearly below X's %.2f",
				d, asym.UtilByDim[d], asym.UtilByDim[0])
		}
	}
	if asym.HoLBlocked == 0 {
		t.Errorf("asymmetric AR: HoL counter is zero, want positive")
	}
	// The symmetric machine has no structurally saturated dimension for
	// packets to block behind: with the calibrated thresholds the counter
	// must be exactly zero (no block on 8x8x8 survives HoLDelay with
	// HoLMinQueue victims behind it).
	if sym.HoLBlocked != 0 {
		t.Errorf("symmetric HoL = %d, want 0", sym.HoLBlocked)
	}
	if res.Observed == nil || res.Observed.HoLBlocked != asym.HoLBlocked {
		t.Errorf("Result.Observed not carrying the collector summary: %+v", res.Observed)
	}
}

// TestTPSBalanced: on the same asymmetric shape the Two Phase Schedule's
// X traffic is uniform across links and the HoL counter stays cold.
func TestTPSBalanced(t *testing.T) {
	if testing.Short() {
		t.Skip("full collective runs")
	}
	obsAR := observe.New(observe.Config{})
	run(t, collective.StratAR, torus.New(16, 8, 8), 1, obsAR)
	obsTPS := observe.New(observe.Config{})
	run(t, collective.StratTPS, torus.New(16, 8, 8), 1, obsTPS)
	ar, tps := obsAR.Summary(), obsTPS.Summary()
	if tps.HoLBlocked*10 > ar.HoLBlocked {
		t.Errorf("TPS HoL %d not << AR HoL %d", tps.HoLBlocked, ar.HoLBlocked)
	}
	// Balanced: the busiest TPS link is close to the dimension mean, where
	// AR's ragged adaptive schedule leaves a wider spread.
	if tps.UtilByDim[0] > 0 && tps.MaxLinkUtil > 1.15*tps.UtilByDim[0] {
		t.Errorf("TPS max link util %.3f vs X mean %.3f: not balanced", tps.MaxLinkUtil, tps.UtilByDim[0])
	}
}

// TestObserverShardIdentity: an observed sharded run must produce the same
// Summary and the same trace bytes as the serial engine - observation is
// part of the determinism contract.
func TestObserverShardIdentity(t *testing.T) {
	shape := torus.New(8, 4, 4)
	obsSerial := observe.New(observe.Config{})
	resSerial := run(t, collective.StratAR, shape, 1, obsSerial)
	obsSharded := observe.New(observe.Config{})
	resSharded := run(t, collective.StratAR, shape, 4, obsSharded)

	if resSerial.Time != resSharded.Time {
		t.Fatalf("finish time diverged: serial %d, sharded %d", resSerial.Time, resSharded.Time)
	}
	if !reflect.DeepEqual(obsSerial.Summary(), obsSharded.Summary()) {
		t.Errorf("summaries diverged:\nserial:  %+v\nsharded: %+v", obsSerial.Summary(), obsSharded.Summary())
	}
	var a, b bytes.Buffer
	if err := obsSerial.WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := obsSharded.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("trace bytes diverged (serial %d bytes, sharded %d bytes)", a.Len(), b.Len())
	}
}

// TestObserverDoesNotPerturb: the simulation's outcome must be identical
// with and without an observer installed.
func TestObserverDoesNotPerturb(t *testing.T) {
	shape := torus.New(8, 4, 4)
	bare := run(t, collective.StratAR, shape, 1, nil)
	obs := observe.New(observe.Config{})
	observed := run(t, collective.StratAR, shape, 1, obs)
	if bare.Time != observed.Time || bare.PacketsInjected != observed.PacketsInjected ||
		bare.Events != observed.Events {
		t.Errorf("observer perturbed the run: bare {t=%d pkts=%d ev=%d}, observed {t=%d pkts=%d ev=%d}",
			bare.Time, bare.PacketsInjected, bare.Events,
			observed.Time, observed.PacketsInjected, observed.Events)
	}
}

// TestCollectorAccumulatesAndResets covers multi-run folding and reuse.
func TestCollectorAccumulatesAndResets(t *testing.T) {
	shape := torus.New(4, 4, 2)
	obs := observe.New(observe.Config{})
	run(t, collective.StratAR, shape, 1, obs)
	one := obs.Summary()
	run(t, collective.StratAR, shape, 1, obs)
	two := obs.Summary()
	if two.Runs != 2 || two.Finish != 2*one.Finish {
		t.Errorf("accumulation: runs=%d finish=%d, want 2 runs at finish %d", two.Runs, two.Finish, 2*one.Finish)
	}
	if two.BytesByDim[0] != 2*one.BytesByDim[0] {
		t.Errorf("accumulated X bytes %d, want %d", two.BytesByDim[0], 2*one.BytesByDim[0])
	}
	obs.Reset()
	run(t, collective.StratAR, shape, 1, obs)
	again := obs.Summary()
	if !reflect.DeepEqual(one, again) {
		t.Errorf("post-Reset summary diverged from first run:\n first: %+v\n again: %+v", one, again)
	}

	// Rebinding to a new shape resets implicitly.
	run(t, collective.StratAR, torus.New(4, 2, 2), 1, obs)
	if s := obs.Summary(); s.Runs != 1 || s.Shape != torus.New(4, 2, 2).String() {
		t.Errorf("shape rebind: %+v", s)
	}
}

// TestContextCancel: a canceled context aborts serial and sharded runs.
func TestContextCancel(t *testing.T) {
	for _, shards := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := collective.RunContext(ctx, collective.StratAR, collective.Options{
			Shape:    torus.New(8, 8, 8),
			MsgBytes: 240,
			Seed:     1,
			Shards:   shards,
		})
		if err == nil {
			t.Fatalf("shards=%d: canceled context did not abort the run", shards)
		}
	}
}

// TestAccessorsDoNotAliasInternals pins the read-API contract: every slice
// or struct an accessor hands out is the caller's to keep. Mutating a
// returned value must not change what a later call observes, and collecting
// more data must not mutate an already-returned snapshot.
func TestAccessorsDoNotAliasInternals(t *testing.T) {
	shape := torus.New(4, 4, 2)
	obs := observe.New(observe.Config{Window: 64})
	run(t, collective.StratAR, shape, 1, obs)

	// DimSeries: a held series must survive both caller mutation and
	// further collection (it feeds report attribution, which must not see
	// its inputs shift mid-analysis).
	s1 := obs.DimSeries(0)
	if len(s1) == 0 {
		t.Fatal("no windows recorded")
	}
	want := append([]int64(nil), s1...)
	for i := range s1 {
		s1[i] = -1
	}
	if s2 := obs.DimSeries(0); !reflect.DeepEqual(s2, want) {
		t.Errorf("mutating DimSeries return corrupted the collector: got %v, want %v", s2, want)
	}
	held := obs.DimSeries(0)
	run(t, collective.StratAR, shape, 1, obs)
	if !reflect.DeepEqual(held, want) {
		t.Errorf("later collection mutated a held DimSeries snapshot: got %v, want %v", held, want)
	}

	// RankLinks: entries are values; scribbling on them must not leak back.
	r1 := obs.RankLinks(0)
	if len(r1) == 0 {
		t.Fatal("no links ranked")
	}
	wantTop := r1[0]
	r1[0].Bytes = -1
	r1[0].Util = -1
	if r2 := obs.RankLinks(0); !reflect.DeepEqual(r2[0], wantTop) {
		t.Errorf("mutating RankLinks return corrupted the collector: got %+v, want %+v", r2[0], wantTop)
	}

	// Summary: each call builds a fresh struct.
	sum := obs.Summary()
	wantSum := *sum
	sum.BytesByDim[0] = -1
	sum.HoLMatrix[0][0] = -1
	if got := obs.Summary(); !reflect.DeepEqual(*got, wantSum) {
		t.Errorf("mutating Summary return corrupted the collector: got %+v, want %+v", *got, wantSum)
	}
}
