// Package observe turns the simulator's mechanisms into measurable time
// series: per-link and per-VC traffic bucketed into configurable windows,
// injection/reception FIFO depth high-watermarks, per-node CPU busy time,
// and a head-of-line-blocking counter that attributes lost arbitration
// cycles to the saturated dimension causing them. It is the measurement
// side of the paper's Section 5 diagnosis - adaptive routing on asymmetric
// tori loses throughput because Y/Z dynamic-VC packets head-of-line block
// behind saturated X links - which end-to-end percent-of-peak numbers can
// state but not attribute.
//
// A Collector implements network.Observer. Install one per run (or per
// sweep; counters accumulate across runs on the same shape until Reset):
//
//	obs := observe.New(observe.Config{})
//	res, err := alltoall.RunContext(ctx, alltoall.AR,
//		alltoall.WithShape(shape), alltoall.WithMsgBytes(1024),
//		alltoall.WithObserver(obs))
//	fmt.Println(res.Observed.SaturatedDim, res.Observed.HoLBlocked)
//
// Collectors are shard-aware: each engine shard records into its own sink
// (no locks on the hot path), and per-shard state folds into run totals in
// shard order when the run completes, so sharded runs aggregate
// deterministically - a Summary and trace are byte-identical at any shard
// count. A Collector must not be shared between concurrent runs.
package observe

import (
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// SchemaVersion identifies the machine-readable layout of Summary and of
// the trace JSONL records (see WriteTrace). Bump on any breaking change to
// field names or semantics.
const SchemaVersion = 1

// Default window and head-of-line thresholds; see Config.
const (
	DefaultWindow      = 4096
	DefaultHoLDelay    = 16384
	DefaultHoLMinQueue = 16
)

// Config tunes a Collector.
type Config struct {
	// Window is the bucket width, in time units, of the windowed series
	// (per-dimension/per-VC traffic, HoL events, CPU busy, FIFO
	// high-watermarks). Default DefaultWindow.
	Window int64

	// HoLDelay is the minimum time a packet must have been continuously
	// blocked before its lost arbitration passes count toward HoLBlocked.
	// Transient arbitration losses are the normal operating mode of a
	// saturated torus - on a symmetric machine under full adaptive-routing
	// load, cross-dimension blocks routinely persist for thousands of
	// units before the escape channel or a freed link clears them. The
	// default, 16384 (the time to serialize 64 maximum-size packets on a
	// link), sits above everything a balanced machine produces: measured
	// on an 8x8x8 AR all-to-all no block survives that long, while on
	// 16x8x8 tens of thousands do. A packet stalled past this bar is
	// structurally, not transiently, blocked.
	HoLDelay int64

	// HoLMinQueue is the minimum occupancy of the blocked packet's queue
	// for the pass to count: head-of-line blocking needs victims - packets
	// stacked behind the stuck head that its stall is also holding up. The
	// default 16 again clears the balanced machine's maximum (31-deep
	// transients occur on 8x8x8, but never simultaneously with a mature
	// block). Both thresholds must hold at once, so a false positive
	// requires a balanced machine to exceed its measured extremes in two
	// dimensions simultaneously.
	HoLMinQueue int32
}

func (c Config) fill() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.HoLDelay <= 0 {
		c.HoLDelay = DefaultHoLDelay
	}
	if c.HoLMinQueue <= 0 {
		c.HoLMinQueue = DefaultHoLMinQueue
	}
	return c
}

// Collector gathers observability counters for one simulated machine. The
// zero value is not ready; use New.
type Collector struct {
	cfg   Config
	shape torus.Shape
	par   network.Params
	p     int
	bound bool

	runs   int
	finish int64 // accumulated finish time across completed runs

	// Node-partitioned state, written directly by the owning shard's sink
	// (shards own disjoint node ranges, so there are no write conflicts).
	linkVC []vcBytes // [node*NumDirs+dir] wire bytes granted, per VC
	injHW  []int32   // [node] injection FIFO byte high-watermark
	recvHW []int32   // [node] reception FIFO byte high-watermark
	cpu    []int64   // [node] CPU busy time

	// Canonical windowed series and scalar counters, folded from the
	// per-shard sinks in shard order at EndRun.
	win windows

	// Fault aggregates (see fault.go): transition count, degrade count, peak
	// concurrently-dead links, total and per-window dead-link ticks, and the
	// forced-credit-return count noted by the collective layer.
	faultEvents   int64
	degradeEvents int64
	peakDead      int
	deadLinkTicks int64
	deadWin       []int64
	forcedCred    int64
	ftrans        []faultPoint    // per-run fold scratch
	openDown      map[int32]int64 // per-run open outage intervals

	sinks []*sink
}

type vcBytes [network.NumVC]int64

// windows holds the window-indexed series plus the scalar counters that
// accompany them; one instance per sink plus the canonical merged one.
type windows struct {
	byDim [torus.NumDims][]int64 // wire bytes granted per window, per dimension
	byVC  [network.NumVC][]int64 // wire bytes granted per window, per VC
	hol   []int64                // head-of-line-blocked arbitration passes per window
	cpu   []int64                // CPU busy time charged per window

	holMat     [torus.NumDims][torus.NumDims]int64 // [occupied-VC dim][wanted dim] mature blocks
	holBlocked int64                               // cross-dimension mature blocks with victims queued behind
	injBlocked int64                               // blocked passes of injection-FIFO head packets

	// faults collects this run's link transitions (fault.go); excluded from
	// merge - EndRun folds them into intervals via foldFaults instead.
	faults []faultPoint
}

// New returns a Collector with the given configuration (zero value for
// defaults). The collector binds to a machine shape on first use and may be
// reused across runs on that shape; Reset clears it for a different one.
func New(cfg Config) *Collector {
	return &Collector{cfg: cfg.fill()}
}

// Window returns the configured bucket width in time units.
func (c *Collector) Window() int64 { return c.cfg.Window }

// Shape returns the machine shape the collector is bound to (zero Shape
// before the first run).
func (c *Collector) Shape() torus.Shape { return c.shape }

// Runs returns the number of completed runs folded into the collector.
func (c *Collector) Runs() int { return c.runs }

// Finish returns the total simulated time observed: the sum of the finish
// times of all completed runs (multi-phase strategies contribute one run
// per phase).
func (c *Collector) Finish() int64 { return c.finish }

// Reset clears all counters and the shape binding, keeping allocations.
func (c *Collector) Reset() {
	c.bound = false
	c.runs = 0
	c.finish = 0
	for i := range c.linkVC {
		c.linkVC[i] = vcBytes{}
	}
	for i := range c.injHW {
		c.injHW[i] = 0
	}
	for i := range c.recvHW {
		c.recvHW[i] = 0
	}
	for i := range c.cpu {
		c.cpu[i] = 0
	}
	c.win.reset()
	for _, s := range c.sinks {
		s.win.reset()
	}
	c.faultEvents = 0
	c.degradeEvents = 0
	c.peakDead = 0
	c.deadLinkTicks = 0
	c.deadWin = c.deadWin[:0]
	c.forcedCred = 0
}

func (w *windows) reset() {
	for d := range w.byDim {
		w.byDim[d] = w.byDim[d][:0]
	}
	for v := range w.byVC {
		w.byVC[v] = w.byVC[v][:0]
	}
	w.hol = w.hol[:0]
	w.cpu = w.cpu[:0]
	w.holMat = [torus.NumDims][torus.NumDims]int64{}
	w.holBlocked = 0
	w.injBlocked = 0
	w.faults = w.faults[:0]
}

// BeginRun implements network.Observer. A collector bound to a different
// shape is reset to the new one (counters cannot meaningfully accumulate
// across machines).
func (c *Collector) BeginRun(shape torus.Shape, par network.Params) {
	if c.bound && shape == c.shape {
		c.par = par
		return
	}
	c.Reset()
	c.bound = true
	c.shape = shape
	c.par = par
	c.p = shape.P()
	if need := c.p * network.NumDirs; len(c.linkVC) < need {
		c.linkVC = make([]vcBytes, need)
	}
	if len(c.injHW) < c.p {
		c.injHW = make([]int32, c.p)
		c.recvHW = make([]int32, c.p)
		c.cpu = make([]int64, c.p)
	}
}

// Sink implements network.Observer.
func (c *Collector) Sink(shard, shards int, lo, hi int32) network.Sink {
	for len(c.sinks) <= shard {
		c.sinks = append(c.sinks, &sink{c: c})
	}
	return c.sinks[shard]
}

// EndRun implements network.Observer: folds every shard sink into the
// canonical series in shard order, leaving the sinks empty for the next
// run. Addition and max are order-independent, so the fold is deterministic
// at any shard count.
func (c *Collector) EndRun(finish int64) {
	c.runs++
	c.finish += finish
	c.foldFaults(finish)
	for _, s := range c.sinks {
		c.win.merge(&s.win)
		s.win.reset()
	}
}

func (w *windows) merge(o *windows) {
	for d := range w.byDim {
		w.byDim[d] = addSeries(w.byDim[d], o.byDim[d])
	}
	for v := range w.byVC {
		w.byVC[v] = addSeries(w.byVC[v], o.byVC[v])
	}
	w.hol = addSeries(w.hol, o.hol)
	w.cpu = addSeries(w.cpu, o.cpu)
	for i := range w.holMat {
		for j := range w.holMat[i] {
			w.holMat[i][j] += o.holMat[i][j]
		}
	}
	w.holBlocked += o.holBlocked
	w.injBlocked += o.injBlocked
}

func addSeries(dst, src []int64) []int64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// sink is one engine shard's private recording surface. Hot-path methods
// touch only this sink's windows and the collector's node-partitioned
// arrays at nodes the shard owns, so no synchronization is needed.
type sink struct {
	c   *Collector
	win windows
}

func growI64(s []int64, idx int) []int64 {
	for len(s) <= idx {
		s = append(s, 0)
	}
	return s
}

// OnGrant implements network.Sink.
func (s *sink) OnGrant(now int64, node int32, dir int, vc int8, size int32) {
	s.c.linkVC[int(node)*network.NumDirs+dir][vc] += int64(size)
	idx := int(now / s.c.cfg.Window)
	d := dir / 2
	s.win.byDim[d] = growI64(s.win.byDim[d], idx)
	s.win.byDim[d][idx] += int64(size)
	s.win.byVC[vc] = growI64(s.win.byVC[vc], idx)
	s.win.byVC[vc][idx] += int64(size)
}

// wantDim returns the single torus dimension a desire bitmask points at, or
// -1 when the packet still has a choice (blocks with an escape hatch are
// not attributable to one saturated resource).
func wantDim(want uint8) int {
	d := -1
	for dir := 0; dir < network.NumDirs; dir++ {
		if want&(1<<dir) == 0 {
			continue
		}
		if d >= 0 && d != dir/2 {
			return -1
		}
		d = dir / 2
	}
	return d
}

// OnBlocked implements network.Sink. Every blocked pass of a dynamic-VC
// packet whose remaining route needs exactly one dimension lands in the
// [occupied-VC dimension][wanted dimension] matrix - the census of who
// waits for whom. The headline HoLBlocked counter demands the full
// head-of-line pathology: a cross-dimension block (the packet ties down a
// VC of a dimension it no longer travels) that is structural (blocked
// beyond HoLDelay) with real victims (at least HoLMinQueue packets stacked
// in its queue) - the paper's "Y/Z dynamic VCs blocked behind saturated X
// links", made countable. See the Config fields for how the thresholds
// were calibrated to be exactly zero on a balanced machine.
func (s *sink) OnBlocked(now int64, node int32, inDir, vc int8, want uint8, since int64, qCount, win int32) {
	if vc < 0 {
		s.win.injBlocked++
		return
	}
	if vc != network.VCDyn0 && vc != network.VCDyn1 {
		return
	}
	wd := wantDim(want)
	if wd < 0 {
		return
	}
	id := int(inDir) / 2
	s.win.holMat[id][wd]++
	if id != wd && now-since >= s.c.cfg.HoLDelay && qCount >= s.c.cfg.HoLMinQueue {
		s.win.holBlocked++
		idx := int(now / s.c.cfg.Window)
		s.win.hol = growI64(s.win.hol, idx)
		s.win.hol[idx]++
	}
}

// OnInjFIFO implements network.Sink.
func (s *sink) OnInjFIFO(node int32, fifo int, bytes int32) {
	if bytes > s.c.injHW[node] {
		s.c.injHW[node] = bytes
	}
}

// OnRecvFIFO implements network.Sink.
func (s *sink) OnRecvFIFO(node int32, bytes int32) {
	if bytes > s.c.recvHW[node] {
		s.c.recvHW[node] = bytes
	}
}

// OnCPU implements network.Sink.
func (s *sink) OnCPU(now int64, node int32, cost int64) {
	s.c.cpu[node] += cost
	idx := int(now / s.c.cfg.Window)
	s.win.cpu = growI64(s.win.cpu, idx)
	s.win.cpu[idx] += cost
}
