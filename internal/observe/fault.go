package observe

import (
	"sort"

	"alltoall/internal/network"
)

// Fault observability: the Collector implements network.FaultSink, so a
// faulted run (network.Params.Faults) reports every effective link transition
// into the owning shard's sink. At EndRun the transitions fold into
// per-window dead-link-ticks (the fault state over time, alongside the
// traffic series) and the run-level outage aggregates the Summary and the
// attribution report surface: how many transitions fired, how many links
// were dead at the worst moment, how much link-time the outages cost, and
// the degraded-completion fraction (lost link-time over total link-time).

// faultPoint is one recorded transition.
type faultPoint struct {
	t      int64
	node   int32
	factor int32
	dir    int8
	action network.FaultAction
}

// OnFault implements network.FaultSink: record the transition; interval
// accounting happens at EndRun when the run's finish time is known.
func (s *sink) OnFault(now int64, node int32, dir int, action network.FaultAction, factor int32) {
	s.win.faults = append(s.win.faults, faultPoint{t: now, node: node, dir: int8(dir), action: action, factor: factor})
}

// foldFaults turns this run's transitions into outage intervals. Sinks are
// drained in shard order and the combined list re-sorted into the canonical
// (t, node, dir, action) order - the same total order the engine applied the
// faults in - so the fold is byte-identical at any shard count. Links still
// down at finish close their interval there, mirroring the engine's
// closeFaultStats, which keeps Summary.DeadLinkTicks equal to
// Stats.DeadLinkTicks.
func (c *Collector) foldFaults(finish int64) {
	c.ftrans = c.ftrans[:0]
	for _, s := range c.sinks {
		c.ftrans = append(c.ftrans, s.win.faults...)
		s.win.faults = s.win.faults[:0]
	}
	if len(c.ftrans) == 0 {
		return
	}
	sort.Slice(c.ftrans, func(i, j int) bool {
		a, b := c.ftrans[i], c.ftrans[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.dir != b.dir {
			return a.dir < b.dir
		}
		return a.action < b.action
	})
	c.faultEvents += int64(len(c.ftrans))
	if c.openDown == nil {
		c.openDown = make(map[int32]int64)
	}
	cur := 0
	for _, f := range c.ftrans {
		key := f.node*int32(network.NumDirs) + int32(f.dir)
		switch f.action {
		case network.FaultDown, network.FaultKill:
			if _, open := c.openDown[key]; !open {
				c.openDown[key] = f.t
				cur++
				if cur > c.peakDead {
					c.peakDead = cur
				}
			}
		case network.FaultUp:
			if start, open := c.openDown[key]; open {
				c.accrueDead(start, f.t)
				delete(c.openDown, key)
				cur--
			}
		case network.FaultDegrade:
			c.degradeEvents++
		}
	}
	// Outage tails: links still down when the run finished. Map order is
	// nondeterministic but accrual is pure addition, so the series and totals
	// are not.
	for key, start := range c.openDown {
		c.accrueDead(start, finish)
		delete(c.openDown, key)
	}
}

// accrueDead charges the outage interval [from, to) to the dead-link total
// and to each trace window it overlaps.
func (c *Collector) accrueDead(from, to int64) {
	if to <= from {
		return
	}
	c.deadLinkTicks += to - from
	w := c.cfg.Window
	for t := from; t < to; {
		end := (t/w + 1) * w
		if end > to {
			end = to
		}
		idx := int(t / w)
		c.deadWin = growI64(c.deadWin, idx)
		c.deadWin[idx] += end - t
		t = end
	}
}

// NoteForcedCreditReturns folds the engine's forced-credit-return count (see
// network.Stats.ForcedCreditReturns) into the collector; the collective layer
// calls it after each run so the Summary can report it next to the outage
// aggregates. The count is coalescing-mode bookkeeping, not machine behavior,
// and is the one Summary field that legitimately differs between
// Params.Coalesce modes of an otherwise identical run.
func (c *Collector) NoteForcedCreditReturns(n int64) { c.forcedCred += n }

// FaultSeries returns the per-window dead-link-ticks series (the fault state
// over time): element i is the summed link-downtime inside window i, so with
// k links simultaneously dead a full window accrues k*Window. The slice is a
// copy. Healthy runs return an empty series.
func (c *Collector) FaultSeries() []int64 {
	return append([]int64(nil), c.deadWin...)
}
