package observe

import (
	"bufio"
	"encoding/json"
	"io"

	"alltoall/internal/torus"
)

// TraceHeader is the first JSONL record of a trace: run identity and the
// units needed to interpret the window records that follow.
type TraceHeader struct {
	SchemaVersion int    `json:"schema_version"`
	Record        string `json:"record"` // "header"
	Shape         string `json:"shape"`
	Window        int64  `json:"window"`
	Runs          int    `json:"runs"`
	Finish        int64  `json:"finish"`
	Windows       int    `json:"windows"`
}

// TraceWindow is one time bucket of the run: traffic split by dimension and
// virtual channel, utilization fractions, head-of-line blocks, and CPU busy
// time charged in [window*index, window*(index+1)).
type TraceWindow struct {
	Record   string                 `json:"record"` // "window"
	Index    int                    `json:"index"`
	T        int64                  `json:"t"` // window start time
	BytesDim [torus.NumDims]int64   `json:"bytes_dim"`
	UtilDim  [torus.NumDims]float64 `json:"util_dim"`
	BytesVC  [3]int64               `json:"bytes_vc"`
	HoL      int64                  `json:"hol"`
	CPUBusy  int64                  `json:"cpu_busy"`
	// DeadTicks is the summed link-downtime inside the window (k links dead
	// for the whole window contribute k*Window); zero on healthy runs.
	DeadTicks int64 `json:"dead_ticks"`
}

// WriteTrace emits the collector's windowed series as JSONL: one header
// record, then one record per window in time order. Output is deterministic
// for a deterministic run - byte-identical at any shard count - which is
// what makes traces diffable across code changes (the golden-file tests
// rely on this).
func (c *Collector) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := c.Windows()
	if err := enc.Encode(TraceHeader{
		SchemaVersion: SchemaVersion,
		Record:        "header",
		Shape:         c.shape.String(),
		Window:        c.cfg.Window,
		Runs:          c.runs,
		Finish:        c.finish,
		Windows:       n,
	}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := TraceWindow{
			Record:    "window",
			Index:     i,
			T:         int64(i) * c.cfg.Window,
			HoL:       winAt(c.win.hol, i),
			CPUBusy:   winAt(c.win.cpu, i),
			DeadTicks: winAt(c.deadWin, i),
		}
		for d := 0; d < torus.NumDims; d++ {
			rec.BytesDim[d] = winAt(c.win.byDim[d], i)
			if links := dimLinks(c.shape, d); links > 0 {
				rec.UtilDim[d] = float64(rec.BytesDim[d]) / (float64(c.cfg.Window) * float64(links))
			}
		}
		for v := range rec.BytesVC {
			rec.BytesVC[v] = winAt(c.win.byVC[v], i)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
