package observe

import (
	"sort"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// Summary is the run-level digest of a Collector: the stable, documented
// field set callers get back on Result.Observed and that aabench embeds in
// its JSON output. Fields marshal under the snake_case names shown;
// SchemaVersion governs their layout.
type Summary struct {
	SchemaVersion int    `json:"schema_version"`
	Shape         string `json:"shape"`
	Runs          int    `json:"runs"`   // runs (phases) folded in
	Finish        int64  `json:"finish"` // total simulated time across runs
	Window        int64  `json:"window"` // trace bucket width

	// BytesByDim[d] is the total wire bytes carried by links of torus
	// dimension d; BytesByVC[v] splits the same traffic by virtual channel
	// (dyn0, dyn1, bubble escape).
	BytesByDim [torus.NumDims]int64 `json:"bytes_by_dim"`
	BytesByVC  [network.NumVC]int64 `json:"bytes_by_vc"`

	// UtilByDim[d] is the mean occupancy fraction of dimension d's links
	// over the observed time; MaxLinkUtil is the single busiest link's
	// fraction and SaturatedDim names its dimension ("x", "y", "z", or ""
	// when nothing moved). On an asymmetric torus under adaptive routing
	// the signature is one dimension near 1.0 with the others far below.
	UtilByDim    [torus.NumDims]float64 `json:"util_by_dim"`
	MaxLinkUtil  float64                `json:"max_link_util"`
	SaturatedDim string                 `json:"saturated_dim"`

	// HoLBlocked counts arbitration passes in which a dynamic-VC packet
	// needing exactly one other dimension stayed structurally blocked
	// (beyond Config.HoLDelay) with victims queued behind it (at least
	// Config.HoLMinQueue deep) - head-of-line blocking attributable to
	// the wanted dimension's saturation, calibrated to be exactly zero on
	// a balanced machine. HoLMatrix[i][j] is the unfiltered [occupied-VC
	// dim][wanted dim] census of single-want blocked passes, including
	// the diagonal (same-dimension congestion, which is load, not HoL).
	// InjFIFOBlocked counts blocked passes of injection-FIFO head packets.
	HoLBlocked     int64                               `json:"hol_blocked"`
	HoLMatrix      [torus.NumDims][torus.NumDims]int64 `json:"hol_matrix"`
	InjFIFOBlocked int64                               `json:"inj_fifo_blocked"`

	// FIFO depth high-watermarks (bytes), max over nodes, and CPU
	// occupancy fractions over the observed time.
	MaxInjFIFOBytes  int32   `json:"max_inj_fifo_bytes"`
	MaxRecvFIFOBytes int32   `json:"max_recv_fifo_bytes"`
	MeanCPUUtil      float64 `json:"mean_cpu_util"`
	MaxCPUUtil       float64 `json:"max_cpu_util"`

	// Fault injection (all zero on healthy runs). FaultEvents counts
	// effective link transitions, DegradeEvents the bandwidth-degrade subset,
	// DeadLinks the peak number of simultaneously dead links, DeadLinkTicks
	// the summed link-downtime (equal to network.Stats.DeadLinkTicks), and
	// DegradedCompletion the fraction of the machine's total link-time lost
	// to outages: DeadLinkTicks / (Finish * links). ForcedCreditReturns is
	// the engine's end-of-run forced ledger flush count, noted by the
	// collective layer (NoteForcedCreditReturns); unlike every other field it
	// depends on Params.Coalesce, because it counts bookkeeping, not machine
	// behavior.
	FaultEvents         int64   `json:"fault_events"`
	DegradeEvents       int64   `json:"degrade_events"`
	DeadLinks           int     `json:"dead_links"`
	DeadLinkTicks       int64   `json:"dead_link_ticks"`
	DegradedCompletion  float64 `json:"degraded_completion"`
	ForcedCreditReturns int64   `json:"forced_credit_returns"`
}

// LinkUtil is one link's aggregate in a utilization ranking.
type LinkUtil struct {
	Node  int32       `json:"node"`
	Coord torus.Coord `json:"coord"`
	Dim   string      `json:"dim"`
	Dir   string      `json:"dir"` // "+" or "-"
	Bytes int64       `json:"bytes"`
	Util  float64     `json:"util"`
}

// dimLinks returns the number of unidirectional links in dimension d of the
// shape (matching Shape.LinkCount's census).
func dimLinks(s torus.Shape, d int) int {
	k := s.Size[d]
	if k == 1 {
		return 0
	}
	perLine := k - 1
	if s.Wrap[d] {
		perLine = k
	}
	return 2 * perLine * (s.P() / k)
}

func dimName(d int) string { return [torus.NumDims]string{"x", "y", "z"}[d] }

// Summary digests the collector's current totals. Utilization fractions use
// the accumulated finish time, so a collector spanning several runs (or a
// two-phase strategy) reports occupancy over all observed time.
func (c *Collector) Summary() *Summary {
	s := &Summary{
		SchemaVersion:  SchemaVersion,
		Shape:          c.shape.String(),
		Runs:           c.runs,
		Finish:         c.finish,
		Window:         c.cfg.Window,
		HoLBlocked:     c.win.holBlocked,
		HoLMatrix:      c.win.holMat,
		InjFIFOBlocked: c.win.injBlocked,

		FaultEvents:         c.faultEvents,
		DegradeEvents:       c.degradeEvents,
		DeadLinks:           c.peakDead,
		DeadLinkTicks:       c.deadLinkTicks,
		ForcedCreditReturns: c.forcedCred,
	}
	if links := c.shape.LinkCount(); links > 0 && c.finish > 0 {
		s.DegradedCompletion = float64(c.deadLinkTicks) / (float64(c.finish) * float64(links))
	}
	var maxLinkBytes int64
	maxLinkDim := -1
	for i, vb := range c.linkVC {
		var total int64
		for v, b := range vb {
			total += b
			s.BytesByVC[v] += b
		}
		d := (i % network.NumDirs) / 2
		s.BytesByDim[d] += total
		if total > maxLinkBytes {
			maxLinkBytes = total
			maxLinkDim = d
		}
	}
	if c.finish > 0 {
		for d := 0; d < torus.NumDims; d++ {
			if n := dimLinks(c.shape, d); n > 0 {
				s.UtilByDim[d] = float64(s.BytesByDim[d]) / (float64(c.finish) * float64(n))
			}
		}
		s.MaxLinkUtil = float64(maxLinkBytes) / float64(c.finish)
	}
	if maxLinkDim >= 0 {
		s.SaturatedDim = dimName(maxLinkDim)
	}
	for _, b := range c.injHW {
		if b > s.MaxInjFIFOBytes {
			s.MaxInjFIFOBytes = b
		}
	}
	for _, b := range c.recvHW {
		if b > s.MaxRecvFIFOBytes {
			s.MaxRecvFIFOBytes = b
		}
	}
	if c.finish > 0 && c.p > 0 {
		var sum, max int64
		for _, b := range c.cpu {
			sum += b
			if b > max {
				max = b
			}
		}
		s.MeanCPUUtil = float64(sum) / (float64(c.finish) * float64(c.p))
		s.MaxCPUUtil = float64(max) / float64(c.finish)
	}
	return s
}

// RankLinks returns the top busiest links by total bytes, ties broken by
// (node, dir) for determinism. top <= 0 returns all links that carried
// traffic.
func (c *Collector) RankLinks(top int) []LinkUtil {
	var out []LinkUtil
	for i, vb := range c.linkVC {
		var total int64
		for _, b := range vb {
			total += b
		}
		if total == 0 {
			continue
		}
		node := int32(i / network.NumDirs)
		dir := i % network.NumDirs
		sign := "+"
		if dir&1 == 1 {
			sign = "-"
		}
		u := 0.0
		if c.finish > 0 {
			u = float64(total) / float64(c.finish)
		}
		out = append(out, LinkUtil{
			Node:  node,
			Coord: c.shape.Coords(int(node)),
			Dim:   dimName(dir / 2),
			Dir:   sign,
			Bytes: total,
			Util:  u,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Dim+out[i].Dir < out[j].Dim+out[j].Dir
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// Windows returns the number of complete-or-partial trace windows recorded.
func (c *Collector) Windows() int {
	n := len(c.win.hol)
	for d := range c.win.byDim {
		if len(c.win.byDim[d]) > n {
			n = len(c.win.byDim[d])
		}
	}
	if len(c.win.cpu) > n {
		n = len(c.win.cpu)
	}
	if len(c.deadWin) > n {
		n = len(c.deadWin)
	}
	return n
}

// DimSeries returns the per-window wire-byte series for torus dimension d;
// windows beyond the series length carried zero bytes. The slice is a copy:
// callers may hold or mutate it without corrupting the collector, and later
// collection does not mutate it behind the caller's back.
func (c *Collector) DimSeries(d int) []int64 {
	return append([]int64(nil), c.win.byDim[d]...)
}

// winAt reads series s at window i, treating short series as zero-padded.
func winAt(s []int64, i int) int64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}
