package torus

import (
	"testing"
	"testing/quick"
)

func TestPermIsBijection(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 100, 511, 512, 1000} {
		p := NewPerm(n, 42)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := p.At(i)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: At(%d) = %d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermBijectionProperty(t *testing.T) {
	f := func(nRaw uint16, seed uint64) bool {
		n := int(nRaw%700) + 2
		p := NewPerm(n, seed)
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := p.At(i)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPermSeedsDiffer(t *testing.T) {
	n := 256
	a := NewPerm(n, 1)
	b := NewPerm(n, 2)
	same := 0
	for i := 0; i < n; i++ {
		if a.At(i) == b.At(i) {
			same++
		}
	}
	// Random permutations agree in ~1 position on average; allow slack.
	if same > n/8 {
		t.Errorf("seeds 1,2 agree in %d/%d positions; permutations look correlated", same, n)
	}
}

func TestPermNotIdentity(t *testing.T) {
	p := NewPerm(512, 7)
	fixed := 0
	for i := 0; i < 512; i++ {
		if p.At(i) == i {
			fixed++
		}
	}
	if fixed > 64 {
		t.Errorf("%d/512 fixed points; permutation too close to identity", fixed)
	}
}

func TestDestOrderCoversAllButSelf(t *testing.T) {
	p := 64
	for _, self := range []int{0, 1, 31, 63} {
		o := NewDestOrder(p, self, 99)
		if o.Len() != p-1 {
			t.Fatalf("Len = %d, want %d", o.Len(), p-1)
		}
		seen := make([]bool, p)
		for i := 0; i < o.Len(); i++ {
			d := o.At(i)
			if d == self {
				t.Fatalf("self %d appeared in its own destination order", self)
			}
			if d < 0 || d >= p || seen[d] {
				t.Fatalf("bad or duplicate destination %d", d)
			}
			seen[d] = true
		}
	}
}

func TestDestOrderNodesDiffer(t *testing.T) {
	p := 128
	a := NewDestOrder(p, 3, 5)
	b := NewDestOrder(p, 4, 5)
	same := 0
	for i := 0; i < a.Len(); i++ {
		if a.At(i) == b.At(i) {
			same++
		}
	}
	if same > p/8 {
		t.Errorf("nodes 3,4 share %d/%d order positions; orders look correlated", same, p-1)
	}
}

func TestPermDegenerate(t *testing.T) {
	p := NewPerm(1, 9)
	if p.At(0) != 0 {
		t.Error("n=1 permutation must be identity")
	}
	p0 := NewPerm(0, 9)
	if p0.N() != 0 {
		t.Error("n=0 permutation has nonzero domain")
	}
}

func BenchmarkPermAt(b *testing.B) {
	p := NewPerm(20480, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.At(i % 20480)
	}
}
