package torus

import (
	"errors"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in      string
		want    Shape
		wantErr bool
	}{
		{"8x8x8", New(8, 8, 8), false},
		{"8", New(8, 1, 1), false},
		{"8x32", New(8, 32, 1), false},
		{"8x8x4M", NewMesh(8, 8, 4, true, true, false), false},
		{"8x8x4m", NewMesh(8, 8, 4, true, true, false), false},
		{"8x2", New(8, 2, 1), false},
		{"", Shape{}, true},
		{"8x8x8x8", Shape{}, true},
		{"axb", Shape{}, true},
		{"0x8", Shape{}, true},
		{"8xM", Shape{}, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("Parse(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBadShape) {
				t.Errorf("Parse(%q) err = %v, want wrapping ErrBadShape", c.in, err)
			}
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestCanonInjectiveRoundTrip checks the two properties keys rely on:
// Parse(s.Canon()) == s, and shapes that String() aliases stay distinct.
func TestCanonInjectiveRoundTrip(t *testing.T) {
	shapes := []Shape{
		New(8, 8, 8),
		New(8, 8, 1),
		New(8, 1, 8),
		New(1, 8, 8),
		New(16, 8, 8),
		NewMesh(8, 8, 4, true, true, false),
		NewMesh(4, 4, 2, false, false, false),
		New(2, 2, 2), // too short to wrap: mesh dims
	}
	seen := map[string]Shape{}
	for _, s := range shapes {
		c := s.Canon()
		if prev, dup := seen[c]; dup {
			t.Errorf("Canon collision: %+v and %+v both render %q", prev, s, c)
		}
		seen[c] = s
		back, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(Canon %q): %v", c, err)
			continue
		}
		if back != s {
			t.Errorf("Parse(Canon %q) = %+v, want %+v", c, back, s)
		}
	}
	// The aliasing String() renderings really do collide - that's why Canon
	// exists.
	if New(8, 8, 1).String() != New(8, 1, 8).String() {
		t.Log("String() no longer aliases unit dims; Canon may be redundant")
	}
}

func TestValidateWrapsErrBadShape(t *testing.T) {
	bad := Shape{Size: [NumDims]int{0, 8, 8}}
	if err := bad.Validate(); !errors.Is(err, ErrBadShape) {
		t.Errorf("Validate = %v, want wrapping ErrBadShape", err)
	}
}
