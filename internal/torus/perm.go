package torus

// Pseudorandom destination permutations with O(1) per-node state.
//
// The paper's AR strategy injects packets toward destinations in a random
// order, with a different order per source node, to smooth link contention.
// Storing an explicit permutation per node costs O(P^2) memory, which is
// prohibitive at 20,480 nodes; instead each node evaluates a format-
// preserving permutation built from a small Feistel network with
// cycle-walking, keyed by (seed, node).

// Perm is a keyed bijection on [0, n).
type Perm struct {
	n     uint32
	half  uint // bits per Feistel half
	mask  uint32
	keys  [4]uint32
	ident bool // degenerate n<=1
}

// splitmix64 is the standard SplitMix64 mixing step, used for key derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewPerm returns a pseudorandom permutation of [0, n) keyed by seed.
// Distinct seeds give (practically) independent permutations.
func NewPerm(n int, seed uint64) Perm {
	if n < 0 {
		panic("torus: NewPerm with negative n")
	}
	p := Perm{n: uint32(n)}
	if n <= 1 {
		p.ident = true
		return p
	}
	bits := uint(1)
	for 1<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	p.half = bits / 2
	p.mask = 1<<p.half - 1
	s := seed
	for i := range p.keys {
		s = splitmix64(s)
		p.keys[i] = uint32(s)
	}
	return p
}

// N returns the domain size.
func (p Perm) N() int { return int(p.n) }

func (p Perm) round(v, key uint32) uint32 {
	x := uint64(v) ^ uint64(key)
	x = splitmix64(x)
	return uint32(x) & p.mask
}

func (p Perm) encryptOnce(v uint32) uint32 {
	l := v >> p.half
	r := v & p.mask
	for _, k := range p.keys {
		l, r = r, l^p.round(r, k)
	}
	return l<<p.half | r
}

// At returns the image of i under the permutation. It panics if i is out of
// range. Cycle-walking re-encrypts until the value falls inside [0, n); the
// expected number of rounds is < 4 because the Feistel domain is at most 4n.
func (p Perm) At(i int) int {
	if uint32(i) >= p.n && !(p.ident && i == 0) {
		panic("torus: Perm.At index out of range")
	}
	if p.ident {
		return i
	}
	v := uint32(i)
	for {
		v = p.encryptOnce(v)
		if v < p.n {
			return int(v)
		}
	}
}

// DestOrder is a per-node pseudorandom ordering of the other P-1 ranks,
// evaluated lazily in O(1) memory.
type DestOrder struct {
	perm Perm
	self int
}

// NewDestOrder returns the destination ordering for node self in a
// partition of p nodes, keyed by seed. Every node gets an independent
// ordering for the same seed.
func NewDestOrder(p, self int, seed uint64) DestOrder {
	return DestOrder{
		perm: NewPerm(p-1, splitmix64(seed^0xA11A11)^uint64(self)*0x9E3779B97F4A7C15),
		self: self,
	}
}

// Len returns the number of destinations (P-1).
func (o DestOrder) Len() int { return o.perm.N() }

// At returns the i-th destination rank; the sequence visits every rank
// except self exactly once.
func (o DestOrder) At(i int) int {
	j := o.perm.At(i)
	if j >= o.self {
		j++
	}
	return j
}
