package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankCoordsRoundTrip(t *testing.T) {
	shapes := []Shape{
		New(8, 8, 8),
		New(16, 8, 4),
		New(8, 1, 1),
		New(1, 16, 1),
		New(5, 3, 7),
		NewMesh(8, 4, 2, false, true, false),
	}
	for _, s := range shapes {
		for r := 0; r < s.P(); r++ {
			c := s.Coords(r)
			for d := Dim(0); d < NumDims; d++ {
				if c[d] < 0 || c[d] >= s.Size[d] {
					t.Fatalf("%v: rank %d coord %v out of range", s, r, c)
				}
			}
			if got := s.Rank(c); got != r {
				t.Fatalf("%v: Rank(Coords(%d)) = %d", s, r, got)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		s  Shape
		ok bool
	}{
		{New(8, 8, 8), true},
		{New(2, 1, 1), true},
		{Shape{Size: [3]int{0, 8, 8}}, false},
		{Shape{Size: [3]int{1, 1, 1}}, false},
		{Shape{Size: [3]int{2, 2, 2}, Wrap: [3]bool{true, false, false}}, false},
		{NewMesh(8, 8, 8, true, true, false), true},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) error=%v, want ok=%v", c.s, err, c.ok)
		}
	}
}

func TestDeltaTorus(t *testing.T) {
	s := New(8, 8, 8)
	cases := []struct {
		a, b, want int
	}{
		{0, 1, 1}, {0, 3, 3}, {0, 4, 4}, {0, 5, -3}, {0, 7, -1}, {3, 3, 0},
		{7, 0, 1}, {6, 1, 3},
	}
	for _, c := range cases {
		if got := s.Delta(X, c.a, c.b); got != c.want {
			t.Errorf("Delta(X,%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDeltaMesh(t *testing.T) {
	s := NewMesh(8, 1, 1, false, false, false)
	if got := s.Delta(X, 0, 7); got != 7 {
		t.Errorf("mesh Delta(0,7) = %d, want 7", got)
	}
	if got := s.Delta(X, 7, 0); got != -7 {
		t.Errorf("mesh Delta(7,0) = %d, want -7", got)
	}
}

func TestDeltaMinimality(t *testing.T) {
	// Property: |Delta| is at most k/2 on a torus, and walking Delta hops
	// from a lands on b.
	f := func(kRaw, aRaw, bRaw uint8) bool {
		k := int(kRaw%13) + 3
		s := New(k, 1, 1)
		a, b := int(aRaw)%k, int(bRaw)%k
		d := s.Delta(X, a, b)
		if d > k/2 || -d > k/2 {
			return false
		}
		land := ((a+d)%k + k) % k
		return land == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopCountSymmetricOnTorus(t *testing.T) {
	s := New(6, 4, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(s.P()), rng.Intn(s.P())
		if s.HopCount(a, b) != s.HopCount(b, a) {
			t.Fatalf("hop count asymmetric for %d,%d", a, b)
		}
	}
}

func TestAvgHops(t *testing.T) {
	// Torus of even size k: average distance k/4 over all ordered pairs
	// including self-pairs.
	s := New(8, 8, 8)
	if got := s.AvgHops(X); got != 2.0 {
		t.Errorf("torus-8 AvgHops = %v, want 2", got)
	}
	// Mesh of size k: (k^2-1)/(3k).
	m := NewMesh(8, 1, 1, false, false, false)
	want := float64(8*8-1) / (3 * 8)
	if got := m.AvgHops(X); got != want {
		t.Errorf("mesh-8 AvgHops = %v, want %v", got, want)
	}
}

func TestLongestDimAndMaxDim(t *testing.T) {
	cases := []struct {
		s    Shape
		dim  Dim
		size int
	}{
		{New(8, 8, 8), X, 8},
		{New(8, 32, 16), Y, 32},
		{New(8, 8, 16), Z, 16},
		{New(16, 16, 8), X, 16},
		{New(40, 32, 16), X, 40},
	}
	for _, c := range cases {
		if got := c.s.LongestDim(); got != c.dim {
			t.Errorf("%v LongestDim = %v, want %v", c.s, got, c.dim)
		}
		if got := c.s.MaxDim(); got != c.size {
			t.Errorf("%v MaxDim = %v, want %v", c.s, got, c.size)
		}
	}
}

func TestSymmetric(t *testing.T) {
	cases := []struct {
		s    Shape
		want bool
	}{
		{New(8, 8, 8), true},
		{New(8, 8, 1), true},
		{New(8, 1, 1), true},
		{New(16, 16, 16), true},
		{New(16, 8, 8), false},
		{New(8, 8, 16), false},
		{NewMesh(8, 8, 8, true, true, false), false},
	}
	for _, c := range cases {
		if got := c.s.Symmetric(); got != c.want {
			t.Errorf("%v Symmetric = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		s    Shape
		want string
	}{
		{New(8, 8, 8), "8x8x8"},
		{New(8, 1, 1), "8"},
		{New(8, 16, 1), "8x16"},
		{NewMesh(8, 8, 2, true, true, false), "8x8x2"},
		{NewMesh(8, 8, 16, true, true, false), "8x8x16M"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestNeighbor(t *testing.T) {
	s := New(8, 8, 8)
	c := Coord{0, 3, 7}
	n, ok := s.Neighbor(c, X, -1)
	if !ok || n != (Coord{7, 3, 7}) {
		t.Errorf("torus X- neighbor of %v = %v,%v", c, n, ok)
	}
	n, ok = s.Neighbor(c, Z, 1)
	if !ok || n != (Coord{0, 3, 0}) {
		t.Errorf("torus Z+ neighbor of %v = %v,%v", c, n, ok)
	}
	m := NewMesh(8, 8, 8, false, true, true)
	if _, ok := m.Neighbor(Coord{0, 0, 0}, X, -1); ok {
		t.Error("mesh edge should have no X- neighbor")
	}
	if _, ok := m.Neighbor(Coord{7, 0, 0}, X, 1); ok {
		t.Error("mesh edge should have no X+ neighbor")
	}
	line := New(8, 1, 1)
	if _, ok := line.Neighbor(Coord{0, 0, 0}, Y, 1); ok {
		t.Error("unit dimension should have no neighbors")
	}
}

func TestLinkCount(t *testing.T) {
	// 8x8x8 torus: 3 dims x 8 links/line x 64 lines x 2 directions = 3072.
	if got := New(8, 8, 8).LinkCount(); got != 3072 {
		t.Errorf("8x8x8 links = %d, want 3072", got)
	}
	// 4-node line mesh: 3 links x 2 directions.
	if got := NewMesh(4, 1, 1, false, false, false).LinkCount(); got != 6 {
		t.Errorf("4M line links = %d, want 6", got)
	}
}

func TestNeighborReciprocal(t *testing.T) {
	// Property: if b is a's neighbor in (d,dir), then a is b's in (d,-dir).
	s := NewMesh(6, 5, 4, true, false, true)
	for r := 0; r < s.P(); r++ {
		c := s.Coords(r)
		for d := Dim(0); d < NumDims; d++ {
			for _, dir := range []int{-1, 1} {
				n, ok := s.Neighbor(c, d, dir)
				if !ok {
					continue
				}
				back, ok2 := s.Neighbor(n, d, -dir)
				if !ok2 || back != c {
					t.Fatalf("neighbor not reciprocal at %v dim %v dir %d", c, d, dir)
				}
			}
		}
	}
}
