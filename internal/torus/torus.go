// Package torus provides the geometry of Blue Gene/L style 3D torus and mesh
// partitions: coordinate/rank mapping, minimal-path routing distances, link
// counting, and the exact peak all-to-all time used as the "percent of peak"
// denominator throughout the reproduction.
//
// Shapes follow the paper's convention: a partition is X x Y x Z where each
// dimension is independently a torus (wrap links present) or a mesh (no wrap
// links); lower-dimensional partitions (lines, planes) are represented with
// size-1 dimensions.
package torus

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrBadShape is wrapped by every shape-validation and shape-parsing error,
// so callers at any layer can classify them with errors.Is (the HTTP service
// maps them to 400 Bad Request).
var ErrBadShape = errors.New("torus: bad shape")

// Dim indexes the three torus dimensions.
type Dim int

// The three dimensions, in the dimension order used by deterministic
// (dimension-ordered) routing on Blue Gene/L: first X, then Y, then Z.
const (
	X Dim = iota
	Y
	Z
)

// NumDims is the number of torus dimensions.
const NumDims = 3

func (d Dim) String() string {
	switch d {
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// Coord is a node coordinate in the partition.
type Coord [NumDims]int

// Shape describes a (possibly asymmetric) 3D torus or mesh partition.
type Shape struct {
	Size [NumDims]int  // nodes per dimension; 1 collapses the dimension
	Wrap [NumDims]bool // true = torus (wrap link), false = mesh
}

// New returns a fully wrapped (torus) shape of the given dimensions.
func New(x, y, z int) Shape {
	return Shape{Size: [NumDims]int{x, y, z}, Wrap: [NumDims]bool{x > 2, y > 2, z > 2}}
}

// NewMesh returns a shape with per-dimension wrap control. A dimension of
// size <= 2 never has wrap links (a wrap link would duplicate the mesh link).
func NewMesh(x, y, z int, wrapX, wrapY, wrapZ bool) Shape {
	s := Shape{Size: [NumDims]int{x, y, z}, Wrap: [NumDims]bool{wrapX, wrapY, wrapZ}}
	for d := 0; d < NumDims; d++ {
		if s.Size[d] <= 2 {
			s.Wrap[d] = false
		}
	}
	return s
}

// Validate reports whether the shape is usable. Every error wraps
// ErrBadShape.
func (s Shape) Validate() error {
	for d := 0; d < NumDims; d++ {
		if s.Size[d] < 1 {
			return fmt.Errorf("%w: dimension %v has size %d (must be >= 1)", ErrBadShape, Dim(d), s.Size[d])
		}
		if s.Size[d] <= 2 && s.Wrap[d] {
			return fmt.Errorf("%w: dimension %v of size %d cannot wrap", ErrBadShape, Dim(d), s.Size[d])
		}
	}
	if s.P() < 2 {
		return fmt.Errorf("%w: partition must have at least 2 nodes, got %d", ErrBadShape, s.P())
	}
	return nil
}

// Parse reads the textual shape grammar shared by the CLIs and the HTTP
// service: "8", "8x8", "8x32x16", with an optional M (or m) suffix per
// dimension marking it as a mesh (no wrap links). Unnamed trailing
// dimensions default to size 1. Errors wrap ErrBadShape.
func Parse(s string) (Shape, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) < 1 || len(parts) > NumDims {
		return Shape{}, fmt.Errorf("%w: %q: want 1-%d dimensions", ErrBadShape, s, NumDims)
	}
	size := [NumDims]int{1, 1, 1}
	wrap := [NumDims]bool{}
	for i, p := range parts {
		mesh := strings.HasSuffix(p, "m")
		p = strings.TrimSuffix(p, "m")
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return Shape{}, fmt.Errorf("%w: %q: bad dimension %q", ErrBadShape, s, p)
		}
		size[i] = v
		wrap[i] = !mesh && v > 2
	}
	return NewMesh(size[0], size[1], size[2], wrap[0], wrap[1], wrap[2]), nil
}

// Canon renders the shape in the Parse grammar without collapsing unit
// dimensions, so distinct shapes always render distinctly ("8x1x8" vs
// "8x8x1", which String both abbreviates to "8x8"). Parse(s.Canon()) == s
// for every valid shape; canonical request keys and the service's JSON wire
// format use this encoding.
func (s Shape) Canon() string {
	var b strings.Builder
	for d := 0; d < NumDims; d++ {
		if d > 0 {
			b.WriteByte('x')
		}
		fmt.Fprintf(&b, "%d", s.Size[d])
		if !s.Wrap[d] && s.Size[d] > 2 {
			b.WriteByte('M')
		}
	}
	return b.String()
}

// P returns the total number of nodes in the partition.
func (s Shape) P() int {
	return s.Size[X] * s.Size[Y] * s.Size[Z]
}

// MaxDim returns M = max(Px, Py, Pz), the longest dimension size.
func (s Shape) MaxDim() int {
	m := s.Size[0]
	for d := 1; d < NumDims; d++ {
		if s.Size[d] > m {
			m = s.Size[d]
		}
	}
	return m
}

// LongestDim returns the dimension with the largest size; ties are broken in
// X, Y, Z order, matching the paper's dimension-order conventions.
func (s Shape) LongestDim() Dim {
	best := X
	for d := Dim(1); d < NumDims; d++ {
		if s.Size[d] > s.Size[best] {
			best = d
		}
	}
	return best
}

// Symmetric reports whether all dimensions of size > 1 have equal size and
// identical wrap, i.e. the shape is a symmetric line/plane/cube in the
// paper's sense.
func (s Shape) Symmetric() bool {
	size, wrap, seen := 0, false, false
	for d := 0; d < NumDims; d++ {
		if s.Size[d] == 1 {
			continue
		}
		if !seen {
			size, wrap, seen = s.Size[d], s.Wrap[d], true
			continue
		}
		if s.Size[d] != size || s.Wrap[d] != wrap {
			return false
		}
	}
	return true
}

// Rank converts a coordinate to a linear rank (X fastest, then Y, then Z),
// the standard Blue Gene/L XYZ mapping.
func (s Shape) Rank(c Coord) int {
	return c[X] + s.Size[X]*(c[Y]+s.Size[Y]*c[Z])
}

// Coords converts a linear rank back to a coordinate.
func (s Shape) Coords(rank int) Coord {
	var c Coord
	c[X] = rank % s.Size[X]
	rank /= s.Size[X]
	c[Y] = rank % s.Size[Y]
	c[Z] = rank / s.Size[Y]
	return c
}

// Delta returns the signed minimal-path hop count from a to b in dimension d:
// positive means travel in the + direction. On a torus dimension the shorter
// way around is chosen; exact ties (distance Size/2 on an even ring) are
// broken toward the + direction.
func (s Shape) Delta(d Dim, a, b int) int {
	diff := b - a
	if !s.Wrap[d] {
		return diff
	}
	k := s.Size[d]
	if diff < 0 {
		diff += k
	}
	// diff in [0, k)
	if 2*diff <= k {
		return diff
	}
	return diff - k
}

// MinHops returns the per-dimension signed minimal hop vector from a to b.
func (s Shape) MinHops(a, b Coord) [NumDims]int {
	var h [NumDims]int
	for d := Dim(0); d < NumDims; d++ {
		h[d] = s.Delta(d, a[d], b[d])
	}
	return h
}

// HopCount returns the total minimal hop distance between two ranks.
func (s Shape) HopCount(a, b int) int {
	ha := s.MinHops(s.Coords(a), s.Coords(b))
	total := 0
	for _, h := range ha {
		if h < 0 {
			h = -h
		}
		total += h
	}
	return total
}

// AvgHops returns the average minimal hop distance in dimension d over all
// ordered coordinate pairs (including equal coordinates), as a float.
// For a torus of even size k this is k/4; for a mesh it is (k^2-1)/(3k).
func (s Shape) AvgHops(d Dim) float64 {
	k := s.Size[d]
	total := 0
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			h := s.Delta(d, a, b)
			if h < 0 {
				h = -h
			}
			total += h
		}
	}
	return float64(total) / float64(k*k)
}

// String renders the shape in the paper's notation, e.g. "8x8x16" or
// "8x8x2M" where M marks a mesh dimension.
func (s Shape) String() string {
	var b strings.Builder
	first := true
	for d := 0; d < NumDims; d++ {
		if s.Size[d] == 1 && !(s.P() == 1) {
			// Collapse unit dimensions unless everything is unit.
			continue
		}
		if !first {
			b.WriteByte('x')
		}
		first = false
		fmt.Fprintf(&b, "%d", s.Size[d])
		if !s.Wrap[d] && s.Size[d] > 2 {
			b.WriteByte('M')
		}
	}
	if first {
		return "1"
	}
	return b.String()
}

// Neighbor returns the rank of the neighbor of c in dimension d, direction
// dir (+1 or -1), and ok=false if no such link exists (mesh edge).
func (s Shape) Neighbor(c Coord, d Dim, dir int) (Coord, bool) {
	n := c
	v := c[d] + dir
	if v < 0 || v >= s.Size[d] {
		if !s.Wrap[d] {
			return n, false
		}
		if v < 0 {
			v += s.Size[d]
		} else {
			v -= s.Size[d]
		}
	}
	if s.Size[d] == 1 {
		return n, false
	}
	n[d] = v
	return n, true
}

// LinkCount returns the total number of unidirectional links in the
// partition.
func (s Shape) LinkCount() int {
	total := 0
	p := s.P()
	for d := Dim(0); d < NumDims; d++ {
		k := s.Size[d]
		if k == 1 {
			continue
		}
		perLine := k - 1
		if s.Wrap[d] {
			perLine = k
		}
		lines := p / k
		total += 2 * perLine * lines
	}
	return total
}
