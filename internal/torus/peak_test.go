package torus

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPeakMatchesEquation2 checks that for all-torus shapes the exact cut
// calculator reduces to the paper's Equation 2: T/m = P * M / 8.
func TestPeakMatchesEquation2(t *testing.T) {
	shapes := []Shape{
		New(8, 8, 8),
		New(16, 16, 16),
		New(16, 8, 8),
		New(8, 32, 16),
		New(40, 32, 16),
		New(8, 8, 1),
		New(16, 1, 1),
	}
	for _, s := range shapes {
		want := float64(s.P()) * float64(s.MaxDim()) / 8
		got := s.PeakTimePerByte()
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%v: PeakTimePerByte = %v, want Eq2 %v", s, got, want)
		}
	}
}

// TestPeakOddTorus checks the exact +hop accounting on odd rings, where
// Equation 2's k/4 average is only approximate. For odd k the per-direction
// total hops per line are k*(k^2-1)/8, spread over k links.
func TestPeakOddTorus(t *testing.T) {
	s := New(5, 1, 1)
	// Ordered pairs on a 5-ring: distances 1,2 in each direction.
	// +hops per source = 1+2 = 3; total over 5 sources = 15; per +link = 3.
	// Scaled by nodes-per-coord (1): bottleneck = 3.
	if got := s.DimBottleneckPerByte(X); math.Abs(got-3) > 1e-12 {
		t.Errorf("5-ring bottleneck = %v, want 3", got)
	}
}

// TestPeakMeshDoublesTorus checks that a mesh dimension's bottleneck is
// about twice the torus bottleneck for the same size (centre cut).
func TestPeakMeshDoublesTorus(t *testing.T) {
	tor := New(8, 8, 8)
	mesh := NewMesh(8, 8, 8, true, true, false)
	rt := tor.DimBottleneckPerByte(Z)
	rm := mesh.DimBottleneckPerByte(Z)
	// Torus: P*k/8 = 512. Mesh centre link: crossings (j+1)(k-1-j) max at
	// j=3: 4*4=16 pairs * (P/k)^2 / (P/k) = 16*64 = 1024.
	if rt != 512 {
		t.Errorf("torus Z bottleneck = %v, want 512", rt)
	}
	if rm != 1024 {
		t.Errorf("mesh Z bottleneck = %v, want 1024", rm)
	}
}

// TestPeakTable2MeshShapes sanity-checks the mesh shapes from Table 2:
// the bottleneck dimension of 8x8x4M is the mesh dimension even though it is
// shorter than 8.
func TestPeakTable2MeshShapes(t *testing.T) {
	s := NewMesh(8, 8, 4, true, true, false)
	// Torus dims: P*8/8 = 256. Mesh dim 4: max (j+1)(3-j) = 4 at j=1;
	// per-link = 4 * (P/4)^2 / (P/4) = 4 * 64 = 256. Equal here.
	bx := s.DimBottleneckPerByte(X)
	bz := s.DimBottleneckPerByte(Z)
	if bx != 256 || bz != 256 {
		t.Errorf("8x8x4M bottlenecks X=%v Z=%v, want 256/256", bx, bz)
	}
	s2 := NewMesh(8, 8, 8, true, true, false)
	if s2.PeakTimePerByte() != 1024 {
		t.Errorf("8x8x8M peak = %v, want 1024 (mesh dim dominates)", s2.PeakTimePerByte())
	}
}

func TestPeakTimeScalesWithMessage(t *testing.T) {
	s := New(8, 8, 8)
	if got, want := s.PeakTime(100), 100*s.PeakTimePerByte(); got != want {
		t.Errorf("PeakTime(100) = %v, want %v", got, want)
	}
}

func TestBisectionBandwidthPerNode(t *testing.T) {
	s := New(8, 8, 8)
	// (P-1)/(P*M/8) = 511/512.
	want := 511.0 / 512.0
	if got := s.BisectionBandwidthPerNode(); math.Abs(got-want) > 1e-12 {
		t.Errorf("bw/node = %v, want %v", got, want)
	}
	// Longer dimension lowers per-node bandwidth.
	a := New(8, 32, 16).BisectionBandwidthPerNode()
	b := New(16, 16, 16).BisectionBandwidthPerNode()
	if a >= b {
		t.Errorf("asymmetric 8x32x16 bw %v should be below symmetric 16^3 bw %v", a, b)
	}
}

// TestPeakDimMonotone property: growing a torus dimension never lowers that
// dimension's bottleneck.
func TestPeakDimMonotone(t *testing.T) {
	f := func(kRaw uint8) bool {
		k := int(kRaw%12)*2 + 4 // even sizes 4..26
		a := New(k, 4, 4).DimBottleneckPerByte(X)
		b := New(k+2, 4, 4).DimBottleneckPerByte(X)
		return b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
