package torus

// Peak all-to-all time analysis.
//
// The paper's Equation 2 gives the network-limited time for an all-to-all
// with per-pair payload m on a torus whose longest dimension has size M:
//
//	T = P * (M/8) * m * beta
//
// i.e. the contention factor is C = M/8. That derivation assumes every
// dimension is a torus with a uniformly loaded bisection. For mesh
// dimensions (Table 2's "M" partitions) the load is not uniform: the centre
// links of each line carry the most traffic, and the bottleneck per-link
// load doubles relative to a torus of the same size.
//
// This file computes the exact per-link bottleneck load under ideally
// balanced minimal routing, dimension by dimension. For torus dimensions it
// reduces to Equation 2; for mesh dimensions it yields the centre-cut
// bottleneck. All results are expressed in "unit time per payload byte"
// where one unit is the time to move one byte across one link.

// dimPlusHops returns, for dimension d, the total number of +direction hops
// summed over all ordered coordinate pairs (a, b) in that dimension, under
// minimal routing with even ties split equally. The value is scaled by 2 to
// keep it integral (tie splitting contributes half hops), so the true total
// is dimPlusHops/2.
func (s Shape) dimPlusHops2(d Dim) int64 {
	k := s.Size[d]
	var total int64
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			if a == b {
				continue
			}
			h := s.Delta(d, a, b)
			if s.Wrap[d] && k%2 == 0 {
				// Distance exactly k/2: Delta breaks the tie toward +, but an
				// ideally balanced scheme splits such pairs across both
				// directions, so count half in each.
				diff := b - a
				if diff < 0 {
					diff += k
				}
				if 2*diff == k {
					total += int64(h) // h == k/2 here; half of 2*h
					continue
				}
			}
			if h > 0 {
				total += 2 * int64(h)
			}
		}
	}
	return total
}

// meshBottleneck2 returns twice the maximum per-link pair-crossing count for
// a mesh dimension d: the number of ordered coordinate pairs whose (unique)
// minimal path crosses the most-loaded +direction link, scaled by 2 to match
// dimPlusHops2's scaling.
func (s Shape) meshBottleneck2(d Dim) int64 {
	k := s.Size[d]
	var best int64
	for j := 0; j < k-1; j++ { // link from j to j+1
		crossings := int64(j+1) * int64(k-1-j)
		if 2*crossings > best {
			best = 2 * crossings
		}
	}
	return best
}

// DimBottleneckPerByte returns the network time (in units per payload byte
// of per-pair message size) that dimension d needs to carry an all-to-all,
// assuming ideal load balance within the dimension. Zero for unit
// dimensions.
//
// For a torus dimension of size k this is P*k/8 (Equation 2 restricted to
// one dimension); for a mesh dimension it is the centre-link bottleneck,
// approximately P*k/4.
func (s Shape) DimBottleneckPerByte(d Dim) float64 {
	k := s.Size[d]
	if k == 1 {
		return 0
	}
	p := s.P()
	nodesPerCoord := float64(p / k)
	if s.Wrap[d] {
		// Uniform load: total +hops over all node pairs divided by the
		// number of +direction links (= P).
		hops2 := float64(s.dimPlusHops2(d)) / 2
		totalPlusHops := hops2 * nodesPerCoord * nodesPerCoord
		return totalPlusHops / float64(p)
	}
	// Mesh: bottleneck centre link. Each coordinate pair (a,b) represents
	// (P/k)^2 node pairs; the +links at a given position j number P/k (one
	// per line).
	cross2 := float64(s.meshBottleneck2(d)) / 2
	return cross2 * nodesPerCoord * nodesPerCoord / nodesPerCoord
}

// PeakTimePerByte returns the peak (best possible) all-to-all completion
// time per payload byte of per-pair message size, in link byte-time units:
// the maximum of the per-dimension bottlenecks. Multiply by the per-pair
// message size m to get the Equation 2 peak time (for torus shapes:
// P * (M/8) * m).
func (s Shape) PeakTimePerByte() float64 {
	var worst float64
	for d := Dim(0); d < NumDims; d++ {
		if b := s.DimBottleneckPerByte(d); b > worst {
			worst = b
		}
	}
	return worst
}

// PeakTime returns the Equation 2 peak all-to-all time, in link byte-time
// units, for per-pair payload m bytes.
func (s Shape) PeakTime(m int) float64 {
	return s.PeakTimePerByte() * float64(m)
}

// BisectionBandwidthPerNode returns the peak sustainable all-to-all
// throughput per node, in payload bytes per unit time: each node can move
// (P-1)*m ~= P*m bytes of payload in PeakTime(m).
func (s Shape) BisectionBandwidthPerNode() float64 {
	per := s.PeakTimePerByte()
	if per == 0 {
		return 0
	}
	return float64(s.P()-1) / per
}
