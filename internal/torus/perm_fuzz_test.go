package torus

import "testing"

// FuzzPerm checks the keyed Feistel permutation is a bijection on [0, n)
// for every domain size up to 4096 nodes and arbitrary seeds, and that the
// derived destination ordering visits every rank except self exactly once.
func FuzzPerm(f *testing.F) {
	f.Add(1, uint64(0))
	f.Add(2, uint64(1))
	f.Add(3, uint64(42))
	f.Add(64, uint64(1))
	f.Add(512, uint64(7))
	f.Add(4095, uint64(0xDEADBEEF))
	f.Add(4096, uint64(1))
	f.Fuzz(func(t *testing.T, n int, seed uint64) {
		if n < 1 || n > 4096 {
			t.Skip()
		}
		p := NewPerm(n, seed)
		if p.N() != n {
			t.Fatalf("NewPerm(%d, %d).N() = %d", n, seed, p.N())
		}
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			v := p.At(i)
			if v < 0 || v >= n {
				t.Fatalf("Perm(%d, %d).At(%d) = %d out of range", n, seed, i, v)
			}
			if seen[v] {
				t.Fatalf("Perm(%d, %d) maps two inputs to %d (not injective)", n, seed, v)
			}
			seen[v] = true
		}
		// Injective on a finite domain onto itself => bijective; seen is all
		// true here by counting. Now the destination ordering built on top:
		// node self must see every other rank exactly once.
		self := int(seed % uint64(n))
		o := NewDestOrder(n, self, seed)
		if o.Len() != n-1 {
			t.Fatalf("DestOrder(%d, %d).Len() = %d, want %d", n, self, o.Len(), n-1)
		}
		visited := make([]bool, n)
		for i := 0; i < o.Len(); i++ {
			d := o.At(i)
			if d < 0 || d >= n || d == self {
				t.Fatalf("DestOrder(%d, self=%d).At(%d) = %d invalid", n, self, i, d)
			}
			if visited[d] {
				t.Fatalf("DestOrder(%d, self=%d) visits %d twice", n, self, d)
			}
			visited[d] = true
		}
	})
}
