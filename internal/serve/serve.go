// Package serve is the concurrent simulation service behind cmd/aaserve: an
// HTTP/JSON front end that accepts canonical simulation jobs
// (collective.Request), runs them on a bounded scheduler with admission
// control and per-job deadlines, and memoizes completed results in an LRU
// keyed by Request.Key().
//
// The correctness bar is byte identity: a served result is the same bytes as
// a direct collective.RunRequest of the same Request, at any concurrency,
// whether it came from a worker or the cache. That holds because (a) the
// engines are deterministic for a fixed Request, (b) Request.Key() is
// injective over every Result-determining field, and (c) the cache stores
// the encoded result JSON produced at run time, never a re-encoding.
//
// Endpoints (all JSON, schema_version 1):
//
//	POST /v1/jobs        run a job; ?async=1 returns 202 + id immediately
//	GET  /v1/jobs/{id}   poll an async job
//	GET  /v1/strategies  list strategy names
//	GET  /healthz        liveness
//	GET  /metrics        queue depth, in-flight, cache hit rate, jobs/s,
//	                     per-strategy latency histograms, link census totals
//
// Backpressure: when the queue is full, POST /v1/jobs answers 429 with a
// Retry-After estimate derived from observed job latency and queue depth.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

// SchemaVersion stamps every response body; bump on breaking JSON changes.
const SchemaVersion = 1

// Config sizes the service. The zero value is usable: New fills defaults.
type Config struct {
	Workers        int           // concurrent simulations (default 4)
	QueueDepth     int           // admission queue capacity (default 4*Workers)
	CacheEntries   int           // LRU result capacity, 0 = default, <0 disables
	DefaultTimeout time.Duration // per-job deadline when the request has none (default 2m)
	RetainJobs     int           // finished async jobs kept for polling (default 256)
	MaxShards      int           // per-job shard ceiling (default 16)
	MaxNodes       int           // per-job torus size ceiling (default 65536)

	run runFunc // test hook; nil = collective.RunRequest
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 256
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 16
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 64 * 1024
	}
	if c.run == nil {
		c.run = defaultRun
	}
	return c
}

// Server is the simulation service. Create with New, mount Handler on an
// http.Server, and Close on shutdown (drains queued jobs).
type Server struct {
	cfg   Config
	cache *resultCache
	met   *metrics
	sched *scheduler

	nextID atomic.Int64

	mu    sync.Mutex
	jobs  map[string]*job // async registry
	order []string        // async ids oldest-first, for RetainJobs eviction
}

// New builds a Server from cfg (zero value = defaults) and starts its
// worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheEntries),
		met:   newMetrics(),
		jobs:  make(map[string]*job),
	}
	s.sched = newScheduler(cfg.Workers, cfg.QueueDepth, cfg.run, s.cache, s.met)
	return s
}

// Close stops admission and waits for queued and running jobs to finish.
func (s *Server) Close() { s.sched.close() }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/strategies", s.handleStrategies)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is every non-2xx response.
type errorBody struct {
	SchemaVersion int    `json:"schema_version"`
	Error         string `json:"error"`
	Code          string `json:"code"`
}

// mapError translates an engine or scheduler error into the documented HTTP
// status and machine-readable code. The mapping mirrors the root package's
// sentinel docs (alltoall.Err*).
func mapError(err error) (status int, code string) {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, torus.ErrBadShape):
		return http.StatusBadRequest, "bad_shape"
	case errors.Is(err, network.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, "canceled"
	case errors.Is(err, network.ErrMaxTime):
		return http.StatusUnprocessableEntity, "max_time"
	case errors.Is(err, errShutdown):
		return http.StatusServiceUnavailable, "shutting_down"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// retryAfterSeconds estimates when a queue slot should free up: the queue
// backlog divided across the worker pool, at the observed mean job latency.
func (s *Server) retryAfterSeconds() int {
	per := s.met.avgJobSeconds()
	wait := per * float64(s.sched.depth()+1) / float64(s.cfg.Workers)
	secs := int(math.Ceil(wait))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := mapError(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{SchemaVersion: SchemaVersion, Error: err.Error(), Code: code})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// submitBody is the POST /v1/jobs payload: the canonical Request wire form
// plus the timeout_ms sidecar (operational, so deliberately not part of the
// Request identity or Key).
type submitBody struct {
	collective.Request
	TimeoutMS int64
}

func decodeSubmit(r *http.Request) (submitBody, error) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(nil, r.Body, 1<<20)); err != nil {
		return submitBody{}, fmt.Errorf("read body: %w", err)
	}
	var b submitBody
	if err := json.Unmarshal(buf.Bytes(), &b.Request); err != nil {
		return submitBody{}, fmt.Errorf("decode request: %w", err)
	}
	var side struct {
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &side); err != nil {
		return submitBody{}, fmt.Errorf("decode request: %w", err)
	}
	b.TimeoutMS = side.TimeoutMS
	return b, nil
}

// admissible applies the service's resource ceilings on top of
// Request.Validate.
func (s *Server) admissible(req collective.Request) error {
	if req.Shards > s.cfg.MaxShards {
		return fmt.Errorf("serve: shards %d exceeds limit %d", req.Shards, s.cfg.MaxShards)
	}
	if p := req.Shape.P(); p > s.cfg.MaxNodes {
		return fmt.Errorf("serve: %d nodes exceeds limit %d", p, s.cfg.MaxNodes)
	}
	return nil
}

// newJob builds a job with its deadline context. base is the lifetime
// anchor: the HTTP request context for sync jobs (client gone = job
// canceled), context.Background for async jobs.
func (s *Server) newJob(base context.Context, req collective.Request, timeoutMS int64) *job {
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(base, timeout)
	j := &job{
		id:      fmt.Sprintf("j-%06d", s.nextID.Add(1)),
		req:     req,
		key:     req.Key(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		created: time.Now(),
	}
	return j
}

// jobEnvelope is the successful job response: the canonical request echoed
// back, its key, and the result bytes exactly as encoded at run time.
type jobEnvelope struct {
	SchemaVersion int                `json:"schema_version"`
	ID            string             `json:"id,omitempty"`
	Status        string             `json:"status"`
	Cache         string             `json:"cache,omitempty"` // "hit" or "miss"
	Key           string             `json:"key"`
	Request       collective.Request `json:"request"`
	Result        json.RawMessage    `json:"result,omitempty"`
	Error         string             `json:"error,omitempty"`
	Code          string             `json:"code,omitempty"`
}

func (s *Server) envelope(j *job, includeID bool) (jobEnvelope, int) {
	env := jobEnvelope{
		SchemaVersion: SchemaVersion,
		Status:        j.getStatus().String(),
		Key:           j.key,
		Request:       j.req,
	}
	if includeID {
		env.ID = j.id
	}
	status := http.StatusOK
	switch env.Status {
	case "done":
		env.Result = json.RawMessage(j.body)
		if j.fromCache {
			env.Cache = "hit"
		} else {
			env.Cache = "miss"
		}
	case "failed":
		env.Error = j.err.Error()
		status, env.Code = mapError(j.err)
	}
	return env, status
}

// badRequest answers 400. Shape errors keep their sentinel code; every
// other decode or validation failure is still the client's fault, never a
// 500.
func badRequest(w http.ResponseWriter, err error) {
	code := "bad_request"
	if errors.Is(err, torus.ErrBadShape) {
		code = "bad_shape"
	}
	writeJSON(w, http.StatusBadRequest, errorBody{SchemaVersion: SchemaVersion, Error: err.Error(), Code: code})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := decodeSubmit(r)
	if err != nil {
		badRequest(w, err)
		return
	}
	req := body.Request
	if err := req.Validate(); err != nil {
		badRequest(w, err)
		return
	}
	if err := s.admissible(req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{SchemaVersion: SchemaVersion, Error: err.Error(), Code: "limits"})
		return
	}

	async := r.URL.Query().Get("async") == "1"
	base := r.Context()
	if async {
		base = context.Background()
	}
	j := s.newJob(base, req, body.TimeoutMS)
	if err := s.sched.submit(j); err != nil {
		j.cancel()
		s.writeError(w, err)
		return
	}

	if async {
		s.registerJob(j)
		writeJSON(w, http.StatusAccepted, jobEnvelope{
			SchemaVersion: SchemaVersion,
			ID:            j.id,
			Status:        j.getStatus().String(),
			Key:           j.key,
			Request:       j.req,
		})
		return
	}

	<-j.done
	env, status := s.envelope(j, false)
	if env.Cache != "" {
		w.Header().Set("X-AA-Cache", env.Cache)
	}
	writeJSON(w, status, env)
}

// registerJob adds an async job to the polling registry, evicting the
// oldest finished jobs beyond RetainJobs.
func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.cfg.RetainJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.RetainJobs
	for _, id := range s.order {
		old := s.jobs[id]
		st := old.getStatus()
		if excess > 0 && (st == statusDone || st == statusFailed) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{SchemaVersion: SchemaVersion, Error: "unknown job " + id, Code: "not_found"})
		return
	}
	env, status := s.envelope(j, true)
	if env.Cache != "" {
		w.Header().Set("X-AA-Cache", env.Cache)
	}
	writeJSON(w, status, env)
}

func (s *Server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, 8)
	for _, st := range collective.Strategies() {
		names = append(names, string(st))
	}
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion int      `json:"schema_version"`
		Strategies    []string `json:"strategies"`
	}{SchemaVersion, names})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK,
		s.met.body(s.cfg.Workers, s.cfg.QueueDepth, s.sched.depth(), s.cache.len()))
}

// resultWire is the JSON layout of a served collective.Result: snake_case,
// optionals omitted when zero so the document stays stable across strategy
// families. Covered by SchemaVersion.
type resultWire struct {
	Strategy    string  `json:"strategy"`
	Shape       string  `json:"shape"`
	MsgBytes    int     `json:"msg_bytes"`
	Time        int64   `json:"time"`
	Seconds     float64 `json:"seconds"`
	PeakTime    float64 `json:"peak_time"`
	PercentPeak float64 `json:"percent_peak"`
	PerNodeMBs  float64 `json:"per_node_mbs"`

	PacketsInjected int64 `json:"packets_injected"`
	WireBytes       int64 `json:"wire_bytes"`
	PayloadBytes    int64 `json:"payload_bytes"`
	Events          int64 `json:"events"`
	QueuedEvents    int64 `json:"queued_events"`

	MeanLatencyUnits float64 `json:"mean_latency_units"`
	MaxLinkUtil      float64 `json:"max_link_util"`
	MeanLinkUtil     float64 `json:"mean_link_util"`
	MeanCPUUtil      float64 `json:"mean_cpu_util"`
	MaxCPUUtil       float64 `json:"max_cpu_util"`
	LastInjectUnits  int64   `json:"last_inject_units"`

	DeadLinkTicks int64 `json:"dead_link_ticks,omitempty"`
	Reroutes      int64 `json:"reroutes,omitempty"`

	TPSLinearDim           string  `json:"tps_linear_dim,omitempty"`
	CreditPackets          int64   `json:"credit_packets,omitempty"`
	MaxIntermediateBacklog int     `json:"max_intermediate_backlog,omitempty"`
	VMeshRows              int     `json:"vmesh_rows,omitempty"`
	VMeshCols              int     `json:"vmesh_cols,omitempty"`
	PhaseTimes             []int64 `json:"phase_times,omitempty"`

	Observed *observe.Summary `json:"observed,omitempty"`
}

// resultJSON encodes a Result in the canonical served form. Byte identity
// between served and direct runs is asserted against this encoding; it must
// be deterministic (encoding/json with fixed struct order is).
func resultJSON(res collective.Result) ([]byte, error) {
	w := resultWire{
		Strategy:               string(res.Strategy),
		Shape:                  res.Shape.Canon(),
		MsgBytes:               res.MsgBytes,
		Time:                   res.Time,
		Seconds:                res.Seconds,
		PeakTime:               res.PeakTime,
		PercentPeak:            res.PercentPeak,
		PerNodeMBs:             res.PerNodeMBs,
		PacketsInjected:        res.PacketsInjected,
		WireBytes:              res.WireBytes,
		PayloadBytes:           res.PayloadBytes,
		Events:                 res.Events,
		QueuedEvents:           res.QueuedEvents,
		MeanLatencyUnits:       res.MeanLatencyUnits,
		MaxLinkUtil:            res.MaxLinkUtil,
		MeanLinkUtil:           res.MeanLinkUtil,
		MeanCPUUtil:            res.MeanCPUUtil,
		MaxCPUUtil:             res.MaxCPUUtil,
		LastInjectUnits:        res.LastInjectUnits,
		DeadLinkTicks:          res.DeadLinkTicks,
		Reroutes:               res.Reroutes,
		CreditPackets:          res.CreditPackets,
		MaxIntermediateBacklog: res.MaxIntermediateBacklog,
		VMeshRows:              res.VMeshRows,
		VMeshCols:              res.VMeshCols,
		PhaseTimes:             res.PhaseTimes,
		Observed:               res.Observed,
	}
	if res.Strategy == collective.StratTPS {
		w.TPSLinearDim = string("xyz"[res.TPSLinearDim])
	}
	return json.Marshal(w)
}
