package serve

import (
	"container/list"
	"sync"

	"alltoall/internal/collective"
)

// resultCache memoizes completed job results in an LRU keyed by the
// canonical Request.Key(). The cached value is the encoded result JSON
// (plus the Result struct for job-status rendering), so a hit is served
// byte-for-byte as the original run - the cache can never introduce a
// divergence between a served and a directly-computed result, because keys
// are injective over every Result-determining field and the engines are
// deterministic. Only successful runs are cached; failures always re-run.
type resultCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

type cacheEntry struct {
	key  string
	body []byte
	res  collective.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		m:   make(map[string]*list.Element, capacity),
		l:   list.New(),
	}
}

// get returns the cached encoding and Result for a key, refreshing its
// recency. Callers must treat the returned body as immutable.
func (c *resultCache) get(key string) ([]byte, collective.Result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, collective.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, collective.Result{}, false
	}
	c.l.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.res, true
}

// add inserts (or refreshes) a completed result, evicting the least
// recently used entry beyond capacity.
func (c *resultCache) add(key string, body []byte, res collective.Result) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.l.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.body, e.res = body, res
		return
	}
	c.m[key] = c.l.PushFront(&cacheEntry{key: key, body: body, res: res})
	for c.l.Len() > c.cap {
		back := c.l.Back()
		c.l.Remove(back)
		delete(c.m, back.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
