package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// latBuckets is the number of power-of-two latency buckets: bucket i counts
// jobs with wall latency < 2^i ms (the last bucket is the overflow).
const latBuckets = 16

// latHist is a log2-millisecond latency histogram for one strategy.
type latHist struct {
	counts [latBuckets]int64
	jobs   int64
	failed int64
	sumMs  float64
	maxMs  float64
}

func (h *latHist) note(d time.Duration, ok bool) {
	h.jobs++
	if !ok {
		h.failed++
		return
	}
	ms := float64(d) / float64(time.Millisecond)
	h.sumMs += ms
	if ms > h.maxMs {
		h.maxMs = ms
	}
	b := 0
	for b < latBuckets-1 && ms >= float64(int64(1)<<b) {
		b++
	}
	h.counts[b]++
}

// metrics aggregates the serving layer's operational counters. Simulator
// work (runs, events, packets) comes from the Results themselves, and jobs
// that requested observation additionally fold their observe.Summary link
// census in - the same internal/observe machinery that powers Result
// .Observed feeds the service totals.
type metrics struct {
	start time.Time

	accepted atomic.Int64 // admitted jobs (including cache hits)
	rejected atomic.Int64 // refused by admission control (queue full)
	inFlight atomic.Int64 // currently executing on a worker
	hits     atomic.Int64 // LRU result-cache hits
	misses   atomic.Int64 // LRU result-cache misses

	simRuns    atomic.Int64 // completed simulations
	simEvents  atomic.Int64 // logical simulator events across served jobs
	simPackets atomic.Int64 // packets injected across served jobs

	// Sharded-engine synchronization counters, folded from each job's
	// SyncStats out-parameter (all zero while every job runs unsharded).
	syncAdvances atomic.Int64 // horizon advances (windows or clock steps)
	syncWaits    atomic.Int64 // blocked waits (barriers or backoff episodes)
	syncWaitNs   atomic.Int64 // wall-clock ns spent blocked (async only)
	syncXEvents  atomic.Int64 // events shipped across shard boundaries
	syncXBytes   atomic.Int64 // bytes shipped across shard boundaries

	mu           sync.Mutex
	byStrategy   map[collective.Strategy]*latHist
	observedJobs int64
	bytesByVC    [network.NumVC]int64
	bytesByDim   [torus.NumDims]int64
	runNanos     int64 // summed successful job wall time, for Retry-After
	runCount     int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), byStrategy: make(map[collective.Strategy]*latHist)}
}

func (m *metrics) noteCacheHit()  { m.accepted.Add(1); m.hits.Add(1) }
func (m *metrics) noteCacheMiss() { m.accepted.Add(1); m.misses.Add(1) }
func (m *metrics) noteRejected()  { m.accepted.Add(-1); m.rejected.Add(1) } // submit counted it as a miss first
func (m *metrics) noteStart()     { m.inFlight.Add(1) }
func (m *metrics) noteDone()      { m.inFlight.Add(-1) }

// noteSync folds one successful job's sharded-engine synchronization
// counters into the service totals.
func (m *metrics) noteSync(ss *network.SyncStats) {
	m.syncAdvances.Add(ss.HorizonAdvances)
	m.syncWaits.Add(ss.BlockedWaits)
	m.syncWaitNs.Add(ss.BlockedWaitNs)
	m.syncXEvents.Add(ss.CrossShardEvents)
	m.syncXBytes.Add(ss.CrossShardBytes)
}

// noteJob records one finished (or canceled-in-queue) job.
func (m *metrics) noteJob(strat collective.Strategy, d time.Duration, ok bool, res *collective.Result) {
	if ok && res != nil {
		m.simRuns.Add(1)
		m.simEvents.Add(res.Events)
		m.simPackets.Add(res.PacketsInjected)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.byStrategy[strat]
	if h == nil {
		h = &latHist{}
		m.byStrategy[strat] = h
	}
	h.note(d, ok)
	if ok {
		m.runNanos += int64(d)
		m.runCount++
	}
	if ok && res != nil && res.Observed != nil {
		m.observedJobs++
		for v, b := range res.Observed.BytesByVC {
			m.bytesByVC[v] += b
		}
		for dim, b := range res.Observed.BytesByDim {
			m.bytesByDim[dim] += b
		}
	}
}

// avgJobSeconds estimates one job's wall time from completed work (1s until
// there is data); Retry-After estimation uses it.
func (m *metrics) avgJobSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.runCount == 0 {
		return 1
	}
	return float64(m.runNanos) / float64(m.runCount) / float64(time.Second)
}

// stratMetrics is one strategy's row in the metrics body.
type stratMetrics struct {
	Strategy     string            `json:"strategy"`
	Jobs         int64             `json:"jobs"`
	Failed       int64             `json:"failed,omitempty"`
	MeanMs       float64           `json:"mean_ms"`
	MaxMs        float64           `json:"max_ms"`
	BucketsLeMs  [latBuckets]int64 `json:"le_ms_bounds"`
	BucketCounts [latBuckets]int64 `json:"le_ms_counts"`
}

// metricsBody is the GET /metrics document. Rates are computed over server
// uptime; histograms are per strategy in log2-millisecond buckets.
type metricsBody struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueCap      int     `json:"queue_cap"`
	QueueDepth    int     `json:"queue_depth"`
	InFlight      int64   `json:"in_flight"`

	JobsAccepted int64   `json:"jobs_accepted"`
	JobsRejected int64   `json:"jobs_rejected"`
	JobsPerSec   float64 `json:"jobs_per_sec"`

	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`

	SimRuns         int64   `json:"sim_runs"`
	SimEvents       int64   `json:"sim_events"`
	SimPackets      int64   `json:"sim_packets"`
	SimEventsPerSec float64 `json:"sim_events_per_sec"`

	SyncAdvances int64 `json:"sync_horizon_advances"`
	SyncWaits    int64 `json:"sync_blocked_waits"`
	SyncWaitNs   int64 `json:"sync_blocked_wait_ns"`
	SyncXEvents  int64 `json:"sync_cross_shard_events"`
	SyncXBytes   int64 `json:"sync_cross_shard_bytes"`

	ObservedJobs int64                `json:"observed_jobs"`
	BytesByVC    [network.NumVC]int64 `json:"observed_bytes_by_vc"`
	BytesByDim   [torus.NumDims]int64 `json:"observed_bytes_by_dim"`
	Strategies   []stratMetrics       `json:"strategies"`
}

// body renders the metrics snapshot.
func (m *metrics) body(workers, queueCap, queueDepth, cacheEntries int) metricsBody {
	up := time.Since(m.start).Seconds()
	hits, misses := m.hits.Load(), m.misses.Load()
	b := metricsBody{
		SchemaVersion: SchemaVersion,
		UptimeSeconds: up,
		Workers:       workers,
		QueueCap:      queueCap,
		QueueDepth:    queueDepth,
		InFlight:      m.inFlight.Load(),
		JobsAccepted:  m.accepted.Load(),
		JobsRejected:  m.rejected.Load(),
		CacheHits:     hits,
		CacheMisses:   misses,
		CacheEntries:  cacheEntries,
		SimRuns:       m.simRuns.Load(),
		SimEvents:     m.simEvents.Load(),
		SimPackets:    m.simPackets.Load(),
		SyncAdvances:  m.syncAdvances.Load(),
		SyncWaits:     m.syncWaits.Load(),
		SyncWaitNs:    m.syncWaitNs.Load(),
		SyncXEvents:   m.syncXEvents.Load(),
		SyncXBytes:    m.syncXBytes.Load(),
	}
	if hits+misses > 0 {
		b.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	if up > 0 {
		b.JobsPerSec = float64(b.JobsAccepted) / up
		b.SimEventsPerSec = float64(b.SimEvents) / up
	}
	m.mu.Lock()
	b.ObservedJobs = m.observedJobs
	b.BytesByVC = m.bytesByVC
	b.BytesByDim = m.bytesByDim
	for strat, h := range m.byStrategy {
		row := stratMetrics{
			Strategy:     string(strat),
			Jobs:         h.jobs,
			Failed:       h.failed,
			MaxMs:        h.maxMs,
			BucketCounts: h.counts,
		}
		for i := 0; i < latBuckets; i++ {
			row.BucketsLeMs[i] = int64(1) << i
		}
		if ok := h.jobs - h.failed; ok > 0 {
			row.MeanMs = h.sumMs / float64(ok)
		}
		b.Strategies = append(b.Strategies, row)
	}
	m.mu.Unlock()
	sort.Slice(b.Strategies, func(i, j int) bool { return b.Strategies[i].Strategy < b.Strategies[j].Strategy })
	return b
}
