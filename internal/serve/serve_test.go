package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// goldenFaults matches the aasim golden fixture: a permanent kill plus a
// transient outage on a 4x4x2 torus.
const goldenFaults = "0:5:+x:kill;300:12:-y:down;2500:12:-y:up"

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// post submits a request body to the server's handler and returns the
// recorded response.
func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func decodeEnvelope(t *testing.T, w *httptest.ResponseRecorder) jobEnvelope {
	t.Helper()
	var env jobEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatalf("decode envelope from %q: %v", w.Body.String(), err)
	}
	return env
}

// TestServedMatchesDirect is the tentpole's correctness bar: the result
// bytes served over HTTP must be identical to a direct RunRequest of the
// same Request, across shard counts and with faults on or off, and a cache
// hit must replay the same bytes again.
func TestServedMatchesDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()
	for _, shards := range []int{1, 4} {
		for _, faults := range []string{"", goldenFaults} {
			name := fmt.Sprintf("shards=%d/faults=%v", shards, faults != "")
			t.Run(name, func(t *testing.T) {
				req := collective.Request{
					Strategy: collective.StratAR,
					Shape:    torus.New(4, 4, 2),
					MsgBytes: 240,
					Seed:     1,
					Check:    true,
					Shards:   shards,
					Faults:   faults,
				}
				direct, err := collective.RunRequest(context.Background(), req)
				if err != nil {
					t.Fatalf("direct run: %v", err)
				}
				want, err := resultJSON(direct)
				if err != nil {
					t.Fatal(err)
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				w := post(t, h, "/v1/jobs", string(body))
				if w.Code != http.StatusOK {
					t.Fatalf("POST = %d: %s", w.Code, w.Body.String())
				}
				env := decodeEnvelope(t, w)
				if !bytes.Equal([]byte(env.Result), want) {
					t.Errorf("served result differs from direct run\nserved: %s\ndirect: %s", env.Result, want)
				}
				if env.Key != req.Key() {
					t.Errorf("served key %q, want %q", env.Key, req.Key())
				}
				// The replay from the LRU must be the same bytes again.
				w2 := post(t, h, "/v1/jobs", string(body))
				if w2.Code != http.StatusOK {
					t.Fatalf("cached POST = %d: %s", w2.Code, w2.Body.String())
				}
				if hdr := w2.Header().Get("X-AA-Cache"); hdr != "hit" {
					t.Errorf("second POST X-AA-Cache = %q, want hit", hdr)
				}
				env2 := decodeEnvelope(t, w2)
				if !bytes.Equal([]byte(env2.Result), want) {
					t.Errorf("cache replay differs from direct run\nserved: %s\ndirect: %s", env2.Result, want)
				}
			})
		}
	}
}

func TestBadShapeMapping(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	for name, body := range map[string]string{
		"parse":    `{"strategy":"AR","shape":"0x8","msg_bytes":64}`,
		"validate": `{"strategy":"AR","msg_bytes":64}`,
	} {
		w := post(t, h, "/v1/jobs", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, w.Code)
		}
		var eb errorBody
		json.Unmarshal(w.Body.Bytes(), &eb)
		if eb.Code != "bad_shape" {
			t.Errorf("%s: code %q, want bad_shape: %s", name, eb.Code, w.Body.String())
		}
	}
	// A syntactically broken body is bad_request, not a shape error.
	w := post(t, h, "/v1/jobs", `{"strategy":`)
	var eb errorBody
	json.Unmarshal(w.Body.Bytes(), &eb)
	if w.Code != http.StatusBadRequest || eb.Code != "bad_request" {
		t.Errorf("broken JSON: %d %q, want 400 bad_request", w.Code, eb.Code)
	}
}

// blockingRun is a runFunc that parks jobs until released (or their context
// dies), for deterministic queue-full and cancellation tests.
func blockingRun(release chan struct{}) runFunc {
	return func(ctx context.Context, req collective.Request, cache *collective.NetCache, ss *network.SyncStats) (collective.Result, error) {
		select {
		case <-release:
			return collective.Result{Strategy: req.Strategy, Shape: req.Shape, MsgBytes: req.MsgBytes}, nil
		case <-ctx.Done():
			return collective.Result{}, fmt.Errorf("run: %w", network.ErrCanceled)
		}
	}
}

func jobBody(seed int) string {
	return fmt.Sprintf(`{"strategy":"AR","shape":"4x4x2","msg_bytes":64,"seed":%d}`, seed)
}

func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := testServer(t, Config{Workers: 1, QueueDepth: 1, run: blockingRun(release)})
	h := s.Handler()

	// First job occupies the worker, second the single queue slot. Distinct
	// seeds keep the LRU out of the way.
	first := post(t, h, "/v1/jobs?async=1", jobBody(1))
	if first.Code != http.StatusAccepted {
		t.Fatalf("first job: %d %s", first.Code, first.Body.String())
	}
	waitDepth := func(want int) {
		t.Helper()
		for i := 0; i < 200; i++ {
			if s.sched.depth() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("queue depth never reached %d", want)
	}
	waitDepth(0) // worker picked up job 1
	second := post(t, h, "/v1/jobs?async=1", jobBody(2))
	if second.Code != http.StatusAccepted {
		t.Fatalf("second job: %d %s", second.Code, second.Body.String())
	}
	waitDepth(1)

	third := post(t, h, "/v1/jobs?async=1", jobBody(3))
	if third.Code != http.StatusTooManyRequests {
		t.Fatalf("third job: %d, want 429: %s", third.Code, third.Body.String())
	}
	if third.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var eb errorBody
	json.Unmarshal(third.Body.Bytes(), &eb)
	if eb.Code != "queue_full" {
		t.Errorf("code %q, want queue_full", eb.Code)
	}
}

func TestCanceledMapping(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := testServer(t, Config{Workers: 1, run: blockingRun(release)})
	w := post(t, s.Handler(), "/v1/jobs", `{"strategy":"AR","shape":"4x4x2","msg_bytes":64,"timeout_ms":20}`)
	if w.Code != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w)
	if env.Code != "canceled" || env.Status != "failed" {
		t.Errorf("code %q status %q, want canceled/failed", env.Code, env.Status)
	}
}

// TestMaxTimeMapping drives a real simulation into its MaxTime bound and
// checks the 422 mapping end to end (engine sentinel -> scheduler -> HTTP).
func TestMaxTimeMapping(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	w := post(t, s.Handler(), "/v1/jobs", `{"strategy":"AR","shape":"4x4x2","msg_bytes":240,"max_time":50}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w)
	if env.Code != "max_time" {
		t.Errorf("code %q, want max_time", env.Code)
	}
}

func TestLimitsRejected(t *testing.T) {
	s := testServer(t, Config{Workers: 1, MaxShards: 2, MaxNodes: 100})
	h := s.Handler()
	for name, body := range map[string]string{
		"shards": `{"strategy":"AR","shape":"4x4x2","msg_bytes":64,"shards":8}`,
		"nodes":  `{"strategy":"AR","shape":"8x8x8","msg_bytes":64}`,
	} {
		w := post(t, h, "/v1/jobs", body)
		var eb errorBody
		json.Unmarshal(w.Body.Bytes(), &eb)
		if w.Code != http.StatusBadRequest || eb.Code != "limits" {
			t.Errorf("%s: %d %q, want 400 limits", name, w.Code, eb.Code)
		}
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testServer(t, Config{Workers: 2})
	h := s.Handler()
	req := collective.Request{Strategy: collective.StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, Seed: 9}
	body, _ := json.Marshal(req)
	w := post(t, h, "/v1/jobs?async=1", string(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("async POST = %d: %s", w.Code, w.Body.String())
	}
	env := decodeEnvelope(t, w)
	if env.ID == "" {
		t.Fatal("202 without job id")
	}
	var final jobEnvelope
	deadline := time.Now().Add(30 * time.Second)
	for {
		pw := get(t, h, "/v1/jobs/"+env.ID)
		if pw.Code != http.StatusOK {
			t.Fatalf("poll = %d: %s", pw.Code, pw.Body.String())
		}
		final = decodeEnvelope(t, pw)
		if final.Status == "done" || final.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Status != "done" {
		t.Fatalf("job failed: %s", final.Error)
	}
	direct, err := collective.RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := resultJSON(direct)
	if !bytes.Equal([]byte(final.Result), want) {
		t.Errorf("async result differs from direct run\nserved: %s\ndirect: %s", final.Result, want)
	}
	if nf := get(t, h, "/v1/jobs/j-999999"); nf.Code != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", nf.Code)
	}
}

// TestConcurrentSoak hammers the scheduler and LRU with concurrent mixed-
// shape jobs (run under -race in CI): every response for a given Request
// must carry identical result bytes, and the cache must take real hits.
func TestConcurrentSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testServer(t, Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	shapes := []string{"4x4x2", "4x2x2", "8x4x1", "4x4x1M"}
	const perShape = 10 // 40 jobs total, ≥32 required
	var wg sync.WaitGroup
	results := make([][]byte, len(shapes)*perShape)
	errs := make([]error, len(shapes)*perShape)
	for si, shape := range shapes {
		for k := 0; k < perShape; k++ {
			wg.Add(1)
			go func(idx int, shape string) {
				defer wg.Done()
				body := fmt.Sprintf(`{"strategy":"AR","shape":"%s","msg_bytes":64,"seed":1}`, shape)
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errs[idx] = err
					return
				}
				defer resp.Body.Close()
				var env jobEnvelope
				if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
					errs[idx] = fmt.Errorf("decode: %w", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[idx] = fmt.Errorf("status %d: %s %s", resp.StatusCode, env.Error, env.Code)
					return
				}
				results[idx] = []byte(env.Result)
			}(si*perShape+k, shape)
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	for si := range shapes {
		base := results[si*perShape]
		for k := 1; k < perShape; k++ {
			if !bytes.Equal(base, results[si*perShape+k]) {
				t.Errorf("shape %s: job %d served different bytes under concurrency", shapes[si], k)
			}
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mb metricsBody
	if err := json.NewDecoder(resp.Body).Decode(&mb); err != nil {
		t.Fatal(err)
	}
	if mb.CacheHits == 0 {
		t.Error("soak finished with zero cache hits")
	}
	if mb.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %v, want > 0", mb.CacheHitRate)
	}
	if mb.JobsAccepted != int64(len(shapes)*perShape) {
		t.Errorf("jobs_accepted %d, want %d", mb.JobsAccepted, len(shapes)*perShape)
	}
	if mb.SimRuns == 0 || len(mb.Strategies) == 0 {
		t.Errorf("metrics missing sim work: runs %d, strategies %d", mb.SimRuns, len(mb.Strategies))
	}
}

func TestStrategiesAndHealth(t *testing.T) {
	s := testServer(t, Config{Workers: 1})
	h := s.Handler()
	w := get(t, h, "/v1/strategies")
	var body struct {
		Strategies []string `json:"strategies"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || len(body.Strategies) < 5 {
		t.Errorf("strategies = %v (%v)", body.Strategies, err)
	}
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz = %d", w.Code)
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	res := collective.Result{}
	c.add("a", []byte("A"), res)
	c.add("b", []byte("B"), res)
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("a evicted early")
	}
	c.add("c", []byte("C"), res) // evicts b (a was refreshed)
	if _, _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if body, _, ok := c.get("a"); !ok || string(body) != "A" {
		t.Errorf("a = %q %v", body, ok)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Disabled cache accepts and returns nothing.
	d := newResultCache(0)
	d.add("x", []byte("X"), res)
	if _, _, ok := d.get("x"); ok {
		t.Error("disabled cache returned a hit")
	}
}

func TestShutdownRejectsSubmissions(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	w := post(t, s.Handler(), "/v1/jobs", jobBody(1))
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("post after Close = %d, want 503", w.Code)
	}
}
