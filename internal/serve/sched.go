package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/network"
)

// ErrQueueFull is returned by admission control when a job cannot be
// enqueued because the scheduler queue is at capacity. The HTTP layer maps
// it to 429 Too Many Requests with a Retry-After estimate; test with
// errors.Is (re-exported as alltoall.ErrQueueFull).
var ErrQueueFull = errors.New("serve: job queue full")

// errShutdown rejects submissions after Close.
var errShutdown = errors.New("serve: server shutting down")

// jobStatus is the lifecycle of a job in the scheduler.
type jobStatus int32

const (
	statusQueued jobStatus = iota
	statusRunning
	statusDone
	statusFailed
)

func (s jobStatus) String() string {
	switch s {
	case statusQueued:
		return "queued"
	case statusRunning:
		return "running"
	case statusDone:
		return "done"
	case statusFailed:
		return "failed"
	}
	return fmt.Sprintf("jobStatus(%d)", int32(s))
}

// job is one scheduled simulation. Fields before done are set at submit
// time; result fields are written by exactly one goroutine (the worker, or
// the submitter on a cache hit) before done is closed, and read only after
// <-done, so no further synchronization is needed on them. status is
// guarded by the owning server's registry lock for rendering.
type job struct {
	id  string
	req collective.Request
	key string

	ctx    context.Context
	cancel context.CancelFunc

	done      chan struct{}
	res       collective.Result
	body      []byte // canonical result JSON (resultJSON), nil on failure
	err       error
	fromCache bool

	mu       sync.Mutex // guards status
	status   jobStatus
	created  time.Time
	finished time.Time
}

func (j *job) setStatus(s jobStatus) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

func (j *job) getStatus() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// finish publishes a job outcome exactly once.
func (j *job) finish(res collective.Result, body []byte, err error) {
	j.res = res
	j.body = body
	j.err = err
	j.finished = time.Now()
	if err != nil {
		j.setStatus(statusFailed)
	} else {
		j.setStatus(statusDone)
	}
	j.cancel()
	close(j.done)
}

// runFunc executes one canonical request; the default is
// collective.RunRequest with the worker's network cache attached and the
// sharded engine's synchronization counters collected into ss (which may be
// nil). Tests substitute blocking or failing runners to exercise scheduling
// edges.
type runFunc func(ctx context.Context, req collective.Request, cache *collective.NetCache, ss *network.SyncStats) (collective.Result, error)

func defaultRun(ctx context.Context, req collective.Request, cache *collective.NetCache, ss *network.SyncStats) (collective.Result, error) {
	return collective.RunRequest(ctx, req, func(o *collective.Options) {
		o.Cache = cache
		o.SyncStats = ss
	})
}

// scheduler runs jobs on a bounded worker pool behind a bounded FIFO queue.
// Admission is non-blocking: a full queue refuses the job with ErrQueueFull
// and the HTTP layer translates that into backpressure. Each worker owns a
// private collective.NetCache, so consecutive jobs that share a shape and
// machine parameters recycle the simulation network's allocations - the
// cheap, always-correct reuse - while byte-level result reuse is the LRU's
// job (cache.go). Determinism note: a worker cache never changes a Result
// (Network.Reset reuse is regression-tested byte-identical), so scheduling
// order and worker count are invisible in served output.
type scheduler struct {
	queue   chan *job
	workers int
	run     runFunc
	cache   *resultCache
	metrics *metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

func newScheduler(workers, depth int, run runFunc, cache *resultCache, m *metrics) *scheduler {
	s := &scheduler{
		queue:   make(chan *job, depth),
		workers: workers,
		run:     run,
		cache:   cache,
		metrics: m,
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// submit admits a job: an LRU hit completes it immediately (no queue slot,
// no worker), otherwise it joins the FIFO unless the queue is full.
func (s *scheduler) submit(j *job) error {
	if body, res, ok := s.cache.get(j.key); ok {
		s.metrics.noteCacheHit()
		j.fromCache = true
		j.finish(res, body, nil)
		return nil
	}
	s.metrics.noteCacheMiss()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShutdown
	}
	select {
	case s.queue <- j:
		return nil
	default:
		s.metrics.noteRejected()
		return fmt.Errorf("%w (depth %d)", ErrQueueFull, cap(s.queue))
	}
}

// depth reports the number of queued (not yet running) jobs.
func (s *scheduler) depth() int { return len(s.queue) }

func (s *scheduler) worker() {
	defer s.wg.Done()
	cache := &collective.NetCache{}
	for j := range s.queue {
		// A job can be canceled (client gone, deadline past) while it
		// waits in the queue; don't burn a worker on it.
		if err := j.ctx.Err(); err != nil {
			j.finish(collective.Result{}, nil, fmt.Errorf("canceled while queued: %w", err))
			s.metrics.noteJob(j.req.Strategy, 0, false, nil)
			continue
		}
		j.setStatus(statusRunning)
		s.metrics.noteStart()
		start := time.Now()
		var ss network.SyncStats
		res, err := s.run(j.ctx, j.req, cache, &ss)
		elapsed := time.Since(start)
		var body []byte
		if err == nil {
			if body, err = resultJSON(res); err == nil {
				s.cache.add(j.key, body, res)
			}
		}
		s.metrics.noteDone()
		if err != nil {
			s.metrics.noteJob(j.req.Strategy, elapsed, false, nil)
			j.finish(collective.Result{}, nil, err)
			continue
		}
		s.metrics.noteSync(&ss)
		s.metrics.noteJob(j.req.Strategy, elapsed, true, &res)
		j.finish(res, body, nil)
	}
}

// close drains the pool: no new submissions, queued jobs still run.
func (s *scheduler) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
