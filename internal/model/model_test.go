package model

import (
	"math"
	"testing"

	"alltoall/internal/torus"
)

func TestContentionFactorTorus(t *testing.T) {
	// C = M/8 on a torus (Equation 2).
	cases := []struct {
		s    torus.Shape
		want float64
	}{
		{torus.New(8, 8, 8), 1},
		{torus.New(16, 16, 16), 2},
		{torus.New(8, 32, 16), 4},
		{torus.New(40, 32, 16), 5},
	}
	for _, c := range cases {
		if got := ContentionFactor(c.s); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%v: C = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestPeakTimeEq2(t *testing.T) {
	s := torus.New(8, 8, 8)
	// T = P * (M/8) * m = 512 * 1 * 1000.
	if got := PeakTime(s, 1000); got != 512000 {
		t.Errorf("PeakTime = %v, want 512000", got)
	}
}

func TestDirectTimeEq3(t *testing.T) {
	c := DefaultCalib()
	s := torus.New(8, 8, 8)
	m := 952 // m+h = 1000
	want := 512*99.0 + 512*1*1000.0
	if got := DirectTime(c, s, m); math.Abs(got-want) > 1e-6 {
		t.Errorf("DirectTime = %v, want %v", got, want)
	}
}

func TestVMeshTimeEq4(t *testing.T) {
	c := DefaultCalib()
	s := torus.New(8, 8, 8)
	m := 8
	want := float64(32+16)*258 + 2*512*float64(8+8)*(1+0.247)
	if got := VMeshTime(c, s, 32, 16, m); math.Abs(got-want) > 1e-6 {
		t.Errorf("VMeshTime = %v, want %v", got, want)
	}
}

func TestCrossover(t *testing.T) {
	// h - 2*proto = 48 - 16 = 32 bytes, as derived in Section 4.2.
	if got := CrossoverBytes(DefaultCalib()); got != 32 {
		t.Errorf("crossover = %d, want 32", got)
	}
}

func TestVMeshBeatsDirectForShortMessages(t *testing.T) {
	c := DefaultCalib()
	s := torus.New(8, 32, 16) // 4096 nodes, M=32
	// Ignore startup terms: beta term comparison at m=8 should favour vmesh.
	short := VMeshTime(c, s, 128, 32, 8)
	direct := DirectTime(c, s, 8)
	if short >= direct {
		t.Errorf("vmesh %v should beat direct %v at m=8 on %v", short, direct, s)
	}
	// And lose for large messages (factor ~2 in the beta term).
	long := VMeshTime(c, s, 128, 32, 65536)
	directLong := DirectTime(c, s, 65536)
	if long <= directLong {
		t.Errorf("vmesh %v should lose to direct %v at m=64K", long, directLong)
	}
	ratio := long / directLong
	if ratio < 1.7 || ratio > 2.6 {
		t.Errorf("large-message vmesh/direct ratio = %v, want ~2", ratio)
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	c := DefaultCalib()
	if got := c.Seconds(1e9 / 6.48); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	if got := c.Units(c.Seconds(12345)); math.Abs(got-12345) > 1e-6 {
		t.Errorf("Units(Seconds(x)) = %v", got)
	}
}

func TestPerNodeBandwidth(t *testing.T) {
	c := DefaultCalib()
	s := torus.New(8, 8, 8)
	// At exactly peak time, per-node bandwidth equals the bisection limit.
	units := PeakTime(s, 1000)
	got := PerNodeBandwidth(c, s, 1000, units)
	want := PeakPerNodeBandwidth(c, s)
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("bw at peak = %v, want %v", got, want)
	}
	// Sanity: one link at 6.48 ns/byte is ~154 MB/s; the 8x8x8 bisection
	// limit per node is just under one link.
	if want < 140 || want > 160 {
		t.Errorf("8x8x8 peak per-node bw = %v MB/s, expected ~154", want)
	}
}

func TestPointToPointMonotone(t *testing.T) {
	c := DefaultCalib()
	if PointToPoint(c, 100, 1, 1) >= PointToPoint(c, 10000, 1, 1) {
		t.Error("p2p time must grow with message size")
	}
	if PointToPoint(c, 100, 1, 1) >= PointToPoint(c, 100, 20, 1) {
		t.Error("p2p time must grow with hop count")
	}
}

func TestTable4LatencyBallpark(t *testing.T) {
	// The paper's Table 4 measures 0.52 ms for a 1-byte AR all-to-all on
	// 8x8x8. Equation 3 with 64-byte minimum packets predicts:
	// P*alpha + P*C*wire = 512*99 + 512*64 units = 83.6k units = 0.54 ms.
	c := DefaultCalib()
	s := torus.New(8, 8, 8)
	units := float64(s.P())*float64(c.AlphaAR) + float64(s.P())*ContentionFactor(s)*64
	ms := c.Seconds(units) * 1e3
	if ms < 0.4 || ms > 0.7 {
		t.Errorf("predicted 1-byte AA latency = %v ms, want ~0.52", ms)
	}
}
