// Package model implements the paper's analytic performance model for
// all-to-all communication on the Blue Gene/L torus (Section 2.1,
// Equations 1-4) and the calibration constants measured by the authors.
//
// All times are expressed in the simulator's abstract time units, where one
// unit is the time to move one byte across one link at the paper's
// effective rate beta = 6.48 ns/byte. Seconds() converts.
package model

import (
	"alltoall/internal/torus"
)

// Calib holds the machine calibration constants from Section 3 of the
// paper.
type Calib struct {
	// BetaNsPerByte is the effective per-byte network transfer time
	// (6.48 ns/byte on BG/L); it defines the duration of one time unit.
	BetaNsPerByte float64

	// AlphaAR is the per-destination startup cost of the packet-based AR
	// runtime, in time units (450 processor cycles ~= 0.64 us ~= 99 units).
	AlphaAR int64

	// AlphaMsg is the per-message startup cost of the message-passing
	// runtime used by the virtual-mesh scheme (1170 cycles ~= 1.7 us ~= 258
	// units).
	AlphaMsg int64

	// AlphaMPI is the per-destination startup cost of the production MPI
	// all-to-all, in time units (protocol and object alloc overheads).
	AlphaMPI int64

	// GammaMilliPerByte is the intermediate-node memory copy cost in
	// milli-units per byte (1.6 ns/byte ~= 247 milli-units/byte).
	GammaMilliPerByte int64

	// HeaderBytes is the software header carried in the first packet of
	// every message (48 bytes).
	HeaderBytes int

	// ProtoBytes is the per-block protocol header of the combining
	// (virtual mesh) scheme (8 bytes).
	ProtoBytes int

	// CPUCyclesPerNs converts processor cycles to nanoseconds (700 MHz).
	CPUCyclesPerNs float64
}

// DefaultCalib returns the constants measured in the paper.
func DefaultCalib() Calib {
	return Calib{
		BetaNsPerByte:     6.48,
		AlphaAR:           99,
		AlphaMsg:          258,
		AlphaMPI:          441,
		GammaMilliPerByte: 247,
		HeaderBytes:       48,
		ProtoBytes:        8,
		CPUCyclesPerNs:    0.7,
	}
}

// Seconds converts time units to seconds.
func (c Calib) Seconds(units float64) float64 {
	return units * c.BetaNsPerByte * 1e-9
}

// Units converts seconds to time units.
func (c Calib) Units(seconds float64) float64 {
	return seconds / (c.BetaNsPerByte * 1e-9)
}

// ContentionFactor returns the paper's contention parameter C = M/8 for the
// shape's longest dimension (Equation 2's derivation). For mesh dimensions
// the effective factor doubles; this returns the exact cut-based value
// normalised per node: PeakTimePerByte / P.
func ContentionFactor(s torus.Shape) float64 {
	return s.PeakTimePerByte() / float64(s.P())
}

// PeakTime returns the Equation 2 peak all-to-all time in units for
// per-pair payload m: T = P * C * m (C = M/8 on a torus).
func PeakTime(s torus.Shape, m int) float64 {
	return s.PeakTime(m)
}

// DirectTime returns Equation 3, the predicted direct (AR) all-to-all time
// in units: T ~= P*alpha + P*C*(m+h).
func DirectTime(c Calib, s torus.Shape, m int) float64 {
	p := float64(s.P())
	return p*float64(c.AlphaAR) + float64(s.P())*ContentionFactor(s)*float64(m+c.HeaderBytes)
}

// VMeshTime returns Equation 4, the predicted 2D virtual-mesh combining
// all-to-all time in units:
//
//	T ~= (Pvx+Pvy)*alpha + 2*P*(m+proto)*(C + gamma)
func VMeshTime(c Calib, s torus.Shape, pvx, pvy, m int) float64 {
	p := float64(s.P())
	gamma := float64(c.GammaMilliPerByte) / 1000
	return float64(pvx+pvy)*float64(c.AlphaMsg) +
		2*p*float64(m+c.ProtoBytes)*(ContentionFactor(s)+gamma)
}

// PointToPoint returns Equation 1, the time in units to send one
// point-to-point message of m bytes over hops network hops with contention
// factor cFactor (1 for an unloaded network).
func PointToPoint(c Calib, m int, hops int, cFactor float64) float64 {
	l := float64(hops) * 15 // per-hop router latency, units
	return float64(c.AlphaAR) + cFactor*float64(m+c.HeaderBytes) + l
}

// CrossoverBytes returns the message size at which the virtual-mesh scheme
// and the direct scheme are predicted to cost the same network time,
// ignoring startup terms: comparing Eq 3 and Eq 4 beta terms gives
// m = h - 2*proto (about 32 bytes with the default calibration).
func CrossoverBytes(c Calib) int {
	return c.HeaderBytes - 2*c.ProtoBytes
}

// PerNodeBandwidth converts an all-to-all completion time in units to
// per-node payload throughput in MB/s: each node moves (P-1)*m payload
// bytes.
func PerNodeBandwidth(c Calib, s torus.Shape, m int, units float64) float64 {
	if units <= 0 {
		return 0
	}
	bytesPerUnit := float64(s.P()-1) * float64(m) / units
	return bytesPerUnit / c.BetaNsPerByte * 1e3 // bytes/ns -> MB/s
}

// PeakPerNodeBandwidth returns the bisection-limited per-node throughput in
// MB/s (the "peak" series of Figure 3).
func PeakPerNodeBandwidth(c Calib, s torus.Shape) float64 {
	return s.BisectionBandwidthPerNode() / c.BetaNsPerByte * 1e3
}
