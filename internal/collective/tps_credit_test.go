package collective

import (
	"testing"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

func TestTPSCreditDeliversEverything(t *testing.T) {
	shape := torus.New(8, 4, 2)
	// Each source sends 8 single-packet messages through each foreign
	// intermediate (the 4x2 plane), so a batch of 4 yields two credits per
	// (intermediate, source) pair.
	res, err := RunTPS(Options{
		Shape: shape, MsgBytes: 200, Seed: 5,
		TPSCreditWindow: 8, TPSCreditBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*200 {
		t.Errorf("payload = %d, want %d", res.PayloadBytes, p*(p-1)*200)
	}
	if res.CreditPackets == 0 {
		t.Error("no credit packets were sent")
	}
}

func TestTPSCreditBoundsIntermediateMemory(t *testing.T) {
	shape := torus.New(16, 4, 2)
	m := 480
	free, err := RunTPS(Options{Shape: shape, MsgBytes: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	window := 12
	fc, err := RunTPS(Options{
		Shape: shape, MsgBytes: m, Seed: 1,
		TPSCreditWindow: window, TPSCreditBatch: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The backlog bound: each intermediate can hold at most window
	// un-credited packets per source on its line (15 other sources), plus
	// credit packets themselves queued for injection.
	bound := window*(shape.Size[0]-1) + shape.P()
	if fc.MaxIntermediateBacklog > bound {
		t.Errorf("flow-controlled backlog %d exceeds bound %d", fc.MaxIntermediateBacklog, bound)
	}
	if fc.MaxIntermediateBacklog > free.MaxIntermediateBacklog && free.MaxIntermediateBacklog > 2*window {
		t.Errorf("flow control did not reduce backlog: %d (fc) vs %d (free)",
			fc.MaxIntermediateBacklog, free.MaxIntermediateBacklog)
	}
	// The paper's overhead estimate: credits add ~1 small packet per batch
	// of large ones; the run must not slow down catastrophically.
	if fc.Time > free.Time*3/2 {
		t.Errorf("flow control slowed TPS by more than 50%%: %d vs %d", fc.Time, free.Time)
	}
}

func TestTPSCreditOverheadSmall(t *testing.T) {
	shape := torus.New(8, 4, 2)
	res, err := RunTPS(Options{
		Shape: shape, MsgBytes: 480, Seed: 2,
		TPSCreditWindow: 20, TPSCreditBatch: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Credit wire bytes as a fraction of total wire bytes: ~64B per 10
	// 256-byte-ish packets of one phase => low single digits percent.
	creditBytes := res.CreditPackets * int64(network.MinPacketBytes)
	frac := float64(creditBytytesOr1(creditBytes)) / float64(res.WireBytes)
	if frac > 0.05 {
		t.Errorf("credit overhead %.3f of wire bytes, want < 5%%", frac)
	}
}

func creditBytytesOr1(b int64) int64 {
	if b == 0 {
		return 1
	}
	return b
}

func TestTPSCreditValidation(t *testing.T) {
	shape := torus.New(8, 4, 2)
	_, err := RunTPS(Options{
		Shape: shape, MsgBytes: 64, TPSCreditWindow: 5, TPSCreditBatch: 10,
	})
	if err == nil {
		t.Error("window smaller than batch accepted (credits could never return)")
	}
}

func TestTPSCreditSourceCoversAllDestinations(t *testing.T) {
	shape := torus.New(4, 2, 2)
	msg := NewMsg(100, 48)
	src := newTPSCreditSource(shape, 5, torus.X, msg, 0, pacer{}, 1000, 7)
	seen := map[int32]int{}
	for {
		spec, st, _ := src.Next(0)
		if st == network.SrcDone {
			break
		}
		if st != network.SrcReady {
			t.Fatalf("unexpected status %v (all credits available)", st)
		}
		key := spec.Dst
		if spec.Kind == kindTPS1 {
			key = spec.Aux
		}
		seen[key]++
	}
	if len(seen) != shape.P()-1 {
		t.Fatalf("covered %d finals, want %d", len(seen), shape.P()-1)
	}
	for f, c := range seen {
		if c != msg.NPkts {
			t.Errorf("final %d got %d packets, want %d", f, c, msg.NPkts)
		}
		if f == 5 {
			t.Error("self appeared as a final destination")
		}
	}
}

func TestTPSCreditSourceParksWithoutCredits(t *testing.T) {
	shape := torus.New(4, 2, 2)
	msg := NewMsg(100, 48)
	src := newTPSCreditSource(shape, 0, torus.X, msg, 0, pacer{}, 1, 7)
	// Window 1: each foreign intermediate admits one packet, then parks.
	// Self-plane packets (3 finals) flow freely.
	emitted := 0
	for {
		_, st, _ := src.Next(0)
		if st != network.SrcReady {
			break
		}
		emitted++
	}
	// 3 foreign intermediates x 1 packet + self plane 3 finals x NPkts.
	want := 3 + 3*msg.NPkts
	if emitted != want {
		t.Errorf("emitted %d before parking, want %d", emitted, want)
	}
	// Refill one intermediate: exactly one more packet flows.
	src.addCredit(1, 1)
	if _, st, _ := src.Next(0); st != network.SrcReady {
		t.Error("credited intermediate still parked")
	}
}
