package collective

import (
	"testing"

	"alltoall/internal/torus"
)

func TestXYZTarget(t *testing.T) {
	shape := torus.New(4, 4, 4)
	cur := torus.Coord{0, 0, 0}
	// Differs in all three dims: first hop fixes X.
	target, stage := xyzTarget(shape, cur, torus.Coord{2, 3, 1})
	if target != (torus.Coord{2, 0, 0}) || stage != kindXYZ1 {
		t.Errorf("stage1 = %v/%d", target, stage)
	}
	// X already matches: next fixes Y.
	target, stage = xyzTarget(shape, torus.Coord{2, 0, 0}, torus.Coord{2, 3, 1})
	if target != (torus.Coord{2, 3, 0}) || stage != kindXYZ2 {
		t.Errorf("stage2 = %v/%d", target, stage)
	}
	// Only Z differs.
	target, stage = xyzTarget(shape, torus.Coord{2, 3, 0}, torus.Coord{2, 3, 1})
	if target != (torus.Coord{2, 3, 1}) || stage != kindXYZ3 {
		t.Errorf("stage3 = %v/%d", target, stage)
	}
	// Arrived.
	if _, stage = xyzTarget(shape, torus.Coord{2, 3, 1}, torus.Coord{2, 3, 1}); stage != 0 {
		t.Errorf("arrived stage = %d", stage)
	}
}

func TestRunXYZDeliversEverything(t *testing.T) {
	shape := torus.New(4, 4, 2)
	res, err := RunXYZ(Options{Shape: shape, MsgBytes: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*200 {
		t.Errorf("payload = %d, want %d", res.PayloadBytes, p*(p-1)*200)
	}
	if res.Strategy != StratXYZ {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

// The paper's Section 4.1 claim: TPS gains over the three-phase scheme from
// having only one forwarding phase. The extra software hop must show up as
// higher CPU load for XYZ on a genuinely 3D exchange.
func TestShapeXYZPaysMoreCPUThanTPS(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 4, 4)
	xyz, err := RunXYZ(Options{Shape: shape, MsgBytes: 480, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tps, err := RunTPS(Options{Shape: shape, MsgBytes: 480, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// CPU work: XYZ pays recv+inject at two intermediates, TPS at one.
	xyzWork := xyz.MeanCPUUtil * float64(xyz.Time)
	tpsWork := tps.MeanCPUUtil * float64(tps.Time)
	if xyzWork <= tpsWork {
		t.Errorf("XYZ CPU work %.0f should exceed TPS %.0f (two forwarding phases vs one)",
			xyzWork, tpsWork)
	}
}

func TestXYZOnLine(t *testing.T) {
	// Degenerate 1D case: no forwarding at all, equivalent to direct.
	shape := torus.New(8, 1, 1)
	res, err := RunXYZ(Options{Shape: shape, MsgBytes: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*100 {
		t.Errorf("payload = %d", res.PayloadBytes)
	}
	if res.MaxIntermediateBacklog != 0 {
		t.Errorf("1D exchange forwarded %d packets; expected none", res.MaxIntermediateBacklog)
	}
}
