package collective

import "alltoall/internal/torus"

// pacer is a token-bucket injection governor. The paper's runtime injects
// packets round-robin across destinations with per-destination startup
// costs; on real flit-level hardware, offered load beyond the bisection
// limit degrades gracefully. A packet-atomic simulator instead collapses
// into a buffer-jam regime under sustained overload, so every strategy
// paces its injection at the partition's bisection rate (Equation 2), with
// a configurable burst window. The Throttle strategy (Section 3.2) is the
// strict (zero-burst) variant.
type pacer struct {
	rateMilli  int64 // milli-units of time per injected byte (0 = unpaced)
	burstUnits int64 // bucket depth in time units
	v          int64 // virtual clock: time at which current debt clears
}

// newPacer builds a pacer at frac times the bisection rate of the shape:
// each node may sustain frac bytes per PeakTimePerByte/P units.
// burstPackets full-size packets may be injected ahead of the steady rate.
// frac slightly below 1 keeps the bottleneck links at the knee of their
// throughput curve instead of deep in the jam regime.
func newPacer(shape torus.Shape, burstPackets int, frac float64) pacer {
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	p := shape.P()
	rate := shape.PeakTimePerByte() / float64(p) / frac // units per byte
	rm := int64(rate * 1000)
	if rm < 1 {
		rm = 1
	}
	return pacer{
		rateMilli:  rm,
		burstUnits: int64(burstPackets) * 256 * rm / 1000,
	}
}

// gate reports whether an injection is admissible now; if not, it returns
// the time to retry.
func (p *pacer) gate(now int64) (retry int64, ok bool) {
	if p.rateMilli == 0 {
		return 0, true
	}
	if p.v-now > p.burstUnits {
		return p.v - p.burstUnits, false
	}
	return 0, true
}

// charge accounts an injected packet of the given size.
func (p *pacer) charge(now int64, bytes int32) {
	if p.rateMilli == 0 {
		return
	}
	if p.v < now {
		p.v = now
	}
	p.v += int64(bytes) * p.rateMilli / 1000
}
