package collective

import (
	"testing"

	"alltoall/internal/model"
	"alltoall/internal/torus"
)

// These tests pin the paper's qualitative results at miniature scale. They
// are behavioural regression tests for the whole stack (simulator +
// strategies): if a routing or flow-control change breaks one of the
// paper's phenomena, one of these fails.

func runOK(t *testing.T, strat Strategy, shape torus.Shape, m int) Result {
	t.Helper()
	res, err := Run(strat, Options{Shape: shape, MsgBytes: m, Seed: 1})
	if err != nil {
		t.Fatalf("%s on %v: %v", strat, shape, err)
	}
	return res
}

// Symmetric tori reach a high fraction of the Equation 2 peak under the
// direct adaptive strategy (paper Table 1: 97-99%; simulator: high 80s).
func TestShapeSymmetricARNearPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, sh := range []torus.Shape{
		torus.New(8, 1, 1),
		torus.New(8, 8, 1),
	} {
		res := runOK(t, StratAR, sh, 1920)
		if res.PercentPeak < 80 {
			t.Errorf("AR on symmetric %v = %.1f%% of peak, want >= 80%%", sh, res.PercentPeak)
		}
	}
}

// The asymmetric torus degrades the direct strategy relative to the
// symmetric one (paper Table 2).
func TestShapeAsymmetricDegradesAR(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sym := runOK(t, StratAR, torus.New(8, 8, 1), 1920)
	asym := runOK(t, StratAR, torus.New(16, 4, 1), 960)
	if asym.PercentPeak >= sym.PercentPeak-3 {
		t.Errorf("asymmetric AR %.1f%% should sit clearly below symmetric %.1f%%",
			asym.PercentPeak, sym.PercentPeak)
	}
}

// DR depends on the orientation of the long dimension: dimension-ordered
// routing starts packets on X, so a 2n x n x n partition beats n x n x 2n
// (paper Section 3.2: "16x8x8 is better than 8x8x16 under DR").
func TestShapeDROrientationDependence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	xLong := runOK(t, StratDR, torus.New(16, 4, 4), 480)
	zLong := runOK(t, StratDR, torus.New(4, 4, 16), 480)
	if xLong.PercentPeak <= zLong.PercentPeak {
		t.Errorf("DR with X longest (%.1f%%) should beat DR with Z longest (%.1f%%)",
			xLong.PercentPeak, zLong.PercentPeak)
	}
}

// The Two Phase Schedule beats the direct strategy on an elongated torus
// (the paper's headline result, Tables 2 vs 3). The effect needs the run to
// be long enough for AR's bottleneck-dimension jam to develop, so this is
// the slowest test in the suite (~90s).
func TestShapeTPSBeatsAROnAsymmetric(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 8, 16)
	tps := runOK(t, StratTPS, shape, 480)
	ar := runOK(t, StratAR, shape, 480)
	if tps.PercentPeak <= ar.PercentPeak {
		t.Errorf("TPS %.1f%% should beat AR %.1f%% on %v",
			tps.PercentPeak, ar.PercentPeak, shape)
	}
}

// On a small symmetric partition the CPU cannot keep the forwarding and the
// direct traffic going at once, so TPS loses to the direct strategy (paper:
// 77% vs 99% on the 512-node midplane).
func TestShapeTPSLosesOnSymmetric(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 8, 1)
	tps := runOK(t, StratTPS, shape, 960)
	ar := runOK(t, StratAR, shape, 960)
	if tps.PercentPeak >= ar.PercentPeak {
		t.Errorf("TPS %.1f%% should lose to AR %.1f%% on the symmetric %v",
			tps.PercentPeak, ar.PercentPeak, shape)
	}
}

// Strict throttling lands near the burst-paced AR (paper Figure 4: within
// a few percent).
func TestShapeThrottleNearAR(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 4, 1)
	th := runOK(t, StratThrottle, shape, 960)
	ar := runOK(t, StratAR, shape, 960)
	diff := th.PercentPeak - ar.PercentPeak
	if diff < -15 || diff > 15 {
		t.Errorf("Throttle %.1f%% and AR %.1f%% should be within ~15 points",
			th.PercentPeak, ar.PercentPeak)
	}
}

// Unpaced injection collapses into the congestion-jam regime (the ablation
// that motivates always-on pacing).
func TestShapeUnpacedCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 8, 1)
	paced := runOK(t, StratAR, shape, 1920)
	unpaced, err := RunAR(Options{Shape: shape, MsgBytes: 1920, Seed: 1, Unpaced: true})
	if err != nil {
		t.Fatalf("unpaced: %v", err)
	}
	if unpaced.PercentPeak >= paced.PercentPeak {
		t.Errorf("unpaced %.1f%% should fall below paced %.1f%%",
			unpaced.PercentPeak, paced.PercentPeak)
	}
}

// The 1-byte latency comparison (paper Table 4): TPS pays the forwarding
// hop on a small partition, so it is slower than AR there.
func TestShapeLatencySignSmallPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 8, 1)
	tps := runOK(t, StratTPS, shape, 1)
	ar := runOK(t, StratAR, shape, 1)
	if tps.Time <= ar.Time {
		t.Errorf("1-byte TPS (%d) should be slower than AR (%d) on a small partition",
			tps.Time, ar.Time)
	}
}

// The analytic model (Equation 3) must track the simulator within a broad
// band across message sizes - the Figure 1 claim as a regression test.
func TestShapeModelTracksMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 8, 1)
	calib := model.DefaultCalib()
	for _, m := range []int{64, 512, 1920} {
		res := runOK(t, StratAR, shape, m)
		pred := model.DirectTime(calib, shape, m)
		ratio := float64(res.Time) / pred
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("m=%d: measured/predicted = %.2f, want within [0.5, 2.0]", m, ratio)
		}
	}
}

// Throughput must rise monotonically toward the peak as messages grow
// (startup amortization), the shape of Figures 1 and 2.
func TestShapeThroughputMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 8, 1)
	prev := -1.0
	for _, m := range []int{8, 64, 512, 1920} {
		res := runOK(t, StratAR, shape, m)
		if res.PercentPeak <= prev {
			t.Errorf("m=%d: %%peak %.1f did not improve on %.1f", m, res.PercentPeak, prev)
		}
		prev = res.PercentPeak
	}
}
