package collective

import (
	"testing"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

func TestSelectTPSLinearDim(t *testing.T) {
	cases := []struct {
		shape torus.Shape
		want  torus.Dim
	}{
		// Paper Table 3 choices (8x8x8 is degenerate: any dimension works;
		// the paper picked Z, this implementation picks X - documented).
		{torus.New(16, 8, 8), torus.X},
		{torus.New(8, 16, 8), torus.Y},
		{torus.New(8, 8, 16), torus.Z},
		{torus.New(16, 16, 8), torus.Z},
		{torus.New(16, 8, 16), torus.Y},
		{torus.New(8, 16, 16), torus.X},
		{torus.New(8, 32, 16), torus.Y},
		{torus.New(16, 16, 16), torus.X},
		{torus.New(16, 32, 16), torus.Y},
		{torus.New(32, 16, 16), torus.X},
		{torus.New(32, 32, 16), torus.Z},
		{torus.New(40, 32, 16), torus.X},
	}
	for _, c := range cases {
		if got := SelectTPSLinearDim(c.shape); got != c.want {
			t.Errorf("%v: linear dim = %v, want %v", c.shape, got, c.want)
		}
	}
}

func TestSelectTPSLinearDimSkipsUnitDims(t *testing.T) {
	// On a plane the unit dimension must never be chosen.
	if got := SelectTPSLinearDim(torus.New(8, 16, 1)); got == torus.Z {
		t.Errorf("unit dimension chosen as linear")
	}
}

func TestRunTPSDeliversEverything(t *testing.T) {
	shape := torus.New(8, 4, 2)
	res, err := RunTPS(Options{Shape: shape, MsgBytes: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*200 {
		t.Errorf("payload = %d, want %d", res.PayloadBytes, p*(p-1)*200)
	}
	if res.TPSLinearDim != torus.X {
		t.Errorf("linear dim = %v, want X (planar 4x2... longest)", res.TPSLinearDim)
	}
}

func TestRunTPSForcedLinearDim(t *testing.T) {
	shape := torus.New(8, 4, 2)
	d := torus.Y
	res, err := RunTPS(Options{Shape: shape, MsgBytes: 64, Seed: 5, TPSLinear: &d})
	if err != nil {
		t.Fatal(err)
	}
	if res.TPSLinearDim != torus.Y {
		t.Errorf("forced linear dim not honoured: %v", res.TPSLinearDim)
	}
	bad := torus.Dim(9)
	if _, err := RunTPS(Options{Shape: shape, MsgBytes: 64, TPSLinear: &bad}); err == nil {
		t.Error("invalid forced dimension accepted")
	}
}

// TestTPSPhase1PacketsStayOnLinearDim verifies the core TPS invariant: a
// phase-1 packet's route touches only the linear dimension, a phase-2
// packet's route only the planar dimensions.
func TestTPSPhase1PacketsStayOnLinearDim(t *testing.T) {
	shape := torus.New(8, 4, 2)
	src := &tpsSource{
		shape:  shape,
		self:   shape.Coords(13),
		linear: torus.X,
		order:  torus.NewDestOrder(shape.P(), 13, 9),
		msg:    NewMsg(100, 48),
		burst:  1,
		passes: 1,
	}
	self := shape.Coords(13)
	n := 0
	for {
		spec, st, _ := src.Next(0)
		if st == network.SrcDone {
			break
		}
		n++
		dc := shape.Coords(int(spec.Dst))
		switch spec.Kind {
		case kindTPS1:
			if dc[torus.Y] != self[torus.Y] || dc[torus.Z] != self[torus.Z] {
				t.Fatalf("phase-1 packet to %v leaves the X line of %v", dc, self)
			}
			if spec.Class%2 != 0 {
				t.Fatalf("phase-1 packet on odd (phase-2) injection class %d", spec.Class)
			}
			fc := shape.Coords(int(spec.Aux))
			if fc[torus.X] != dc[torus.X] {
				t.Fatalf("intermediate %v does not share linear coord with final %v", dc, fc)
			}
		case kindTPS2:
			if dc[torus.X] != self[torus.X] {
				t.Fatalf("direct phase-2 packet to %v leaves the YZ plane of %v", dc, self)
			}
			if spec.Class%2 != 1 {
				t.Fatalf("phase-2 packet on even (phase-1) injection class %d", spec.Class)
			}
		default:
			t.Fatalf("unexpected kind %d", spec.Kind)
		}
	}
	if n != shape.P()-1 {
		t.Fatalf("emitted %d packets, want %d", n, shape.P()-1)
	}
}

func TestTPSHandlerForwarding(t *testing.T) {
	h := &tpsHandler{recvPayload: make([]int64, 4), forwarded: make([]int64, 4)}
	// Phase-1 packet at its intermediate: forwarded, not final.
	fw, _, final := h.OnDeliver(network.Delivered{Node: 1, Src: 0, Aux: 3, Size: 128, Payload: 80, Kind: kindTPS1}, nil)
	if final || len(fw) != 1 {
		t.Fatalf("expected one forward, got final=%v fw=%d", final, len(fw))
	}
	if fw[0].Dst != 3 || fw[0].Kind != kindTPS2 || fw[0].Payload != 80 {
		t.Errorf("bad forward spec %+v", fw[0])
	}
	if h.forwarded[1] != 1 {
		t.Errorf("forward not counted")
	}
	// Phase-1 packet whose intermediate IS the destination: final.
	_, _, final = h.OnDeliver(network.Delivered{Node: 2, Src: 0, Aux: 2, Size: 128, Payload: 80, Kind: kindTPS1}, nil)
	if !final || h.recvPayload[2] != 80 {
		t.Errorf("self-intermediate delivery not final")
	}
	// Phase-2 packet: final.
	_, _, final = h.OnDeliver(network.Delivered{Node: 3, Src: 0, Aux: 3, Size: 128, Payload: 80, Kind: kindTPS2}, nil)
	if !final || h.recvPayload[3] != 80 {
		t.Errorf("phase-2 delivery not final")
	}
}

func TestTPSOnPlane(t *testing.T) {
	// TPS degenerates gracefully on a 2D partition.
	shape := torus.New(8, 4, 1)
	res, err := RunTPS(Options{Shape: shape, MsgBytes: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*100 {
		t.Errorf("payload = %d", res.PayloadBytes)
	}
}
