package collective

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"alltoall/internal/model"
	"alltoall/internal/network"
	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

// fullRequest exercises every canonical field at a non-default value.
func fullRequest() Request {
	return Request{
		Strategy:        StratTPS,
		Shape:           torus.New(8, 4, 2),
		MsgBytes:        240,
		Seed:            7,
		Burst:           3,
		PaceBurst:       5,
		PaceFraction:    0.5,
		Unpaced:         false,
		Shards:          2,
		Check:           true,
		EventQueue:      network.EventQueueHeap,
		Coalesce:        network.CoalesceOff,
		Sync:            network.SyncBSP,
		Faults:          "0:5:+x:kill",
		MaxTime:         5_000_000,
		TPSLinear:       1,
		TPSCreditWindow: 32,
		TPSCreditBatch:  4,
		ObserveWindow:   512,
		Observe:         true,
	}
}

func TestRequestRoundTripOptions(t *testing.T) {
	req := fullRequest()
	if err := req.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	o, err := req.options()
	if err != nil {
		t.Fatalf("options: %v", err)
	}
	back, err := NewRequest(req.Strategy, o)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	// Observe/ObserveWindow are not representable in Options (the Observer
	// there is machinery), so the round trip drops them by design.
	back.Observe = req.Observe
	back.ObserveWindow = req.ObserveWindow
	if back != req {
		t.Errorf("options round trip drifted:\n got %+v\nwant %+v", back, req)
	}
}

func TestRequestJSONRoundTrip(t *testing.T) {
	req := fullRequest()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	if back != req {
		t.Errorf("JSON round trip drifted:\n got %+v\nwant %+v\nwire %s", back, req, data)
	}
}

func TestRequestJSONNormalizesCase(t *testing.T) {
	var req Request
	wire := `{"strategy":"tps","shape":"8x4x2","msg_bytes":64,"tps_linear":"Y","event_queue":"HEAP"}`
	if err := json.Unmarshal([]byte(wire), &req); err != nil {
		t.Fatal(err)
	}
	if req.Strategy != StratTPS {
		t.Errorf("strategy = %q, want TPS", req.Strategy)
	}
	if req.TPSLinear != 2 {
		t.Errorf("TPSLinear = %d, want 2 (Y)", req.TPSLinear)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("normalized request fails validation: %v", err)
	}
}

// TestRequestKeyInjective flips every canonical field in turn and demands a
// distinct key: a collision here would let the serving layer's cache return
// the wrong simulation.
func TestRequestKeyInjective(t *testing.T) {
	base := fullRequest()
	muts := map[string]func(*Request){
		"Strategy":        func(r *Request) { r.Strategy = StratAR },
		"Shape":           func(r *Request) { r.Shape = torus.New(4, 8, 2) },
		"MsgBytes":        func(r *Request) { r.MsgBytes++ },
		"Seed":            func(r *Request) { r.Seed++ },
		"Burst":           func(r *Request) { r.Burst++ },
		"PaceBurst":       func(r *Request) { r.PaceBurst++ },
		"PaceFraction":    func(r *Request) { r.PaceFraction = 0.25 },
		"Unpaced":         func(r *Request) { r.Unpaced = true },
		"Shards":          func(r *Request) { r.Shards++ },
		"Check":           func(r *Request) { r.Check = false },
		"EventQueue":      func(r *Request) { r.EventQueue = network.EventQueueCalendar },
		"Coalesce":        func(r *Request) { r.Coalesce = network.CoalesceOn },
		"Faults":          func(r *Request) { r.Faults = "0:5:+y:kill" },
		"MaxTime":         func(r *Request) { r.MaxTime++ },
		"TPSLinear":       func(r *Request) { r.TPSLinear = 2 },
		"TPSCreditWindow": func(r *Request) { r.TPSCreditWindow++ },
		"TPSCreditBatch":  func(r *Request) { r.TPSCreditBatch++ },
		"VMeshRows":       func(r *Request) { r.VMeshRows = 4 },
		"VMeshCols":       func(r *Request) { r.VMeshCols = 4 },
		"VMeshMapOrder":   func(r *Request) { r.VMeshMapOrder = "xzy" },
		"Observe":         func(r *Request) { r.Observe = false },
		"ObserveWindow":   func(r *Request) { r.ObserveWindow++ },
	}
	seen := map[string]string{base.Key(): "base"}
	for name, mut := range muts {
		r := base
		mut(&r)
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %s and %s: %s", name, prev, k)
		}
		seen[k] = name
	}
}

// TestRequestKeyDistinguishesUnitDims guards the Shape.Canon fix: String()
// collapses unit dimensions ([8,8,1] and [8,1,8] both render "8x8"), so a
// key built on String() would alias genuinely different partitions.
func TestRequestKeyDistinguishesUnitDims(t *testing.T) {
	a := Request{Strategy: StratAR, Shape: torus.New(8, 8, 1), MsgBytes: 64}
	b := Request{Strategy: StratAR, Shape: torus.New(8, 1, 8), MsgBytes: 64}
	if a.Key() == b.Key() {
		t.Fatalf("shapes %v and %v share key %s", a.Shape, b.Shape, a.Key())
	}
}

func TestNewRequestRejectsMachinery(t *testing.T) {
	good := Options{Shape: torus.New(4, 4, 2), MsgBytes: 64}
	cases := map[string]func(*Options){
		"Params":    func(o *Options) { o.Par = network.DefaultParams() },
		"Calib":     func(o *Options) { o.Calib = model.DefaultCalib() },
		"Observer":  func(o *Options) { o.Observer = observe.New(observe.Config{}) },
		"Cache":     func(o *Options) { o.Cache = &NetCache{} },
		"DebugDump": func(o *Options) { o.DebugDump = "/tmp/dump" },
	}
	if _, err := NewRequest(StratAR, good); err != nil {
		t.Fatalf("plain options should canonicalize: %v", err)
	}
	for name, mut := range cases {
		o := good
		mut(&o)
		_, err := NewRequest(StratAR, o)
		if !errors.Is(err, ErrNotCanonical) {
			t.Errorf("%s: err = %v, want ErrNotCanonical", name, err)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("good request: %v", err)
	}
	bad := map[string]Request{
		"strategy":  {Strategy: "bogus", Shape: torus.New(4, 4, 2), MsgBytes: 64},
		"lowercase": {Strategy: "ar", Shape: torus.New(4, 4, 2), MsgBytes: 64},
		"msg":       {Strategy: StratAR, Shape: torus.New(4, 4, 2)},
		"shards":    {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, Shards: -1},
		"pace":      {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, PaceFraction: 1.5},
		"queue":     {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, EventQueue: "ring"},
		"coalesce":  {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, Coalesce: "maybe"},
		"faults":    {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, Faults: "nope"},
		"maporder":  {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, VMeshMapOrder: "xxy"},
		"tpslinear": {Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, TPSLinear: 4},
	}
	for name, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, r)
		}
	}
	shapeless := Request{Strategy: StratAR, MsgBytes: 64}
	if err := shapeless.Validate(); !errors.Is(err, torus.ErrBadShape) {
		t.Errorf("shapeless Validate = %v, want ErrBadShape", err)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, in := range []string{"TPS", "tps", "Tps"} {
		s, err := ParseStrategy(in)
		if err != nil || s != StratTPS {
			t.Errorf("ParseStrategy(%q) = %q, %v; want TPS", in, s, err)
		}
	}
	if _, err := ParseStrategy("warp"); err == nil {
		t.Error("ParseStrategy accepted unknown name")
	}
}

// TestRunRequestMatchesRun pins the front-door contract: a Request run
// produces the identical Result as the legacy struct-options path for the
// same configuration.
func TestRunRequestMatchesRun(t *testing.T) {
	opts := Options{Shape: torus.New(4, 4, 2), MsgBytes: 64, Seed: 3, Check: true}
	req, err := NewRequest(StratAR, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(StratAR, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaReq, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, viaReq) {
		t.Errorf("RunRequest diverged from Run:\n direct %+v\n viaReq %+v", direct, viaReq)
	}
}

// TestRunRequestObserve checks the observe auto-attach: Observe=true yields
// Result.Observed without the caller wiring a collector.
func TestRunRequestObserve(t *testing.T) {
	req := Request{Strategy: StratAR, Shape: torus.New(4, 4, 2), MsgBytes: 64, Observe: true}
	res, err := RunRequest(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Observed == nil {
		t.Fatal("Observe=true produced no Result.Observed")
	}
	if res.Observed.BytesByDim[0] == 0 {
		t.Error("observed summary carries no X-dimension bytes")
	}
}

func TestRequestKeyVersionPrefix(t *testing.T) {
	if k := fullRequest().Key(); !strings.HasPrefix(k, "aa2|") {
		t.Errorf("key %q lacks the aa2| version prefix", k)
	}
}
