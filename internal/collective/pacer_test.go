package collective

import (
	"testing"

	"alltoall/internal/torus"
)

func TestPacerRate(t *testing.T) {
	// 8x8x8: peak per byte = 512, per node rate = 1 unit/byte.
	p := newPacer(torus.New(8, 8, 8), 0, 1)
	if p.rateMilli != 1000 {
		t.Errorf("rateMilli = %d, want 1000", p.rateMilli)
	}
	// Strict pacing: second packet must wait one packet-time.
	if _, ok := p.gate(0); !ok {
		t.Fatal("first injection gated")
	}
	p.charge(0, 256)
	retry, ok := p.gate(0)
	if ok {
		t.Fatal("second injection not gated under strict pacing")
	}
	if retry != 256 {
		t.Errorf("retry = %d, want 256", retry)
	}
	if _, ok := p.gate(256); !ok {
		t.Error("injection still gated at its release time")
	}
}

func TestPacerBurst(t *testing.T) {
	p := newPacer(torus.New(8, 8, 8), 2, 1) // burst of 2 full packets = 512 units
	for i := 0; i < 3; i++ {
		if _, ok := p.gate(0); !ok {
			t.Fatalf("packet %d gated within burst window", i)
		}
		p.charge(0, 256)
	}
	if _, ok := p.gate(0); ok {
		t.Error("burst window not exhausted after 3 packets")
	}
}

func TestPacerUnpaced(t *testing.T) {
	var p pacer
	for i := 0; i < 100; i++ {
		if _, ok := p.gate(int64(i)); !ok {
			t.Fatal("zero pacer gated")
		}
		p.charge(int64(i), 256)
	}
}

func TestPacerIdleCreditDoesNotAccumulate(t *testing.T) {
	p := newPacer(torus.New(8, 8, 8), 1, 1)
	// Long idle, then a burst: only burst-window credit is available.
	p.charge(10000, 256)
	p.charge(10000, 256)
	if _, ok := p.gate(10000); ok {
		t.Error("idle time accumulated more than the burst window")
	}
}

func TestPacerSlowerOnLongerDimension(t *testing.T) {
	a := newPacer(torus.New(8, 8, 8), 0, 1)
	b := newPacer(torus.New(8, 8, 16), 0, 1)
	if b.rateMilli <= a.rateMilli {
		t.Errorf("16-long torus rate %d should exceed (be slower than) %d", b.rateMilli, a.rateMilli)
	}
}
