package collective

import (
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// TestShardedResultsMatchSerial runs every strategy - including TPS with
// credit flow control - on the serial and on the sharded engine and demands
// identical Result structs: the collective layer's handlers and sources
// must be safely partitioned by node, and the engine must be deterministic.
func TestShardedResultsMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	base := Options{Shape: torus.New(4, 4, 2), MsgBytes: 512, Seed: 3}
	credit := base
	credit.TPSCreditWindow = 20
	credit.TPSCreditBatch = 5
	type cse struct {
		name  string
		strat Strategy
		opts  Options
	}
	cases := make([]cse, 0, len(Strategies())+1)
	for _, s := range Strategies() {
		cases = append(cases, cse{string(s), s, base})
	}
	cases = append(cases, cse{"TPS+credit", StratTPS, credit})
	for _, c := range cases {
		ref, err := Run(c.strat, c.opts)
		if err != nil {
			t.Fatalf("%s serial: %v", c.name, err)
		}
		for _, shards := range []int{2, 7} {
			opts := c.opts
			opts.Shards = shards
			got, err := Run(c.strat, opts)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", c.name, shards, err)
			}
			// QueuedEvents may drift by a few counts across shard counts in
			// coalesced mode (network.Stats.QueuedEvents); every other field
			// must match exactly.
			if d := got.QueuedEvents - ref.QueuedEvents; d < -64 || d > 64 {
				t.Errorf("%s shards=%d: QueuedEvents drifted by %d", c.name, shards, d)
			}
			got.QueuedEvents = ref.QueuedEvents
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s shards=%d: result differs from serial\nserial:  %+v\nsharded: %+v",
					c.name, shards, ref, got)
			}
		}
	}
}
