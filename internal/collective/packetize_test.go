package collective

import (
	"testing"
	"testing/quick"

	"alltoall/internal/network"
)

func TestNewMsgBasics(t *testing.T) {
	cases := []struct {
		m, header int
		wire      int64
		npkts     int
	}{
		{1, 48, 64, 1},    // 49 -> 64 (granule + min)
		{8, 48, 64, 1},    // 56 -> 64
		{16, 48, 64, 1},   // exactly 64
		{32, 48, 96, 1},   // 80 -> 96
		{208, 48, 256, 1}, // exactly one full packet
		{209, 48, 320, 2}, // 257 -> 288 -> pad last (32) to 64 => 320
		{240, 48, 320, 2}, // 288: 256 + 32 -> pad to 64 => 320
		{4096, 48, 4160, 17},
		{8, 8, 64, 1}, // vmesh-style small header
	}
	for _, c := range cases {
		g := NewMsg(c.m, c.header)
		if g.Wire != c.wire || g.NPkts != c.npkts {
			t.Errorf("NewMsg(%d,%d) = wire %d npkts %d, want %d/%d",
				c.m, c.header, g.Wire, g.NPkts, c.wire, c.npkts)
		}
	}
}

func TestMsgPacketSizesSumToWire(t *testing.T) {
	f := func(mRaw uint16) bool {
		m := int(mRaw%9000) + 1
		g := NewMsg(m, 48)
		var sum int64
		for j := 0; j < g.NPkts; j++ {
			s := g.PktSize(j)
			if s < network.MinPacketBytes || s > network.MaxPacketBytes || s%network.PacketGranule != 0 {
				return false
			}
			sum += int64(s)
		}
		return sum == g.Wire && g.Wire >= int64(m+48)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMsgPayloadSumsToM(t *testing.T) {
	f := func(mRaw uint16, hRaw uint8) bool {
		m := int(mRaw%9000) + 1
		h := int(hRaw % 64)
		g := NewMsg(m, h)
		var sum int64
		for j := 0; j < g.NPkts; j++ {
			p := g.PktPayload(j)
			if p < 0 || p > g.PktSize(j) {
				return false
			}
			sum += int64(p)
		}
		return sum == int64(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMsgFirstPacketHeaderReducesPayload(t *testing.T) {
	g := NewMsg(4096, 48)
	if g.PktPayload(0) != 256-48 {
		t.Errorf("first packet payload = %d, want 208", g.PktPayload(0))
	}
	if g.PktPayload(1) != 256 {
		t.Errorf("second packet payload = %d, want 256", g.PktPayload(1))
	}
	// 208 + 15*256 = 4048; last payload = 48 within a 64-byte packet.
	if g.PktPayload(16) != 48 {
		t.Errorf("last packet payload = %d, want 48", g.PktPayload(16))
	}
}

func TestMsgWireOverheadSmallForLarge(t *testing.T) {
	g := NewMsg(65536, 48)
	overhead := float64(g.Wire-int64(g.Payload)) / float64(g.Payload)
	if overhead > 0.01 {
		t.Errorf("wire overhead for 64K message = %.3f, want < 1%%", overhead)
	}
}

func TestPktIndexPanics(t *testing.T) {
	g := NewMsg(100, 48)
	for _, f := range []func(){
		func() { g.PktSize(-1) },
		func() { g.PktSize(g.NPkts) },
		func() { g.PktPayload(-1) },
		func() { g.PktPayload(g.NPkts) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range packet index did not panic")
				}
			}()
			f()
		}()
	}
}
