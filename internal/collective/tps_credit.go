package collective

import (
	"fmt"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// Credit-based flow control for the Two Phase Schedule (the paper's
// Section 5, "Summary and Future Work"):
//
//	"extra memory has to be put aside for the intermediate node
//	 forwarding. [...] To do so in a manner that guarantees that the
//	 intermediate memory is not overrun requires some sort of flow
//	 control. This can be solved [...] by a credit-based flow control
//	 algorithm in which the intermediate nodes send back short 'credit'
//	 packets to the sources after forwarding along some number of (large)
//	 packets. [...] if one 32 byte credit packet is sent for every ten
//	 256 byte all-to-all packets, the bandwidth overhead is only about 1%."
//
// Each source holds a per-intermediate window of TPSCreditWindow packets.
// An intermediate returns one credit packet (the runtime's 64-byte minimum;
// the paper's 32-byte packets are below its floor) per TPSCreditBatch
// phase-1 packets it forwards for that source. Credits travel back along
// the linear dimension (source and intermediate share planar coordinates).
// With the window exhausted toward one intermediate, the source parks that
// intermediate and rotates to the next, so flow control costs ordering
// flexibility rather than stalls.

// tpsCreditSource iterates intermediates round-robin, gated by per-
// intermediate credit windows.
type tpsCreditSource struct {
	shape   torus.Shape
	self    torus.Coord
	selfLin int
	linear  torus.Dim
	msg     Msg
	alpha   int64
	pace    pacer

	// Per linear coordinate (intermediate): a pseudorandom order over the
	// finals in that intermediate's plane, a cursor, and the credit count.
	planeSize int
	order     []torus.Perm
	destIdx   []int
	pktIdx    []int
	credits   []int
	cursor    int
	remaining int // total packets left to emit
}

func newTPSCreditSource(shape torus.Shape, self int, linear torus.Dim, msg Msg,
	alpha int64, pace pacer, window int, seed uint64) *tpsCreditSource {
	k := shape.Size[linear]
	p := shape.P()
	s := &tpsCreditSource{
		shape:     shape,
		self:      shape.Coords(self),
		selfLin:   shape.Coords(self)[linear],
		linear:    linear,
		msg:       msg,
		alpha:     alpha,
		pace:      pace,
		planeSize: p / k,
		order:     make([]torus.Perm, k),
		destIdx:   make([]int, k),
		pktIdx:    make([]int, k),
		credits:   make([]int, k),
		remaining: (p - 1) * msg.NPkts,
	}
	for lin := 0; lin < k; lin++ {
		s.order[lin] = torus.NewPerm(s.planeSize, splitmixSeed(seed, self, lin))
		s.credits[lin] = window
	}
	return s
}

func splitmixSeed(seed uint64, self, lin int) uint64 {
	x := seed ^ (uint64(self) << 20) ^ uint64(lin)
	x ^= x >> 30
	x *= 0x9E3779B97F4A7C15
	return x
}

// finalAt returns the rank of the i-th final destination (in this source's
// order) whose linear coordinate is lin.
func (s *tpsCreditSource) finalAt(lin, i int) int {
	j := s.order[lin].At(i)
	// Enumerate the plane: all coords with coordinate lin in the linear
	// dimension, indexed by the two planar dims.
	o1, o2 := otherDims(s.linear)
	var c torus.Coord
	c[s.linear] = lin
	c[o1] = j % s.shape.Size[o1]
	c[o2] = j / s.shape.Size[o1]
	return s.shape.Rank(c)
}

// addCredit is called (via the handler) when a credit packet from
// intermediate lin arrives.
func (s *tpsCreditSource) addCredit(lin, n int) {
	s.credits[lin] += n
}

func (s *tpsCreditSource) Next(now int64) (network.PacketSpec, network.SrcStatus, int64) {
	if s.remaining == 0 {
		return network.PacketSpec{}, network.SrcDone, 0
	}
	if retry, ok := s.pace.gate(now); !ok {
		return network.PacketSpec{}, network.SrcWait, retry
	}
	k := len(s.order)
	selfRank := s.shape.Rank(s.self)
	for scanned := 0; scanned < k; scanned++ {
		lin := (s.cursor + scanned) % k
		// Skip exhausted intermediates and, when out of credits, parked
		// ones (the self plane needs no credits: its packets go straight
		// to phase 2).
		if s.destIdx[lin] >= s.planeSize {
			continue
		}
		if lin != s.selfLin && s.credits[lin] <= 0 {
			continue
		}
		// In the self plane, skip over self in the permutation order (only
		// possible between messages, when pktIdx is 0).
		final := s.finalAt(lin, s.destIdx[lin])
		if lin == s.selfLin && final == selfRank {
			s.destIdx[lin]++
			if s.destIdx[lin] >= s.planeSize {
				continue
			}
			final = s.finalAt(lin, s.destIdx[lin])
		}
		j := s.pktIdx[lin]
		spec := network.PacketSpec{
			Size:    s.msg.PktSize(j),
			Payload: s.msg.PktPayload(j),
		}
		if j == 0 {
			spec.ExtraCPU = s.alpha
		}
		if lin == s.selfLin {
			spec.Dst = int32(final)
			spec.Class = tpsPhase2Class(int32(final))
			spec.Kind = kindTPS2
		} else {
			inter := s.self
			inter[s.linear] = lin
			spec.Dst = int32(s.shape.Rank(inter))
			spec.Aux = int32(final)
			spec.Class = tpsPhase1Class(spec.Dst)
			spec.Kind = kindTPS1
			s.credits[lin]--
		}
		s.pktIdx[lin]++
		if s.pktIdx[lin] == s.msg.NPkts {
			s.pktIdx[lin] = 0
			s.destIdx[lin]++
		}
		s.remaining--
		s.cursor = (lin + 1) % k
		s.pace.charge(now, spec.Size)
		return spec, network.SrcReady, 0
	}
	// Everything unfinished is parked awaiting credits. The wakeup is the
	// credit packet's own reception on this node's CPU, which re-polls the
	// source; the timed retry below is only a (generous) safety net.
	return network.PacketSpec{}, network.SrcWait, now + 4*MaxWirePacket
}

// MaxWirePacket is the retry quantum for parked credit sources.
const MaxWirePacket = network.MaxPacketBytes

// tpsCreditHandler adds credit generation and consumption to the TPS
// forwarding handler.
type tpsCreditHandler struct {
	tpsHandler
	shape    torus.Shape
	linear   torus.Dim
	batch    int
	sources  []*tpsCreditSource
	pending  []map[int32]int // per node: forwarded-but-uncredited count per source
	credits  []int64         // credit packets sent per node (summed into Result)
	creditSz int32
}

func (h *tpsCreditHandler) OnDeliver(d network.Delivered, fw []network.PacketSpec) ([]network.PacketSpec, int64, bool) {
	switch d.Kind {
	case kindTPSCredit:
		// Credit arrives back at the source: top up the window for the
		// intermediate identified by its linear coordinate (Aux).
		h.sources[d.Node].addCredit(int(d.Aux), h.batch)
		return fw, 0, false
	case kindTPS1:
		if d.Aux == d.Node {
			h.recvPayload[d.Node] += int64(d.Payload)
			return fw, 0, true
		}
		h.forwarded[d.Node]++
		fw = append(fw, network.PacketSpec{
			Dst:     d.Aux,
			Size:    d.Size,
			Payload: d.Payload,
			Class:   tpsPhase2Class(d.Aux),
			Kind:    kindTPS2,
		})
		// Count toward this source's credit batch.
		m := h.pending[d.Node]
		if m == nil {
			m = make(map[int32]int)
			h.pending[d.Node] = m
		}
		m[d.Src]++
		if m[d.Src] >= h.batch {
			m[d.Src] = 0
			h.credits[d.Node]++
			fw = append(fw, network.PacketSpec{
				Dst:  d.Src,
				Size: h.creditSz,
				Aux:  int32(h.shape.Coords(int(d.Node))[h.linear]),
				// Credits ride the phase-1 (linear) injection classes: the
				// return path is pure linear dimension.
				Class: tpsPhase1Class(d.Src),
				Kind:  kindTPSCredit,
			})
		}
		return fw, 0, false
	default: // kindTPS2
		h.recvPayload[d.Node] += int64(d.Payload)
		return fw, 0, true
	}
}

// runTPSCredit is the flow-controlled variant of RunTPS, used when
// Options.TPSCreditWindow > 0.
func runTPSCredit(opts Options, linear torus.Dim) (Result, error) {
	shape := opts.Shape
	p := shape.P()
	msg := NewMsg(opts.MsgBytes, opts.Calib.HeaderBytes)
	window := opts.TPSCreditWindow
	batch := opts.TPSCreditBatch
	if batch == 0 {
		batch = 10 // the paper's one-credit-per-ten-packets suggestion
	}
	if window < batch {
		return Result{}, fmt.Errorf("collective: TPSCreditWindow %d must be >= TPSCreditBatch %d (credits could never return)",
			window, batch)
	}
	srcs := make([]*tpsCreditSource, p)
	sources := make([]network.Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = newTPSCreditSource(shape, n, linear, msg,
			opts.Calib.AlphaAR, opts.pacer(false), window, opts.Seed)
		sources[n] = srcs[n]
	}
	h := &tpsCreditHandler{
		tpsHandler: tpsHandler{recvPayload: make([]int64, p), forwarded: make([]int64, p)},
		shape:      shape,
		linear:     linear,
		batch:      batch,
		sources:    srcs,
		pending:    make([]map[int32]int, p),
		credits:    make([]int64, p),
		creditSz:   network.MinPacketBytes,
	}
	nw, err := opts.network(sources, h)
	if err != nil {
		return Result{}, err
	}
	t, err := opts.runNet(nw)
	if err != nil {
		opts.dumpOnError(nw, err)
		return Result{}, fmt.Errorf("TPS+credit on %v: %w", shape, err)
	}
	want := int64(p-1) * int64(opts.MsgBytes)
	for n := 0; n < p; n++ {
		if h.recvPayload[n] != want {
			return Result{}, fmt.Errorf("TPS+credit on %v: node %d received %d payload bytes, want %d",
				shape, n, h.recvPayload[n], want)
		}
	}
	r := opts.newResult(StratTPS)
	r.TPSLinearDim = linear
	opts.finishResult(&r, t, nw.Stats())
	for _, c := range h.credits {
		r.CreditPackets += c
	}
	r.MaxIntermediateBacklog = nw.Stats().MaxPendingFw
	return r, nil
}
