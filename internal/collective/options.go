package collective

import (
	"context"
	"fmt"
	"os"

	"alltoall/internal/model"
	"alltoall/internal/network"
	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

// Strategy names the all-to-all algorithms from the paper.
type Strategy string

const (
	StratAR       Strategy = "AR"       // direct, adaptive routing (Section 3)
	StratDR       Strategy = "DR"       // direct, deterministic routing (Section 3.2)
	StratThrottle Strategy = "Throttle" // AR paced to the bisection rate (Section 3.2)
	StratMPI      Strategy = "MPI"      // production MPI-style baseline
	StratTPS      Strategy = "TPS"      // Two Phase Schedule (Section 4.1)
	StratVMesh    Strategy = "VMesh"    // 2D virtual-mesh combining (Section 4.2)
	StratXYZ      Strategy = "XYZ"      // 3-phase dimension-ordered indirect (Section 4.1's comparator)
)

// Options configures an all-to-all run.
type Options struct {
	Shape    torus.Shape
	MsgBytes int    // per-pair payload m, >= 1
	Seed     uint64 // randomization seed for destination orders

	// Burst is the number of packets injected per destination visit in the
	// direct strategies (the paper's tuning parameter; usually 1 or 2).
	Burst int

	// PaceBurst is the injection token-bucket depth in packets (default 8).
	// Every strategy paces injection at the partition's bisection rate; the
	// Throttle strategy uses a zero-depth (strict) bucket. See pacer.go for
	// why pacing is always on in this substrate.
	PaceBurst int

	// PaceFraction scales the injection rate relative to the bisection
	// limit (default 0.95). Slightly under 1 keeps bottleneck links at the
	// knee of their throughput curve.
	PaceFraction float64

	// Unpaced disables injection pacing entirely (ablation only; expect
	// congestion collapse on saturating workloads).
	Unpaced bool

	Par   network.Params // zero value: network.DefaultParams()
	Calib model.Calib    // zero value: model.DefaultCalib()

	// EventQueue selects the simulator's pending-event structure
	// (equivalent to setting Par.EventQueue, but composes with a defaulted
	// Par): "" or network.EventQueueCalendar for the bounded-horizon
	// calendar queue, network.EventQueueHeap for the reference binary
	// heap. Results are byte-identical either way; the heap is an escape
	// hatch and ablation baseline.
	EventQueue string

	// Coalesce selects same-tick credit/arrival coalescing (equivalent to
	// setting Par.Coalesce, but composes with a defaulted Par): "" or
	// network.CoalesceOn for the coalescing engine (the default),
	// network.CoalesceOff for the one-event-per-credit reference engine.
	// Results are byte-identical either way; off is the escape hatch and
	// the differential-testing baseline.
	Coalesce string

	// Sync selects the sharded engine's synchronization protocol (equivalent
	// to setting Par.Sync, but composes with a defaulted Par): "" or
	// network.SyncAsync for the asynchronous conservative engine (the
	// default), network.SyncBSP for the lockstep barrier escape hatch.
	// Results are byte-identical either way; ignored when Shards <= 1.
	Sync string

	// Check enables the simulator's runtime invariant checker (equivalent
	// to setting Par.Check): every event is validated against the machine's
	// conservation laws and a completed run must reach full quiescence. A
	// violation fails the run with a node/time-stamped diagnostic. Costs
	// roughly 1.4x simulation time; meant for tests and CI, not sweeps.
	Check bool

	// Faults installs a deterministic link-fault schedule (equivalent to
	// setting Par.Faults, but composes with a defaulted Par): links go down,
	// come back, die permanently, or degrade at scheduled times, and packets
	// reroute via the adaptive paths and the escape bubble channel. Results
	// stay byte-identical at any shard count and with either event queue or
	// coalescing mode. Multi-phase strategies (TPS, VMesh, XYZ) restart the
	// clock each phase, so the schedule re-applies from t=0 per phase. nil
	// (or an empty schedule) faults nothing and is byte-identical to a run
	// without this option.
	Faults *network.FaultSchedule

	// TPSLinear forces the Two Phase Schedule's linear (phase 1) dimension;
	// nil selects it with the paper's rule (symmetric planar dims if
	// possible, else the longest dimension).
	TPSLinear *torus.Dim

	// TPSCreditWindow, when positive, enables the paper's Section 5
	// credit-based flow control for TPS: each source may have at most this
	// many un-credited phase-1 packets outstanding at each intermediate,
	// bounding intermediate forwarding memory. Must be >= TPSCreditBatch.
	TPSCreditWindow int

	// TPSCreditBatch is the number of forwarded packets per returned
	// credit packet (default 10, the paper's ~1% bandwidth overhead).
	TPSCreditBatch int

	// VMeshRows/Cols force the virtual mesh factorization P = Cols x Rows
	// (Pvx = Cols row width, Pvy = Rows column height); 0 selects the most
	// balanced factorization.
	VMeshRows, VMeshCols int

	// VMeshMapOrder chooses which torus dimension consecutive virtual ranks
	// sweep first (default X, Y, Z: rows fill X-lines, then XY planes). The
	// paper's 4096-node experiment maps 128-wide rows onto XZ planes, i.e.
	// order X, Z, Y.
	VMeshMapOrder *[3]torus.Dim

	// MaxTime aborts runs that exceed this many time units (0 = generous
	// default based on the peak time).
	MaxTime int64

	// Shards > 1 runs the simulation on the window-parallel sharded engine
	// with that many workers (see network.RunSharded); results are
	// byte-identical to the serial engine. 0 or 1 selects the serial
	// engine. Use run-level parallelism (experiments.Config.Workers) when
	// there are enough runs to fill the cores; shards help when a single
	// large run is the bottleneck.
	Shards int

	// Cache, when non-nil, lets Run recycle the simulation network across
	// runs that share a shape and machine parameters (message-size sweeps):
	// the network is Reset instead of rebuilt, reusing its router, queue,
	// packet-pool, and event-heap allocations. A cache must not be shared
	// between concurrent runs; give each worker goroutine its own.
	Cache *NetCache

	// DebugDump, when non-empty, names a file to which the full network
	// state is written if a run stalls or exceeds MaxTime (diagnostics).
	DebugDump string

	// DetRouting forces deterministic dimension-ordered routing for runs
	// whose workload does not already fix the routing mode. Only pattern
	// runs (traffic.RunOpts / alltoall.RunPatternContext) consult it; the
	// collective strategies choose routing per strategy (DR is the
	// deterministic one) and ignore this field.
	DetRouting bool

	// Observer, when non-nil, taps the simulation for instrumentation
	// (typically an *observe.Collector). Multi-phase strategies report each
	// phase as one observed run to the same observer. When the observer is
	// an observe.Collector, Result.Observed carries its summary.
	Observer network.Observer

	// SyncStats, when non-nil, receives the synchronization-layer counters
	// of the run (horizon advances, blocked waits, cross-shard traffic;
	// multi-phase strategies accumulate across phases). Machinery like
	// Observer, not workload configuration: the counters are scheduling-
	// and wall-clock-dependent, which is why they are an out-parameter
	// rather than Result fields - Result stays a pure function of the
	// request, byte-identical across engines and replays.
	SyncStats *network.SyncStats

	// cancel, when non-nil, aborts the run when closed; set from a
	// context's Done channel by RunContext. The serial engine polls it
	// between events, the sharded engine at window barriers (bsp) or
	// horizon advances (async).
	cancel <-chan struct{}
}

func (o *Options) fill() error {
	if err := o.Shape.Validate(); err != nil {
		return err
	}
	if o.MsgBytes < 1 {
		return fmt.Errorf("collective: MsgBytes must be >= 1, got %d", o.MsgBytes)
	}
	if o.Burst == 0 {
		o.Burst = 2
	}
	if o.Burst < 0 {
		return fmt.Errorf("collective: negative Burst")
	}
	if o.PaceBurst == 0 {
		o.PaceBurst = 2
	}
	if o.PaceBurst < 0 {
		return fmt.Errorf("collective: negative PaceBurst")
	}
	if o.PaceFraction == 0 {
		o.PaceFraction = 0.95
	}
	if o.PaceFraction < 0 || o.PaceFraction > 1 {
		return fmt.Errorf("collective: PaceFraction %v out of (0,1]", o.PaceFraction)
	}
	o.Par = o.NetParams()
	if o.Calib == (model.Calib{}) {
		o.Calib = model.DefaultCalib()
	}
	if o.MaxTime == 0 {
		peak := o.Shape.PeakTime(o.MsgBytes)
		o.MaxTime = int64(peak*100) + int64(o.Shape.P())*(o.Calib.AlphaMsg+o.Calib.AlphaMPI)*64 + 1<<24
	}
	return nil
}

// NetParams returns the effective machine parameters for this run: Par
// defaulted to network.DefaultParams, with the Check / EventQueue /
// Coalesce / Faults conveniences folded in. fill applies exactly this;
// pattern runs (internal/traffic) share it so the engine knobs mean the
// same thing under every entry point.
func (o *Options) NetParams() network.Params {
	p := o.Par
	if p == (network.Params{}) {
		p = network.DefaultParams()
	}
	if o.Check {
		p.Check = true
	}
	if o.EventQueue != "" {
		p.EventQueue = o.EventQueue
	}
	if o.Coalesce != "" {
		p.Coalesce = o.Coalesce
	}
	if o.Sync != "" {
		p.Sync = o.Sync
	}
	if o.Faults != nil {
		p.Faults = o.Faults
	}
	return p
}

// dumpOnError writes the network state to o.DebugDump when a run failed.
func (o *Options) dumpOnError(nw *network.Network, err error) {
	if err == nil || o.DebugDump == "" {
		return
	}
	f, ferr := os.Create(o.DebugDump)
	if ferr != nil {
		return
	}
	defer f.Close()
	nw.DumpState(f)
}

// NetCache is a one-slot cache of a simulation network. Sweeps that revisit
// one (shape, params) configuration at many message sizes pass the same
// cache through Options so each point reuses the previous network's
// allocations via Network.Reset. The zero value is ready to use.
type NetCache struct {
	nw *network.Network
}

// network returns a simulator for this run, recycling the cached instance
// when its shape and parameters match and allocating (and caching) a fresh
// one otherwise.
func (o *Options) network(sources []network.Source, h network.Handler) (*network.Network, error) {
	if c := o.Cache; c != nil && c.nw != nil && c.nw.Shape == o.Shape {
		if c.nw.Par == o.Par {
			if err := c.nw.Reset(sources, h); err != nil {
				return nil, err
			}
			return o.instrument(c.nw), nil
		}
		if c.nw.Par.SameStructure(o.Par) {
			// Same buffer geometry, different runtime knobs (delays, CPU
			// rate, event queue, coalescing, checking): ResetParams
			// re-derives the engines' cached state instead of rebuilding
			// the machine. Sweeps over CreditDelay or Coalesce recycle
			// just like same-params sweeps over message size.
			if err := c.nw.ResetParams(o.Par, sources, h); err != nil {
				return nil, err
			}
			return o.instrument(c.nw), nil
		}
	}
	nw, err := network.New(o.Shape, o.Par, sources, h)
	if err != nil {
		return nil, err
	}
	if o.Cache != nil {
		o.Cache.nw = nw
	}
	return o.instrument(nw), nil
}

// instrument installs this run's observer and cancellation channel on a
// network returned by o.network. Set explicitly every run (including to
// nil) so cached networks never leak a previous run's observer.
func (o *Options) instrument(nw *network.Network) *network.Network {
	nw.SetObserver(o.Observer)
	nw.SetCancel(o.cancel)
	return nw
}

// runNet drives one simulation with this run's engine selection: the
// sharded engine when Shards > 1, the serial engine otherwise. Sync-layer
// counters accumulate into o.SyncStats when requested (per phase for
// multi-phase strategies, which call runNet once per phase).
func (o *Options) runNet(nw *network.Network) (int64, error) {
	t, err := nw.RunSharded(o.MaxTime, o.Shards)
	if err == nil && o.SyncStats != nil {
		ss := nw.SyncStats()
		o.SyncStats.Add(&ss)
	}
	return t, err
}

// pacer builds the injection governor for this run; strict drops the burst
// window (the Throttle strategy).
func (o *Options) pacer(strict bool) pacer {
	if o.Unpaced {
		return pacer{}
	}
	burst := o.PaceBurst
	if strict {
		burst = 0
	}
	return newPacer(o.Shape, burst, o.PaceFraction)
}

// Result reports one all-to-all run.
type Result struct {
	Strategy Strategy
	Shape    torus.Shape
	MsgBytes int

	Time        int64   // completion time, units
	Seconds     float64 // completion time, seconds (calibrated)
	PeakTime    float64 // Equation 2 peak time, units
	PercentPeak float64 // 100 * PeakTime / Time

	PerNodeMBs float64 // achieved per-node payload throughput, MB/s

	PacketsInjected int64
	WireBytes       int64
	PayloadBytes    int64 // total application payload delivered
	Events          int64 // logical simulator events processed (perf accounting)
	// QueuedEvents counts events actually popped from the pending-event
	// queue: with coalescing (the default) many logical credits/arrivals
	// share one queued marker, so QueuedEvents < Events, and
	// QueuedEvents/PacketsInjected is the event-volume figure the bench
	// regression gate tracks. In coalesced mode the count can differ by a
	// few across shard counts and sync protocols
	// (network.Stats.QueuedEvents) while every other field stays
	// byte-identical.
	QueuedEvents int64

	MeanLatencyUnits float64 // mean final-packet injection-to-delivery latency
	MaxLinkUtil      float64
	MeanLinkUtil     float64
	MeanCPUUtil      float64
	MaxCPUUtil       float64
	LastInjectUnits  int64 // time of the last injection; Time minus this is the drain tail

	// Fault-injection outcomes (zero without Options.Faults). DeadLinkTicks
	// sums link-downtime over the run (k links dead for d units contribute
	// k*d); Reroutes counts packets redirected the long way around a ring
	// after their minimal directions died. Both are engine-invariant: byte-
	// identical across shard counts, event queues, and coalescing modes.
	DeadLinkTicks int64
	Reroutes      int64

	// TPSLinearDim is the phase-1 dimension chosen by the Two Phase
	// Schedule (valid when Strategy == StratTPS).
	TPSLinearDim torus.Dim
	// CreditPackets counts flow-control credit packets sent (TPS with
	// TPSCreditWindow only).
	CreditPackets int64
	// MaxIntermediateBacklog is the largest forwarding backlog (packets
	// awaiting CPU re-injection) at any intermediate node.
	MaxIntermediateBacklog int
	// VMesh factorization used (valid when Strategy == StratVMesh).
	VMeshRows, VMeshCols int
	// PhaseTimes records per-phase completion for multi-phase strategies.
	PhaseTimes []int64

	// Observed is the observability summary for the run, present when
	// Options.Observer is an *observe.Collector (see alltoall.WithObserver).
	// Multi-phase strategies fold all phases into one summary.
	Observed *observe.Summary
}

// EventsPerPacket returns the queued-event volume per injected packet, the
// hardware-independent cost metric the coalescing work optimizes.
func (r Result) EventsPerPacket() float64 {
	if r.PacketsInjected == 0 {
		return 0
	}
	return float64(r.QueuedEvents) / float64(r.PacketsInjected)
}

func (o *Options) newResult(strat Strategy) Result {
	return Result{
		Strategy: strat,
		Shape:    o.Shape,
		MsgBytes: o.MsgBytes,
		PeakTime: o.Shape.PeakTime(o.MsgBytes),
	}
}

func (o *Options) finishResult(r *Result, t int64, st *network.Stats) {
	r.Time = t
	r.Seconds = o.Calib.Seconds(float64(t))
	if t > 0 {
		r.PercentPeak = r.PeakTime / float64(t) * 100
	}
	r.PerNodeMBs = model.PerNodeBandwidth(o.Calib, o.Shape, o.MsgBytes, float64(t))
	if st != nil {
		r.Events += st.Events()
		r.QueuedEvents += st.QueuedEvents
		r.PacketsInjected += st.PacketsInjected
		r.WireBytes += st.WireBytesInjected
		r.PayloadBytes += st.FinalPayload
		r.MeanLatencyUnits = st.MeanLatency()
		r.LastInjectUnits = st.LastInject
		r.DeadLinkTicks += st.DeadLinkTicks
		r.Reroutes += st.Reroutes
		r.MaxLinkUtil = st.MaxLinkUtilization(t)
		r.MeanLinkUtil = st.MeanLinkUtilization(t, o.Shape.LinkCount())
		if t > 0 {
			var sum, max int64
			for _, c := range st.CPUBusy {
				sum += c
				if c > max {
					max = c
				}
			}
			r.MeanCPUUtil = float64(sum) / float64(t) / float64(len(st.CPUBusy))
			r.MaxCPUUtil = float64(max) / float64(t)
		}
	}
	if c, ok := o.Observer.(*observe.Collector); ok && c != nil {
		if st != nil {
			c.NoteForcedCreditReturns(st.ForcedCreditReturns)
		}
		r.Observed = c.Summary()
	}
}

// RunContext executes one all-to-all under a context: cancellation aborts
// the simulation (the serial engine polls between events, the sharded
// engine at its window barriers) and the run fails with an error wrapping
// network.ErrCanceled.
func RunContext(ctx context.Context, strat Strategy, opts Options) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		opts.cancel = ctx.Done()
	}
	return Run(strat, opts)
}

// Run dispatches to the strategy implementation.
func Run(strat Strategy, opts Options) (Result, error) {
	switch strat {
	case StratAR:
		return RunAR(opts)
	case StratDR:
		return RunDR(opts)
	case StratThrottle:
		return RunThrottled(opts)
	case StratMPI:
		return RunMPI(opts)
	case StratTPS:
		return RunTPS(opts)
	case StratVMesh:
		return RunVMesh(opts)
	case StratXYZ:
		return RunXYZ(opts)
	}
	return Result{}, fmt.Errorf("collective: unknown strategy %q", strat)
}

// Strategies lists all implemented strategies.
func Strategies() []Strategy {
	return []Strategy{StratAR, StratDR, StratThrottle, StratMPI, StratTPS, StratVMesh, StratXYZ}
}
