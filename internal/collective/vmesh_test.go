package collective

import (
	"testing"
	"testing/quick"

	"alltoall/internal/torus"
)

func TestBalancedFactor(t *testing.T) {
	cases := []struct{ p, a, b int }{
		{512, 32, 16},
		{4096, 64, 64},
		{64, 8, 8},
		{128, 16, 8},
		{32, 8, 4},
		{7, 7, 1},
	}
	for _, c := range cases {
		a, b := BalancedFactor(c.p)
		if a != c.a || b != c.b {
			t.Errorf("BalancedFactor(%d) = %dx%d, want %dx%d", c.p, a, b, c.a, c.b)
		}
	}
}

func TestBalancedFactorProperty(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw%2000) + 1
		a, b := BalancedFactor(p)
		return a*b == p && a >= b && b >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVMeshMapBijective(t *testing.T) {
	shape := torus.New(4, 2, 8)
	vm := newVMeshMap(shape, [3]torus.Dim{torus.X, torus.Y, torus.Z})
	seen := make([]bool, shape.P())
	for vr := 0; vr < shape.P(); vr++ {
		phys := vm.physOf[vr]
		if seen[phys] {
			t.Fatalf("duplicate physical rank %d", phys)
		}
		seen[phys] = true
		if vm.virtOf[phys] != int32(vr) {
			t.Fatalf("virtOf(physOf(%d)) = %d", vr, vm.virtOf[phys])
		}
	}
}

func TestVMeshMapRowsAreHalfPlanes(t *testing.T) {
	// On an 8x8x8 torus with a 32-wide row, virtual rank r's row occupies
	// half an XY plane (the paper's 512-node mapping).
	shape := torus.New(8, 8, 8)
	vm := newVMeshMap(shape, [3]torus.Dim{torus.X, torus.Y, torus.Z})
	for i := 0; i < 32; i++ {
		c := shape.Coords(int(vm.physOf[i]))
		if c[torus.Z] != 0 || c[torus.Y] > 3 {
			t.Fatalf("row member %d at %v not in the lower half XY plane", i, c)
		}
	}
}

func TestRunVMeshDeliversEverything(t *testing.T) {
	shape := torus.New(4, 4, 2)
	res, err := RunVMesh(Options{Shape: shape, MsgBytes: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*16 {
		t.Errorf("payload = %d", res.PayloadBytes)
	}
	if res.VMeshCols*res.VMeshRows != int(p) {
		t.Errorf("factorization %dx%d", res.VMeshCols, res.VMeshRows)
	}
	if len(res.PhaseTimes) != 2 || res.PhaseTimes[0] <= 0 || res.PhaseTimes[1] <= 0 {
		t.Errorf("phase times %v", res.PhaseTimes)
	}
	if res.Time != res.PhaseTimes[0]+res.PhaseTimes[1] {
		t.Errorf("total %d != sum of phases %v", res.Time, res.PhaseTimes)
	}
}

func TestRunVMeshForcedFactorization(t *testing.T) {
	shape := torus.New(4, 4, 2)
	res, err := RunVMesh(Options{Shape: shape, MsgBytes: 8, Seed: 3, VMeshCols: 8, VMeshRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.VMeshCols != 8 || res.VMeshRows != 4 {
		t.Errorf("factorization %dx%d, want 8x4", res.VMeshCols, res.VMeshRows)
	}
	if _, err := RunVMesh(Options{Shape: shape, MsgBytes: 8, VMeshCols: 5, VMeshRows: 5}); err == nil {
		t.Error("non-covering factorization accepted")
	}
}

func TestVMeshBeatsARForTinyMessages(t *testing.T) {
	// The headline short-message result, at miniature scale: on a plane
	// with 1-byte messages, combining must beat the direct scheme.
	shape := torus.New(8, 8, 1)
	vm, err := RunVMesh(Options{Shape: shape, MsgBytes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RunAR(Options{Shape: shape, MsgBytes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Time >= ar.Time {
		t.Errorf("VMesh %d should beat AR %d at m=1", vm.Time, ar.Time)
	}
}

func TestVMeshLosesForLargeMessages(t *testing.T) {
	shape := torus.New(8, 4, 1)
	vm, err := RunVMesh(Options{Shape: shape, MsgBytes: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RunAR(Options{Shape: shape, MsgBytes: 2048, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Time <= ar.Time {
		t.Errorf("VMesh %d should lose to AR %d at m=2048 (double injection)", vm.Time, ar.Time)
	}
}

func TestVMeshMapOrderOption(t *testing.T) {
	shape := torus.New(4, 4, 2)
	order := [3]torus.Dim{torus.X, torus.Z, torus.Y}
	res, err := RunVMesh(Options{Shape: shape, MsgBytes: 16, Seed: 3, VMeshMapOrder: &order})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*16 {
		t.Errorf("payload = %d", res.PayloadBytes)
	}
	bad := [3]torus.Dim{torus.X, torus.X, torus.Y}
	if _, err := RunVMesh(Options{Shape: shape, MsgBytes: 16, VMeshMapOrder: &bad}); err == nil {
		t.Error("non-permutation map order accepted")
	}
}

func TestVMeshMapXZOrder(t *testing.T) {
	// With order X,Z,Y on an 8x8x8 torus, a 64-wide row is a full XZ plane.
	shape := torus.New(8, 8, 8)
	vm := newVMeshMap(shape, [3]torus.Dim{torus.X, torus.Z, torus.Y})
	for i := 0; i < 64; i++ {
		c := shape.Coords(int(vm.physOf[i]))
		if c[torus.Y] != 0 {
			t.Fatalf("row member %d at %v leaves the Y=0 XZ plane", i, c)
		}
	}
}
