package collective

import (
	"fmt"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// The three-phase dimension-ordered indirect scheme (XYZ), the comparator
// the paper's Section 4.1 discusses:
//
//	"A similar scheme can also be designed over a 3D torus with two phases
//	 of forwarding, where packets are first routed along X links and then
//	 turned around in software along the Y dimension and then routed in
//	 software along the Z dimension; this approach is similar to the HPCC
//	 Randomaccess strategy described in [5]. We believe the Two Phase
//	 scheme gains from lower overheads as it has only one forwarding
//	 phase."
//
// Every packet is software-routed one dimension at a time: stage 1 along X
// to (xd, ys, zs), stage 2 along Y to (xd, yd, zs), stage 3 along Z to the
// destination. Each stage boundary costs a CPU receive + re-inject, so the
// scheme pays two forwarding phases where TPS pays one - implementing it
// makes the paper's claim measurable (see BenchmarkAblation_XYZvsTPS and
// TestShapeXYZPaysMoreCPUThanTPS).

// xyzTarget returns the node a packet at cur should head to next on its way
// to final under X->Y->Z software routing, along with the stage kind, or
// (cur, 0) if cur already is final.
func xyzTarget(shape torus.Shape, cur torus.Coord, final torus.Coord) (torus.Coord, uint8) {
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		if cur[d] != final[d] {
			next := cur
			next[d] = final[d]
			return next, kindXYZ1 + uint8(d)
		}
	}
	return cur, 0
}

// xyzClass partitions injection FIFO classes by stage so a stage-1 packet
// is never queued behind a stage-3 packet: class = stage mod 3 bucket.
func xyzClass(stage uint8, dst int32) int8 {
	return int8(3*(dst%20) + int32(stage-kindXYZ1))
}

// xyzSource emits each destination's packets addressed to their first-stage
// intermediate.
type xyzSource struct {
	shape torus.Shape
	self  torus.Coord
	order torus.DestOrder
	msg   Msg
	burst int
	alpha int64
	pace  pacer

	idx, pass, inBurst int
	passes             int
}

func (s *xyzSource) Next(now int64) (network.PacketSpec, network.SrcStatus, int64) {
	if retry, ok := s.pace.gate(now); !ok {
		return network.PacketSpec{}, network.SrcWait, retry
	}
	for {
		if s.idx >= s.order.Len() {
			s.idx = 0
			s.pass++
		}
		if s.pass >= s.passes {
			return network.PacketSpec{}, network.SrcDone, 0
		}
		j := s.pass*s.burst + s.inBurst
		if j >= s.msg.NPkts {
			s.inBurst = 0
			s.idx++
			continue
		}
		final := s.order.At(s.idx)
		target, stage := xyzTarget(s.shape, s.self, s.shape.Coords(final))
		spec := network.PacketSpec{
			Dst:     int32(s.shape.Rank(target)),
			Aux:     int32(final),
			Size:    s.msg.PktSize(j),
			Payload: s.msg.PktPayload(j),
			Kind:    stage,
			Class:   xyzClass(stage, int32(s.shape.Rank(target))),
		}
		if j == 0 {
			spec.ExtraCPU = s.alpha
		}
		s.inBurst++
		if s.inBurst == s.burst {
			s.inBurst = 0
			s.idx++
		}
		s.pace.charge(now, spec.Size)
		return spec, network.SrcReady, 0
	}
}

// xyzHandler forwards packets dimension by dimension.
type xyzHandler struct {
	shape       torus.Shape
	recvPayload []int64
	forwards    []int64 // per receiving node, so sharded workers never share a counter
}

func (h *xyzHandler) OnDeliver(d network.Delivered, fw []network.PacketSpec) ([]network.PacketSpec, int64, bool) {
	if d.Aux == d.Node {
		h.recvPayload[d.Node] += int64(d.Payload)
		return fw, 0, true
	}
	target, stage := xyzTarget(h.shape, h.shape.Coords(int(d.Node)), h.shape.Coords(int(d.Aux)))
	h.forwards[d.Node]++
	fw = append(fw, network.PacketSpec{
		Dst:     int32(h.shape.Rank(target)),
		Aux:     d.Aux,
		Size:    d.Size,
		Payload: d.Payload,
		Kind:    stage,
		Class:   xyzClass(stage, int32(h.shape.Rank(target))),
	})
	return fw, 0, false
}

// RunXYZ runs the three-phase dimension-ordered indirect all-to-all.
func RunXYZ(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	shape := opts.Shape
	p := shape.P()
	msg := NewMsg(opts.MsgBytes, opts.Calib.HeaderBytes)
	sources := make([]network.Source, p)
	for n := 0; n < p; n++ {
		sources[n] = &xyzSource{
			shape:  shape,
			self:   shape.Coords(n),
			order:  torus.NewDestOrder(p, n, opts.Seed),
			msg:    msg,
			burst:  opts.Burst,
			alpha:  opts.Calib.AlphaAR,
			pace:   opts.pacer(false),
			passes: (msg.NPkts + opts.Burst - 1) / opts.Burst,
		}
	}
	h := &xyzHandler{shape: shape, recvPayload: make([]int64, p), forwards: make([]int64, p)}
	nw, err := opts.network(sources, h)
	if err != nil {
		return Result{}, err
	}
	t, err := opts.runNet(nw)
	if err != nil {
		opts.dumpOnError(nw, err)
		return Result{}, fmt.Errorf("XYZ on %v: %w", shape, err)
	}
	want := int64(p-1) * int64(opts.MsgBytes)
	for n := 0; n < p; n++ {
		if h.recvPayload[n] != want {
			return Result{}, fmt.Errorf("XYZ on %v: node %d received %d payload bytes, want %d",
				shape, n, h.recvPayload[n], want)
		}
	}
	r := opts.newResult(StratXYZ)
	opts.finishResult(&r, t, nw.Stats())
	r.MaxIntermediateBacklog = nw.Stats().MaxPendingFw
	return r, nil
}
