package collective

import (
	"reflect"
	"testing"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// TestNetCacheDeterminism is the load-bearing property of Network.Reset:
// recycling a network across runs must yield byte-identical Results to
// building a fresh network every time, for every strategy and across
// message sizes. Sweeps and the parallel experiment engine rely on this.
func TestNetCacheDeterminism(t *testing.T) {
	shape := torus.New(4, 4, 2)
	cache := &NetCache{}
	for _, strat := range Strategies() {
		for _, m := range []int{8, 240} {
			fresh, err := Run(strat, Options{Shape: shape, MsgBytes: m, Seed: 5})
			if err != nil {
				t.Fatalf("%s m=%d fresh: %v", strat, m, err)
			}
			cached, err := Run(strat, Options{Shape: shape, MsgBytes: m, Seed: 5, Cache: cache})
			if err != nil {
				t.Fatalf("%s m=%d cached: %v", strat, m, err)
			}
			cached.Shape = fresh.Shape // identical by construction
			if !reflect.DeepEqual(fresh, cached) {
				t.Errorf("%s m=%d: cached run diverged from fresh run\nfresh:  %+v\ncached: %+v",
					strat, m, fresh, cached)
			}
		}
	}
	if cache.nw == nil {
		t.Fatal("cache never populated")
	}
}

// TestNetCacheAfterError ensures a network abandoned mid-run (MaxTime
// exceeded) is still fully recycled by Reset: the ablation grid hits this
// path whenever a collapsed variant precedes a healthy one on a worker.
func TestNetCacheAfterError(t *testing.T) {
	shape := torus.New(4, 4, 2)
	cache := &NetCache{}
	fresh, err := RunAR(Options{Shape: shape, MsgBytes: 240, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAR(Options{Shape: shape, MsgBytes: 240, Seed: 3, Cache: cache, MaxTime: 50}); err == nil {
		t.Fatal("MaxTime=50 run unexpectedly completed")
	}
	cached, err := RunAR(Options{Shape: shape, MsgBytes: 240, Seed: 3, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Errorf("run after aborted cached run diverged:\nfresh:  %+v\ncached: %+v", fresh, cached)
	}
}

// TestNetCacheCrossShape ensures a cache survives shape changes by falling
// back to allocation (and re-caching the new shape).
func TestNetCacheCrossShape(t *testing.T) {
	cache := &NetCache{}
	shapes := []torus.Shape{torus.New(4, 2, 1), torus.New(4, 4, 1), torus.New(4, 2, 1)}
	var want []Result
	for _, s := range shapes {
		r, err := RunAR(Options{Shape: s, MsgBytes: 64, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	for i, s := range shapes {
		r, err := RunAR(Options{Shape: s, MsgBytes: 64, Seed: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, want[i]) {
			t.Errorf("shape %v via cache diverged:\nfresh:  %+v\ncached: %+v", s, want[i], r)
		}
	}
}

// TestNetCacheCrossShapeSharded drives one cache through alternating shapes
// AND engine selections (serial / 4-shard), with invariant checking on: a
// recycled network must rebuild its shard engines for the new run and still
// produce byte-identical results. This is the reuse pattern of the parallel
// experiment engine when a worker's row mix changes partition size.
func TestNetCacheCrossShapeSharded(t *testing.T) {
	cache := &NetCache{}
	steps := []struct {
		shape  torus.Shape
		shards int
	}{
		{torus.New(4, 4, 2), 4},
		{torus.New(4, 2, 2), 1},
		{torus.New(4, 4, 2), 1},
		{torus.New(4, 2, 2), 4},
	}
	for i, st := range steps {
		fresh, err := RunAR(Options{Shape: st.shape, MsgBytes: 240, Seed: 2, Shards: st.shards, Check: true})
		if err != nil {
			t.Fatalf("step %d fresh: %v", i, err)
		}
		cached, err := RunAR(Options{Shape: st.shape, MsgBytes: 240, Seed: 2, Shards: st.shards, Check: true, Cache: cache})
		if err != nil {
			t.Fatalf("step %d cached: %v", i, err)
		}
		if !reflect.DeepEqual(fresh, cached) {
			t.Errorf("step %d (%v shards=%d): cached run diverged:\nfresh:  %+v\ncached: %+v",
				i, st.shape, st.shards, fresh, cached)
		}
	}
}

// TestNetCacheCheckToggle ensures Check participates in the cache key: a
// network built without the checker must not be recycled for a checked run
// (Params.Check differs), and vice versa.
func TestNetCacheCheckToggle(t *testing.T) {
	cache := &NetCache{}
	shape := torus.New(4, 2, 1)
	if _, err := RunAR(Options{Shape: shape, MsgBytes: 64, Seed: 2, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.nw.Par.Check {
		t.Fatal("unchecked run cached a checked network")
	}
	if _, err := RunAR(Options{Shape: shape, MsgBytes: 64, Seed: 2, Cache: cache, Check: true}); err != nil {
		t.Fatal(err)
	}
	if !cache.nw.Par.Check {
		t.Fatal("checked run recycled the unchecked network (stale cache key)")
	}
}

// TestNetCacheCrossParams drives one cache through a parameter sweep -
// credit delay, coalescing, invariant checking - on a fixed shape. The
// structural-reuse branch of Options.network must recycle the cached
// network via ResetParams (same machine, re-derived engine state) and
// still match a fresh build byte for byte.
func TestNetCacheCrossParams(t *testing.T) {
	shape := torus.New(4, 4, 2)
	base := network.DefaultParams()
	longCredit := base
	longCredit.CreditDelay = 60
	uncoalesced := base
	uncoalesced.Coalesce = network.CoalesceOff
	params := []network.Params{base, longCredit, uncoalesced, base}

	cache := &NetCache{}
	var recycled *network.Network
	for i, par := range params {
		fresh, err := RunAR(Options{Shape: shape, MsgBytes: 240, Seed: 7, Par: par})
		if err != nil {
			t.Fatalf("params %d fresh: %v", i, err)
		}
		cached, err := RunAR(Options{Shape: shape, MsgBytes: 240, Seed: 7, Par: par, Cache: cache})
		if err != nil {
			t.Fatalf("params %d cached: %v", i, err)
		}
		if !reflect.DeepEqual(fresh, cached) {
			t.Errorf("params %d: cached run diverged from fresh run\nfresh:  %+v\ncached: %+v",
				i, fresh, cached)
		}
		if i == 0 {
			recycled = cache.nw
		} else if cache.nw != recycled {
			t.Fatalf("params %d: cache rebuilt the network instead of recycling (structure unchanged)", i)
		}
	}

	// A buffer-structure change must fall back to allocation.
	bigger := base
	bigger.VCBytes *= 2
	if _, err := RunAR(Options{Shape: shape, MsgBytes: 240, Seed: 7, Par: bigger, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.nw == recycled {
		t.Fatal("VCBytes change recycled a structurally incompatible network")
	}
}
