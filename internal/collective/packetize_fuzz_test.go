package collective

import (
	"testing"

	"alltoall/internal/network"
)

// FuzzPacketize round-trips the packetizer over arbitrary payload and header
// sizes: the wire total must cover payload+header, respect the 32-byte
// granule and the [64, 256]-byte packet envelope, and the per-packet
// size/payload attributions must sum back to the message totals.
func FuzzPacketize(f *testing.F) {
	// Edge seeds: empty, sub-minimum, exact granule/packet boundaries and
	// their neighbours, header-dominated, and large multi-packet messages.
	for _, m := range []int{0, 1, 15, 16, 17, 63, 64, 65, 207, 208, 209, 240, 255, 256, 257, 2048, 1 << 20} {
		f.Add(m, 48)
		f.Add(m, 0)
	}
	f.Add(3, 256)
	f.Add(100, 31)
	f.Fuzz(func(t *testing.T, m, header int) {
		if m < 0 || header < 0 || m > 1<<26 || header > 1<<12 {
			t.Skip()
		}
		g := NewMsg(m, header)
		if g.NPkts < 1 {
			t.Fatalf("NewMsg(%d, %d): %d packets", m, header, g.NPkts)
		}
		if g.Wire < int64(m+header) {
			t.Fatalf("NewMsg(%d, %d): wire %d does not cover payload+header %d", m, header, g.Wire, m+header)
		}
		if g.Wire%network.PacketGranule != 0 {
			t.Fatalf("NewMsg(%d, %d): wire %d not a multiple of the %d-byte granule", m, header, g.Wire, network.PacketGranule)
		}
		var wire int64
		var payload int64
		for j := 0; j < g.NPkts; j++ {
			sz := g.PktSize(j)
			if sz < network.MinPacketBytes || sz > network.MaxPacketBytes {
				t.Fatalf("NewMsg(%d, %d): packet %d size %d outside [%d, %d]",
					m, header, j, sz, network.MinPacketBytes, network.MaxPacketBytes)
			}
			if sz%network.PacketGranule != 0 {
				t.Fatalf("NewMsg(%d, %d): packet %d size %d not granule-aligned", m, header, j, sz)
			}
			pl := g.PktPayload(j)
			if pl < 0 || pl > sz {
				t.Fatalf("NewMsg(%d, %d): packet %d payload %d outside [0, %d]", m, header, j, pl, sz)
			}
			wire += int64(sz)
			payload += int64(pl)
		}
		if wire != g.Wire {
			t.Fatalf("NewMsg(%d, %d): packet sizes sum to %d, Wire says %d", m, header, wire, g.Wire)
		}
		if payload != int64(m) {
			t.Fatalf("NewMsg(%d, %d): packet payloads sum to %d, want %d", m, header, payload, m)
		}
	})
}
