// Package collective implements the paper's all-to-all communication
// strategies on top of the simulated Blue Gene/L torus network:
//
//   - AR: direct, randomized destination order, adaptive routing
//   - DR: direct, randomized order, deterministic dimension-order routing
//   - Throttled AR: AR with injection paced to the bisection rate
//   - MPI: the production MPI-style baseline (AR schedule, higher startup)
//   - TPS: the Two Phase Schedule indirect strategy for asymmetric tori
//   - VMesh: the 2D virtual-mesh message-combining strategy for short
//     messages
package collective

import "alltoall/internal/network"

// Packetization follows the paper's messaging runtime: a message of m
// payload bytes carries a 48-byte software header in its first packet; the
// wire total is rounded up to the torus's 32-byte packet granularity and
// split into packets of at most 256 bytes, none smaller than 64 bytes.

// Msg describes the fixed packetization of one message.
type Msg struct {
	Payload int   // application bytes
	Header  int   // software header bytes (first packet only)
	Wire    int64 // total wire bytes across all packets
	NPkts   int
}

// NewMsg packetizes a message of m payload bytes with the given software
// header size.
func NewMsg(m, header int) Msg {
	total := int64(m + header)
	w := (total + network.PacketGranule - 1) / network.PacketGranule * network.PacketGranule
	if w < network.MinPacketBytes {
		w = network.MinPacketBytes
	}
	n := int((w + network.MaxPacketBytes - 1) / network.MaxPacketBytes)
	last := w - int64(n-1)*network.MaxPacketBytes
	if last < network.MinPacketBytes {
		// Pad the runt final packet up to the runtime minimum.
		w += network.MinPacketBytes - last
	}
	return Msg{Payload: m, Header: header, Wire: w, NPkts: n}
}

// PktSize returns the wire size of packet j (0-based).
func (g Msg) PktSize(j int) int32 {
	if j < 0 || j >= g.NPkts {
		panic("collective: packet index out of range")
	}
	if j < g.NPkts-1 {
		return network.MaxPacketBytes
	}
	return int32(g.Wire - int64(g.NPkts-1)*network.MaxPacketBytes)
}

// PktPayload returns the application payload bytes attributed to packet j.
// The first packet's capacity is reduced by the header; trailing padding
// carries no payload.
func (g Msg) PktPayload(j int) int32 {
	if j < 0 || j >= g.NPkts {
		panic("collective: packet index out of range")
	}
	cap0 := int(g.PktSize(0)) - g.Header
	if cap0 < 0 {
		cap0 = 0
	}
	if j == 0 {
		if g.Payload < cap0 {
			return int32(g.Payload)
		}
		return int32(cap0)
	}
	// Packets 1..NPkts-2 are full-size; only the capacity consumed before j
	// matters.
	consumed := cap0 + (j-1)*network.MaxPacketBytes
	rem := g.Payload - consumed
	if rem < 0 {
		rem = 0
	}
	if capj := int(g.PktSize(j)); rem > capj {
		rem = capj
	}
	return int32(rem)
}
