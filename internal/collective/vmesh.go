package collective

import (
	"fmt"

	"alltoall/internal/network"
	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

// The 2D virtual-mesh message-combining strategy (Section 4.2).
//
// A virtual Pvx x Pvy mesh is mapped onto the physical partition. In phase
// 1 every node combines, for each virtual-mesh column j, the blocks destined
// to all Pvy nodes of that column into one message of Pvy*(m+proto) bytes
// and sends it to its row neighbour in column j. After a barrier, phase 2
// sorts the received blocks by destination and sends each column neighbour
// one message of Pvx*(m+proto) bytes. Every byte crosses the network twice,
// but per-destination software headers are amortized over combined
// messages, which wins for very short messages.

// BalancedFactor returns the factorization p = a*b with a >= b minimizing
// a-b (the paper: "keep the number of rows and columns about the same").
func BalancedFactor(p int) (a, b int) {
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return p / best, best
}

// vmeshMap maps virtual-mesh ranks onto physical ranks by enumerating the
// torus dimensions in a configurable order (order[0] fastest). The identity
// order {X,Y,Z} makes consecutive virtual ranks sweep X-lines first, so a
// 32-wide row on an 8x8x8 torus is half an XY plane, matching the paper's
// 512-node experiment.
type vmeshMap struct {
	physOf []int32 // physical rank by virtual rank
	virtOf []int32 // virtual rank by physical rank
}

func newVMeshMap(s torus.Shape, order [3]torus.Dim) vmeshMap {
	p := s.P()
	m := vmeshMap{physOf: make([]int32, p), virtOf: make([]int32, p)}
	for phys := 0; phys < p; phys++ {
		c := s.Coords(phys)
		vr := c[order[0]] + s.Size[order[0]]*(c[order[1]]+s.Size[order[1]]*c[order[2]])
		m.physOf[vr] = int32(phys)
		m.virtOf[phys] = int32(vr)
	}
	return m
}

// vmeshSource sends a fixed list of combined messages, packet by packet.
type vmeshSource struct {
	dests []int32 // physical destination ranks
	msg   Msg
	alpha int64 // per-message startup
	gamma int64 // gather/sort copy cost, charged with each message's first packet
	kind  uint8
	pace  pacer

	di, pj int
}

func (s *vmeshSource) Next(now int64) (network.PacketSpec, network.SrcStatus, int64) {
	if s.di >= len(s.dests) {
		return network.PacketSpec{}, network.SrcDone, 0
	}
	if retry, ok := s.pace.gate(now); !ok {
		return network.PacketSpec{}, network.SrcWait, retry
	}
	spec := network.PacketSpec{
		Dst:     s.dests[s.di],
		Size:    s.msg.PktSize(s.pj),
		Payload: s.msg.PktPayload(s.pj),
		Kind:    s.kind,
		Class:   int8(s.dests[s.di] % 60),
	}
	if s.pj == 0 {
		spec.ExtraCPU = s.alpha + s.gamma
	}
	s.pj++
	if s.pj == s.msg.NPkts {
		s.pj = 0
		s.di++
	}
	s.pace.charge(now, spec.Size)
	return spec, network.SrcReady, 0
}

// RunVMesh runs the 2D virtual-mesh combining strategy. The two phases are
// separated by a barrier (they do not overlap, matching Equation 4).
func RunVMesh(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	shape := opts.Shape
	p := shape.P()
	pvx, pvy := opts.VMeshCols, opts.VMeshRows
	if pvx == 0 || pvy == 0 {
		pvx, pvy = BalancedFactor(p)
	}
	if pvx*pvy != p {
		return Result{}, fmt.Errorf("collective: vmesh %dx%d does not cover %d nodes", pvx, pvy, p)
	}
	order := [3]torus.Dim{torus.X, torus.Y, torus.Z}
	if opts.VMeshMapOrder != nil {
		order = *opts.VMeshMapOrder
		if order[0] == order[1] || order[1] == order[2] || order[0] == order[2] ||
			order[0] < 0 || order[0] >= torus.NumDims ||
			order[1] < 0 || order[1] >= torus.NumDims ||
			order[2] < 0 || order[2] >= torus.NumDims {
			return Result{}, fmt.Errorf("collective: VMeshMapOrder %v is not a permutation of X,Y,Z", order)
		}
	}
	vm := newVMeshMap(shape, order)
	calib := opts.Calib
	gammaOf := func(bytes int64) int64 { return bytes * calib.GammaMilliPerByte / 1000 }

	perm := torus.NewPerm(pvx, opts.Seed^0x5EED1) // shared row-visit shuffle

	// Phase 1: row exchange. Virtual node (r, c) sends to (r, j) for j != c
	// a message combining the blocks for column j.
	msg1 := NewMsg(pvy*(opts.MsgBytes+calib.ProtoBytes), calib.HeaderBytes)
	src1 := make([]network.Source, p)
	for phys := 0; phys < p; phys++ {
		vr := int(vm.virtOf[phys])
		r, c := vr/pvx, vr%pvx
		dests := make([]int32, 0, pvx-1)
		for i := 0; i < pvx; i++ {
			j := perm.At((i + c) % pvx)
			if j == c {
				continue
			}
			dests = append(dests, vm.physOf[r*pvx+j])
		}
		src1[phys] = &vmeshSource{
			dests: dests, msg: msg1, alpha: calib.AlphaMsg, pace: opts.pacer(false),
			gamma: gammaOf(msg1.Wire), kind: kindVMesh1,
		}
	}
	h1 := &directHandler{recvPayload: make([]int64, p)}
	nw1, err := opts.network(src1, h1)
	if err != nil {
		return Result{}, err
	}
	t1, err := opts.runNet(nw1)
	if err != nil {
		opts.dumpOnError(nw1, err)
		return Result{}, fmt.Errorf("VMesh phase 1 on %v: %w", shape, err)
	}
	want1 := int64(pvx-1) * int64(msg1.Payload)
	for n := 0; n < p; n++ {
		if h1.recvPayload[n] != want1 {
			return Result{}, fmt.Errorf("VMesh phase 1 on %v: node %d received %d, want %d",
				shape, n, h1.recvPayload[n], want1)
		}
	}
	// Capture phase-1 measurements now: building the phase-2 network below
	// may recycle (Reset) this one when a cache is in use, zeroing its stats.
	st1 := nw1.Stats()
	ev1 := st1.Events()
	qe1 := st1.QueuedEvents
	pkts1 := st1.PacketsInjected
	wire1 := st1.WireBytesInjected
	linkBusy1 := maxI64(st1.LinkBusy)
	dead1, rr1, fcr1 := st1.DeadLinkTicks, st1.Reroutes, st1.ForcedCreditReturns

	// Phase 2: column exchange. Virtual node (r, c) sends to (r', c) for
	// r' != r a message with the blocks (from all Pvx row members) for that
	// destination.
	msg2 := NewMsg(pvx*(opts.MsgBytes+calib.ProtoBytes), calib.HeaderBytes)
	permCol := torus.NewPerm(pvy, opts.Seed^0x5EED2)
	src2 := make([]network.Source, p)
	for phys := 0; phys < p; phys++ {
		vr := int(vm.virtOf[phys])
		r, c := vr/pvx, vr%pvx
		dests := make([]int32, 0, pvy-1)
		for i := 0; i < pvy; i++ {
			rp := permCol.At((i + r) % pvy)
			if rp == r {
				continue
			}
			dests = append(dests, vm.physOf[rp*pvx+c])
		}
		src2[phys] = &vmeshSource{
			dests: dests, msg: msg2, alpha: calib.AlphaMsg, pace: opts.pacer(false),
			gamma: gammaOf(msg2.Wire), kind: kindVMesh2,
		}
	}
	h2 := &directHandler{recvPayload: make([]int64, p)}
	nw2, err := opts.network(src2, h2)
	if err != nil {
		return Result{}, err
	}
	t2, err := opts.runNet(nw2)
	if err != nil {
		opts.dumpOnError(nw2, err)
		return Result{}, fmt.Errorf("VMesh phase 2 on %v: %w", shape, err)
	}
	want2 := int64(pvy-1) * int64(msg2.Payload)
	for n := 0; n < p; n++ {
		if h2.recvPayload[n] != want2 {
			return Result{}, fmt.Errorf("VMesh phase 2 on %v: node %d received %d, want %d",
				shape, n, h2.recvPayload[n], want2)
		}
	}

	st2 := nw2.Stats()
	r := opts.newResult(StratVMesh)
	r.VMeshCols, r.VMeshRows = pvx, pvy
	r.PhaseTimes = []int64{t1, t2}
	if c, ok := opts.Observer.(*observe.Collector); ok && c != nil {
		// finishResult gets nil stats (phases fold manually below), so note
		// both phases' forced credit returns here, before it takes the summary.
		c.NoteForcedCreditReturns(fcr1 + st2.ForcedCreditReturns)
	}
	opts.finishResult(&r, t1+t2, nil)
	r.DeadLinkTicks = dead1 + st2.DeadLinkTicks
	r.Reroutes = rr1 + st2.Reroutes
	r.Events = ev1 + st2.Events()
	r.QueuedEvents = qe1 + st2.QueuedEvents
	r.PacketsInjected = pkts1 + st2.PacketsInjected
	r.WireBytes = wire1 + st2.WireBytesInjected
	// Every pair's m application bytes are delivered (directly in phase 1
	// for row mates, via phase 2 otherwise).
	r.PayloadBytes = int64(p) * int64(p-1) * int64(opts.MsgBytes)
	r.MeanLatencyUnits = st2.MeanLatency()
	if t1+t2 > 0 {
		r.MaxLinkUtil = float64(linkBusy1+maxI64(st2.LinkBusy)) / float64(t1+t2)
	}
	return r, nil
}

func maxI64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
