package collective

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"alltoall/internal/model"
	"alltoall/internal/network"
	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

// ErrNotCanonical is returned by NewRequest for an Options value that a
// Request cannot represent: explicit machine Params or Calib overrides, or
// run machinery (Observer, Cache, DebugDump) that is identity-free by
// design. Callers fall back to Run with the Options struct; test with
// errors.Is.
var ErrNotCanonical = errors.New("collective: options not canonicalizable as a Request")

// Request is the canonical, value-comparable description of one simulation:
// everything that determines a run's Result, and nothing that doesn't. It is
// the front door shared by the public API (alltoall.RunRequest), the aasim
// CLI, the experiments engine, and the aaserve HTTP service - the same
// Request, wherever it is submitted, produces a byte-identical Result, which
// is what makes Key() a sound cache and bench identity.
//
// Zero values mean "library default" throughout (matching Options.fill), so
// the zero Request plus Strategy, Shape and MsgBytes is a complete job. Run
// machinery - network caches, observers, debug dumps, cancellation - is
// deliberately not here: it never changes the Result and is layered on per
// call site (see RunRequest's extra options).
type Request struct {
	Strategy Strategy
	Shape    torus.Shape
	MsgBytes int    // per-pair payload, >= 1
	Seed     uint64 // destination-order randomization

	Burst        int     // packets per destination visit (0 = default 2)
	PaceBurst    int     // injection token-bucket depth (0 = default)
	PaceFraction float64 // injection rate vs bisection limit (0 = default 0.95)
	Unpaced      bool    // disable pacing (ablation)

	Shards     int    // event-engine shards (results identical at any value)
	Check      bool   // runtime invariant checker
	EventQueue string // "" | "calendar" | "heap" (results identical)
	Coalesce   string // "" | "on" | "off" (results identical)
	Sync       string // "" | "async" | "bsp" shard protocol (results identical)

	// Faults is a deterministic link-fault schedule in the ParseFaults
	// grammar ("t:node:dir:action;..."); "" faults nothing. The textual
	// form is the canonical one (the grammar is a String/Parse fixed
	// point), so Requests stay value-comparable and JSON-portable.
	Faults string

	MaxTime int64 // simulated-time bound (0 = derived default)

	// TPSLinear forces the Two Phase Schedule's phase-1 dimension:
	// 0 selects automatically (the paper's rule), 1/2/3 force X/Y/Z.
	TPSLinear       int
	TPSCreditWindow int
	TPSCreditBatch  int

	// VMeshRows/Cols force the virtual-mesh factorization (0 = balanced);
	// VMeshMapOrder is a 3-letter dimension permutation like "xzy" ("" =
	// the default X,Y,Z sweep).
	VMeshRows     int
	VMeshCols     int
	VMeshMapOrder string

	// Observe instruments the run with an observe.Collector so
	// Result.Observed carries the link/HoL/FIFO summary; ObserveWindow is
	// the trace bucket width (0 = default). Observation never perturbs
	// the simulated outcome, but it is part of the request identity
	// because it changes the Result payload.
	Observe       bool
	ObserveWindow int64
}

// dimLetters renders torus dimensions in map-order strings and keys.
const dimLetters = "xyz"

// parseMapOrder reads a 3-letter dimension permutation ("xzy").
func parseMapOrder(s string) ([3]torus.Dim, error) {
	var ord [3]torus.Dim
	if len(s) != 3 {
		return ord, fmt.Errorf("collective: map order %q: want 3 dimension letters", s)
	}
	var seen [3]bool
	for i := 0; i < 3; i++ {
		d := strings.IndexByte(dimLetters, s[i]|0x20)
		if d < 0 {
			return ord, fmt.Errorf("collective: map order %q: bad dimension %q", s, s[i])
		}
		if seen[d] {
			return ord, fmt.Errorf("collective: map order %q: dimension %c repeats", s, s[i])
		}
		seen[d] = true
		ord[i] = torus.Dim(d)
	}
	return ord, nil
}

// canonStrategy resolves a strategy name case-insensitively to its canonical
// spelling, or "" if unknown.
func canonStrategy(name string) Strategy {
	for _, s := range Strategies() {
		if strings.EqualFold(string(s), name) {
			return s
		}
	}
	return ""
}

// ParseStrategy resolves a strategy name case-insensitively ("tps" = "TPS")
// to its canonical spelling.
func ParseStrategy(name string) (Strategy, error) {
	if s := canonStrategy(name); s != "" {
		return s, nil
	}
	return "", fmt.Errorf("collective: unknown strategy %q", name)
}

// Validate checks the request without running it. Shape errors wrap
// torus.ErrBadShape; every error is stable enough for an HTTP 400 body.
func (r Request) Validate() error {
	if canonStrategy(string(r.Strategy)) != r.Strategy || r.Strategy == "" {
		return fmt.Errorf("collective: unknown strategy %q", r.Strategy)
	}
	if err := r.Shape.Validate(); err != nil {
		return err
	}
	if r.MsgBytes < 1 {
		return fmt.Errorf("collective: MsgBytes must be >= 1, got %d", r.MsgBytes)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"Burst", int64(r.Burst)}, {"PaceBurst", int64(r.PaceBurst)},
		{"Shards", int64(r.Shards)}, {"MaxTime", r.MaxTime},
		{"TPSCreditWindow", int64(r.TPSCreditWindow)}, {"TPSCreditBatch", int64(r.TPSCreditBatch)},
		{"VMeshRows", int64(r.VMeshRows)}, {"VMeshCols", int64(r.VMeshCols)},
		{"ObserveWindow", r.ObserveWindow},
	} {
		if f.v < 0 {
			return fmt.Errorf("collective: negative %s", f.name)
		}
	}
	if r.PaceFraction < 0 || r.PaceFraction > 1 {
		return fmt.Errorf("collective: PaceFraction %v out of [0,1]", r.PaceFraction)
	}
	if r.TPSLinear < 0 || r.TPSLinear > 3 {
		return fmt.Errorf("collective: TPSLinear %d out of 0..3 (0 = auto, 1/2/3 = X/Y/Z)", r.TPSLinear)
	}
	switch r.EventQueue {
	case "", network.EventQueueCalendar, network.EventQueueHeap:
	default:
		return fmt.Errorf("collective: unknown event queue %q", r.EventQueue)
	}
	switch r.Coalesce {
	case "", network.CoalesceOn, network.CoalesceOff:
	default:
		return fmt.Errorf("collective: unknown coalesce mode %q", r.Coalesce)
	}
	switch r.Sync {
	case "", network.SyncAsync, network.SyncBSP:
	default:
		return fmt.Errorf("collective: unknown sync protocol %q", r.Sync)
	}
	if r.Faults != "" {
		if _, err := network.ParseFaults(r.Faults); err != nil {
			return err
		}
	}
	if r.VMeshMapOrder != "" {
		if _, err := parseMapOrder(r.VMeshMapOrder); err != nil {
			return err
		}
	}
	return nil
}

// Key returns the canonical encoding of the request: a stable, injective
// string identity used by the serving layer's result cache, by bench
// labeling, and by deduplicating sweeps. Equal keys mean byte-identical
// Results (the engines are deterministic and shard-/queue-/coalescing-/
// sync-invariant); distinct field values always produce distinct keys. The
// "aa2" prefix versions the encoding (v2 added the sy tag).
func (r Request) Key() string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString("aa2|s=")
	b.WriteString(string(r.Strategy))
	b.WriteString("|p=")
	b.WriteString(r.Shape.Canon())
	sep := func(tag string, v string) {
		b.WriteByte('|')
		b.WriteString(tag)
		b.WriteByte('=')
		b.WriteString(v)
	}
	sep("m", strconv.Itoa(r.MsgBytes))
	sep("r", strconv.FormatUint(r.Seed, 10))
	sep("b", strconv.Itoa(r.Burst))
	sep("pb", strconv.Itoa(r.PaceBurst))
	sep("pf", strconv.FormatFloat(r.PaceFraction, 'g', -1, 64))
	sep("up", boolKey(r.Unpaced))
	sep("sh", strconv.Itoa(r.Shards))
	sep("ck", boolKey(r.Check))
	sep("eq", r.EventQueue)
	sep("co", r.Coalesce)
	sep("sy", r.Sync)
	sep("f", r.Faults)
	sep("mt", strconv.FormatInt(r.MaxTime, 10))
	sep("tl", strconv.Itoa(r.TPSLinear))
	sep("tw", strconv.Itoa(r.TPSCreditWindow))
	sep("tb", strconv.Itoa(r.TPSCreditBatch))
	sep("vr", strconv.Itoa(r.VMeshRows))
	sep("vc", strconv.Itoa(r.VMeshCols))
	sep("vo", r.VMeshMapOrder)
	sep("ob", boolKey(r.Observe))
	sep("ow", strconv.FormatInt(r.ObserveWindow, 10))
	return b.String()
}

func boolKey(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// options expands the request into the Options struct the strategy runners
// consume. The expansion is exact: NewRequest(strat, r.options()) round-trips.
func (r Request) options() (Options, error) {
	o := Options{
		Shape:           r.Shape,
		MsgBytes:        r.MsgBytes,
		Seed:            r.Seed,
		Burst:           r.Burst,
		PaceBurst:       r.PaceBurst,
		PaceFraction:    r.PaceFraction,
		Unpaced:         r.Unpaced,
		Shards:          r.Shards,
		Check:           r.Check,
		EventQueue:      r.EventQueue,
		Coalesce:        r.Coalesce,
		Sync:            r.Sync,
		MaxTime:         r.MaxTime,
		TPSCreditWindow: r.TPSCreditWindow,
		TPSCreditBatch:  r.TPSCreditBatch,
		VMeshRows:       r.VMeshRows,
		VMeshCols:       r.VMeshCols,
	}
	if r.Faults != "" {
		fs, err := network.ParseFaults(r.Faults)
		if err != nil {
			return o, err
		}
		if len(fs.Events) > 0 {
			o.Faults = fs
		}
	}
	if r.TPSLinear > 0 {
		d := torus.Dim(r.TPSLinear - 1)
		o.TPSLinear = &d
	}
	if r.VMeshMapOrder != "" {
		ord, err := parseMapOrder(r.VMeshMapOrder)
		if err != nil {
			return o, err
		}
		o.VMeshMapOrder = &ord
	}
	return o, nil
}

// NewRequest lifts a legacy Options struct into the canonical Request form,
// the bridge the experiments engine and WithOptions callers migrate through.
// Options that carry non-canonical state - explicit Par or Calib overrides,
// an Observer, a Cache, a DebugDump path - return an error wrapping
// ErrNotCanonical: those fields are either not value-encodable (v1 keys
// don't cover custom machine parameters) or deliberately excluded from
// request identity; layer them per call with RunRequest's extra options.
func NewRequest(strat Strategy, o Options) (Request, error) {
	if o.Par != (network.Params{}) {
		return Request{}, fmt.Errorf("%w: explicit Params", ErrNotCanonical)
	}
	if o.Calib != (model.Calib{}) {
		return Request{}, fmt.Errorf("%w: explicit Calib", ErrNotCanonical)
	}
	if o.Observer != nil {
		return Request{}, fmt.Errorf("%w: Observer (pass it as a RunRequest extra option)", ErrNotCanonical)
	}
	if o.Cache != nil {
		return Request{}, fmt.Errorf("%w: Cache (pass it as a RunRequest extra option)", ErrNotCanonical)
	}
	if o.SyncStats != nil {
		return Request{}, fmt.Errorf("%w: SyncStats (pass it as a RunRequest extra option)", ErrNotCanonical)
	}
	if o.DebugDump != "" {
		return Request{}, fmt.Errorf("%w: DebugDump (pass it as a RunRequest extra option)", ErrNotCanonical)
	}
	if o.cancel != nil {
		return Request{}, fmt.Errorf("%w: cancellation channel (use RunRequest's context)", ErrNotCanonical)
	}
	r := Request{
		Strategy:        strat,
		Shape:           o.Shape,
		MsgBytes:        o.MsgBytes,
		Seed:            o.Seed,
		Burst:           o.Burst,
		PaceBurst:       o.PaceBurst,
		PaceFraction:    o.PaceFraction,
		Unpaced:         o.Unpaced,
		Shards:          o.Shards,
		Check:           o.Check,
		EventQueue:      o.EventQueue,
		Coalesce:        o.Coalesce,
		Sync:            o.Sync,
		Faults:          o.Faults.String(),
		MaxTime:         o.MaxTime,
		TPSCreditWindow: o.TPSCreditWindow,
		TPSCreditBatch:  o.TPSCreditBatch,
		VMeshRows:       o.VMeshRows,
		VMeshCols:       o.VMeshCols,
	}
	if o.TPSLinear != nil {
		r.TPSLinear = int(*o.TPSLinear) + 1
	}
	if o.VMeshMapOrder != nil {
		var b [3]byte
		for i, d := range o.VMeshMapOrder {
			if d < 0 || int(d) >= len(dimLetters) {
				return Request{}, fmt.Errorf("%w: VMeshMapOrder dimension %d", ErrNotCanonical, d)
			}
			b[i] = dimLetters[d]
		}
		r.VMeshMapOrder = string(b[:])
	}
	return r, r.Validate()
}

// RunRequest executes the canonical request under a context. The extra
// options are applied to the expanded Options before the run; by contract
// they carry run machinery only (a NetCache, an Observer, a DebugDump path)
// - changing canonical fields through them would break the Key() identity,
// so don't. When r.Observe is set and no extra option installed an observer,
// a fresh observe.Collector is attached so Result.Observed is populated.
//
// A Result returned here is byte-identical for equal Requests regardless of
// caller, concurrency, or which extra machinery was attached: that is the
// correctness contract the serving layer's memoization rests on.
func RunRequest(ctx context.Context, r Request, extra ...func(*Options)) (Result, error) {
	if err := r.Validate(); err != nil {
		return Result{}, err
	}
	o, err := r.options()
	if err != nil {
		return Result{}, err
	}
	for _, f := range extra {
		if f != nil {
			f(&o)
		}
	}
	if r.Observe && o.Observer == nil {
		o.Observer = observe.New(observe.Config{Window: r.ObserveWindow})
	}
	return RunContext(ctx, r.Strategy, o)
}

// requestWire is the JSON layout of a Request: snake_case fields, shape in
// the canonical Parse/Canon grammar, zero values omitted. The layout is
// covered by the serve schema version.
type requestWire struct {
	Strategy        string  `json:"strategy"`
	Shape           string  `json:"shape"`
	MsgBytes        int     `json:"msg_bytes"`
	Seed            uint64  `json:"seed,omitempty"`
	Burst           int     `json:"burst,omitempty"`
	PaceBurst       int     `json:"pace_burst,omitempty"`
	PaceFraction    float64 `json:"pace_fraction,omitempty"`
	Unpaced         bool    `json:"unpaced,omitempty"`
	Shards          int     `json:"shards,omitempty"`
	Check           bool    `json:"check,omitempty"`
	EventQueue      string  `json:"event_queue,omitempty"`
	Coalesce        string  `json:"coalesce,omitempty"`
	Sync            string  `json:"sync,omitempty"`
	Faults          string  `json:"faults,omitempty"`
	MaxTime         int64   `json:"max_time,omitempty"`
	TPSLinear       string  `json:"tps_linear,omitempty"`
	TPSCreditWindow int     `json:"tps_credit_window,omitempty"`
	TPSCreditBatch  int     `json:"tps_credit_batch,omitempty"`
	VMeshRows       int     `json:"vmesh_rows,omitempty"`
	VMeshCols       int     `json:"vmesh_cols,omitempty"`
	VMeshMapOrder   string  `json:"vmesh_map_order,omitempty"`
	Observe         bool    `json:"observe,omitempty"`
	ObserveWindow   int64   `json:"observe_window,omitempty"`
}

// MarshalJSON renders the canonical wire form (see requestWire).
func (r Request) MarshalJSON() ([]byte, error) {
	w := requestWire{
		Strategy:        string(r.Strategy),
		Shape:           r.Shape.Canon(),
		MsgBytes:        r.MsgBytes,
		Seed:            r.Seed,
		Burst:           r.Burst,
		PaceBurst:       r.PaceBurst,
		PaceFraction:    r.PaceFraction,
		Unpaced:         r.Unpaced,
		Shards:          r.Shards,
		Check:           r.Check,
		EventQueue:      r.EventQueue,
		Coalesce:        r.Coalesce,
		Sync:            r.Sync,
		Faults:          r.Faults,
		MaxTime:         r.MaxTime,
		TPSCreditWindow: r.TPSCreditWindow,
		TPSCreditBatch:  r.TPSCreditBatch,
		VMeshRows:       r.VMeshRows,
		VMeshCols:       r.VMeshCols,
		VMeshMapOrder:   r.VMeshMapOrder,
		Observe:         r.Observe,
		ObserveWindow:   r.ObserveWindow,
	}
	if r.TPSLinear > 0 {
		w.TPSLinear = string(dimLetters[r.TPSLinear-1])
	}
	return json.Marshal(w)
}

// UnmarshalJSON reads the wire form, normalizing strategy case and parsing
// the shape grammar; unknown fields are rejected by the serving layer's
// decoder, not here.
func (r *Request) UnmarshalJSON(data []byte) error {
	var w requestWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Request{
		MsgBytes:        w.MsgBytes,
		Seed:            w.Seed,
		Burst:           w.Burst,
		PaceBurst:       w.PaceBurst,
		PaceFraction:    w.PaceFraction,
		Unpaced:         w.Unpaced,
		Shards:          w.Shards,
		Check:           w.Check,
		EventQueue:      strings.ToLower(w.EventQueue),
		Coalesce:        strings.ToLower(w.Coalesce),
		Sync:            strings.ToLower(w.Sync),
		Faults:          w.Faults,
		MaxTime:         w.MaxTime,
		TPSCreditWindow: w.TPSCreditWindow,
		TPSCreditBatch:  w.TPSCreditBatch,
		VMeshRows:       w.VMeshRows,
		VMeshCols:       w.VMeshCols,
		VMeshMapOrder:   strings.ToLower(w.VMeshMapOrder),
		Observe:         w.Observe,
		ObserveWindow:   w.ObserveWindow,
	}
	if s := canonStrategy(w.Strategy); s != "" {
		out.Strategy = s
	} else {
		out.Strategy = Strategy(w.Strategy) // Validate reports it
	}
	if w.Shape != "" {
		shape, err := torus.Parse(w.Shape)
		if err != nil {
			return err
		}
		out.Shape = shape
	}
	switch tl := strings.ToLower(w.TPSLinear); tl {
	case "":
	case "x", "y", "z":
		out.TPSLinear = strings.IndexByte(dimLetters, tl[0]) + 1
	default:
		return fmt.Errorf("collective: tps_linear %q: want x, y, or z", w.TPSLinear)
	}
	*r = out
	return nil
}
