package collective

import (
	"strings"
	"testing"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

func small() torus.Shape { return torus.New(4, 4, 1) }

func TestRunARDeliversEverything(t *testing.T) {
	res, err := RunAR(Options{Shape: small(), MsgBytes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(small().P())
	if res.PayloadBytes != p*(p-1)*100 {
		t.Errorf("payload = %d, want %d", res.PayloadBytes, p*(p-1)*100)
	}
	if res.PercentPeak <= 0 || res.PercentPeak > 100 {
		t.Errorf("percent of peak = %v out of range", res.PercentPeak)
	}
	if res.Time <= 0 || res.Seconds <= 0 {
		t.Errorf("nonpositive time %d / %v", res.Time, res.Seconds)
	}
	if res.Strategy != StratAR {
		t.Errorf("strategy = %q", res.Strategy)
	}
}

func TestRunDRDeliversEverything(t *testing.T) {
	res, err := RunDR(Options{Shape: small(), MsgBytes: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(small().P())
	if res.PayloadBytes != p*(p-1)*100 {
		t.Errorf("payload = %d", res.PayloadBytes)
	}
}

func TestRunThrottledSlowerOrEqualInjection(t *testing.T) {
	ar, err := RunAR(Options{Shape: small(), MsgBytes: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	th, err := RunThrottled(Options{Shape: small(), MsgBytes: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Both must finish; strict pacing cannot be more than ~2x slower than
	// the burst-paced AR on this tiny partition.
	if th.Time > 2*ar.Time {
		t.Errorf("throttled %d vs AR %d: unreasonable gap", th.Time, ar.Time)
	}
}

func TestRunMPIHasHigherOverheadThanAR(t *testing.T) {
	// With a tiny message, startup dominates: MPI (higher alpha) is slower.
	ar, err := RunAR(Options{Shape: small(), MsgBytes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mpi, err := RunMPI(Options{Shape: small(), MsgBytes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mpi.Time <= ar.Time {
		t.Errorf("MPI %d should be slower than AR %d for 1-byte messages", mpi.Time, ar.Time)
	}
}

func TestDirectSourceEmitsAllPackets(t *testing.T) {
	shape := torus.New(4, 2, 1)
	msg := NewMsg(500, 48)
	src := newDirectSource(shape, 0, msg, 2, 0, false, 7, pacer{})
	counts := map[int32]int{}
	var bytes int64
	for {
		spec, st, _ := src.Next(0)
		if st == network.SrcDone {
			break
		}
		if st != network.SrcReady {
			t.Fatalf("unexpected status %v", st)
		}
		counts[spec.Dst]++
		bytes += int64(spec.Size)
	}
	if len(counts) != shape.P()-1 {
		t.Fatalf("destinations = %d, want %d", len(counts), shape.P()-1)
	}
	for d, c := range counts {
		if c != msg.NPkts {
			t.Errorf("dest %d got %d packets, want %d", d, c, msg.NPkts)
		}
	}
	if bytes != msg.Wire*int64(shape.P()-1) {
		t.Errorf("wire bytes = %d, want %d", bytes, msg.Wire*int64(shape.P()-1))
	}
}

func TestDirectSourceBurstOrdering(t *testing.T) {
	shape := torus.New(4, 2, 1)
	msg := NewMsg(960, 48) // 4+ packets
	src := newDirectSource(shape, 0, msg, 2, 0, false, 7, pacer{})
	// With burst 2, the first two specs must go to the same destination.
	a, _, _ := src.Next(0)
	b, _, _ := src.Next(0)
	c, _, _ := src.Next(0)
	if a.Dst != b.Dst {
		t.Errorf("burst not contiguous: %d then %d", a.Dst, b.Dst)
	}
	if c.Dst == a.Dst {
		t.Errorf("third packet should move to the next destination")
	}
}

func TestDirectSourceAlphaOnFirstPacketOnly(t *testing.T) {
	shape := torus.New(4, 2, 1)
	msg := NewMsg(960, 48)
	src := newDirectSource(shape, 0, msg, msg.NPkts, 99, false, 7, pacer{})
	first, _, _ := src.Next(0)
	if first.ExtraCPU != 99 {
		t.Errorf("first packet ExtraCPU = %d, want 99", first.ExtraCPU)
	}
	second, _, _ := src.Next(0)
	if second.ExtraCPU != 0 {
		t.Errorf("second packet ExtraCPU = %d, want 0", second.ExtraCPU)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := RunAR(Options{Shape: torus.Shape{Size: [3]int{0, 1, 1}}, MsgBytes: 8}); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := RunAR(Options{Shape: small(), MsgBytes: 0}); err == nil {
		t.Error("zero message accepted")
	}
	if _, err := RunAR(Options{Shape: small(), MsgBytes: 8, Burst: -1}); err == nil {
		t.Error("negative burst accepted")
	}
	if _, err := Run(Strategy("nope"), Options{Shape: small(), MsgBytes: 8}); err == nil ||
		!strings.Contains(err.Error(), "unknown strategy") {
		t.Error("unknown strategy accepted")
	}
}

func TestRunDispatch(t *testing.T) {
	for _, s := range Strategies() {
		opts := Options{Shape: small(), MsgBytes: 8, Seed: 3}
		res, err := Run(s, opts)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if res.Strategy != s {
			t.Errorf("dispatch %s returned %s", s, res.Strategy)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := RunAR(Options{Shape: small(), MsgBytes: 256, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAR(Options{Shape: small(), MsgBytes: 256, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.PacketsInjected != b.PacketsInjected {
		t.Errorf("same seed produced different runs: %v vs %v", a.Time, b.Time)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a, _ := RunAR(Options{Shape: small(), MsgBytes: 256, Seed: 1})
	b, _ := RunAR(Options{Shape: small(), MsgBytes: 256, Seed: 2})
	if a.Time == b.Time && a.MeanLatencyUnits == b.MeanLatencyUnits {
		t.Log("warning: different seeds produced identical timing (possible but unlikely)")
	}
}

func TestMeshPartition(t *testing.T) {
	shape := torus.NewMesh(8, 2, 1, false, false, false)
	res, err := RunAR(Options{Shape: shape, MsgBytes: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := int64(shape.P())
	if res.PayloadBytes != p*(p-1)*256 {
		t.Errorf("payload = %d", res.PayloadBytes)
	}
}
