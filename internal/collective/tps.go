package collective

import (
	"fmt"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// The Two Phase Schedule (TPS), Section 4.1 of the paper.
//
// Phase 1 sends each packet along one "linear" dimension to the
// intermediate node whose linear coordinate matches the final destination's;
// the intermediate node's CPU re-injects it in phase 2, which uses only the
// remaining two "planar" dimensions. The two phases overlap: they are
// pipelined through distinct injection FIFO classes, so a phase-1 packet is
// never queued behind a phase-2 packet in an injection FIFO, and linear
// packets never compete with planar packets for VC space in the same
// dimension (phase-1 packets have hops only in the linear dimension,
// phase-2 packets have none there).

// SelectTPSLinearDim implements the paper's rule for choosing the phase-1
// dimension: prefer a dimension whose removal leaves the two planar
// dimensions symmetric (taking the longest such dimension); otherwise take
// the longest dimension, which is the bottleneck.
func SelectTPSLinearDim(s torus.Shape) torus.Dim {
	best := torus.Dim(-1)
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		if s.Size[d] == 1 {
			continue
		}
		o1, o2 := otherDims(d)
		if s.Size[o1] == s.Size[o2] && (best < 0 || s.Size[d] > s.Size[best]) {
			best = d
		}
	}
	if best >= 0 {
		return best
	}
	return s.LongestDim()
}

// tpsPhase1Class and tpsPhase2Class partition the injection FIFO classes
// between the two phases: phase 1 uses even classes, phase 2 odd classes.
// With the default six injection FIFOs each phase gets three.
func tpsPhase1Class(dst int32) int8 { return int8(2 * (dst % 30)) }

func tpsPhase2Class(dst int32) int8 { return int8(2*(dst%30) + 1) }

func otherDims(d torus.Dim) (torus.Dim, torus.Dim) {
	switch d {
	case torus.X:
		return torus.Y, torus.Z
	case torus.Y:
		return torus.X, torus.Z
	default:
		return torus.X, torus.Y
	}
}

// tpsSource generates phase-1 packets (and direct phase-2 packets for
// destinations sharing the node's planar coordinates).
type tpsSource struct {
	shape  torus.Shape
	self   torus.Coord
	linear torus.Dim
	order  torus.DestOrder
	msg    Msg
	burst  int
	alpha  int64
	pace   pacer

	idx, pass, inBurst int
	passes             int
}

func (s *tpsSource) Next(now int64) (network.PacketSpec, network.SrcStatus, int64) {
	if retry, ok := s.pace.gate(now); !ok {
		return network.PacketSpec{}, network.SrcWait, retry
	}
	for {
		if s.idx >= s.order.Len() {
			s.idx = 0
			s.pass++
		}
		if s.pass >= s.passes {
			return network.PacketSpec{}, network.SrcDone, 0
		}
		j := s.pass*s.burst + s.inBurst
		if j >= s.msg.NPkts {
			s.inBurst = 0
			s.idx++
			continue
		}
		final := s.order.At(s.idx)
		fc := s.shape.Coords(final)
		inter := s.self
		inter[s.linear] = fc[s.linear]
		interRank := s.shape.Rank(inter)

		spec := network.PacketSpec{
			Size:    s.msg.PktSize(j),
			Payload: s.msg.PktPayload(j),
		}
		if j == 0 {
			spec.ExtraCPU = s.alpha
		}
		// Injection FIFOs are partitioned between the phases (the paper's
		// "reserved" FIFOs): even classes carry phase-1 linear packets, odd
		// classes carry phase-2 planar packets, so a linear packet is never
		// queued behind a planar one or vice versa.
		if interRank == s.shape.Rank(s.self) {
			// The destination shares this node's linear coordinate: no
			// phase-1 hop; inject directly as a phase-2 (planar) packet.
			spec.Dst = int32(final)
			spec.Class = tpsPhase2Class(int32(final))
			spec.Kind = kindTPS2
		} else {
			spec.Dst = int32(interRank)
			spec.Aux = int32(final)
			spec.Class = tpsPhase1Class(int32(interRank))
			spec.Kind = kindTPS1
		}
		s.inBurst++
		if s.inBurst == s.burst {
			s.inBurst = 0
			s.idx++
		}
		s.pace.charge(now, spec.Size)
		return spec, network.SrcReady, 0
	}
}

// tpsHandler forwards phase-1 packets onto the planar phase and accounts
// final deliveries.
type tpsHandler struct {
	recvPayload []int64
	forwarded   []int64 // packets re-injected per intermediate node
}

func (h *tpsHandler) OnDeliver(d network.Delivered, fw []network.PacketSpec) ([]network.PacketSpec, int64, bool) {
	if d.Kind == kindTPS1 {
		if d.Aux == d.Node {
			// The intermediate is the final destination (source and
			// destination share planar coordinates).
			h.recvPayload[d.Node] += int64(d.Payload)
			return fw, 0, true
		}
		h.forwarded[d.Node]++
		fw = append(fw, network.PacketSpec{
			Dst:     d.Aux,
			Size:    d.Size,
			Payload: d.Payload,
			Class:   tpsPhase2Class(d.Aux),
			Kind:    kindTPS2,
		})
		return fw, 0, false
	}
	h.recvPayload[d.Node] += int64(d.Payload)
	return fw, 0, true
}

// RunTPS runs the Two Phase Schedule strategy.
func RunTPS(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	shape := opts.Shape
	linear := SelectTPSLinearDim(shape)
	if opts.TPSLinear != nil {
		linear = *opts.TPSLinear
		if linear < 0 || linear >= torus.NumDims {
			return Result{}, fmt.Errorf("collective: invalid TPS linear dimension %d", linear)
		}
	}
	if opts.TPSCreditWindow > 0 {
		return runTPSCredit(opts, linear)
	}
	p := shape.P()
	msg := NewMsg(opts.MsgBytes, opts.Calib.HeaderBytes)
	sources := make([]network.Source, p)
	for n := 0; n < p; n++ {
		sources[n] = &tpsSource{
			shape:  shape,
			self:   shape.Coords(n),
			linear: linear,
			order:  torus.NewDestOrder(p, n, opts.Seed),
			msg:    msg,
			burst:  opts.Burst,
			alpha:  opts.Calib.AlphaAR,
			pace:   opts.pacer(false),
			passes: (msg.NPkts + opts.Burst - 1) / opts.Burst,
		}
	}
	h := &tpsHandler{recvPayload: make([]int64, p), forwarded: make([]int64, p)}
	nw, err := opts.network(sources, h)
	if err != nil {
		return Result{}, err
	}
	t, err := opts.runNet(nw)
	if err != nil {
		opts.dumpOnError(nw, err)
		return Result{}, fmt.Errorf("TPS on %v: %w", shape, err)
	}
	want := int64(p-1) * int64(opts.MsgBytes)
	for n := 0; n < p; n++ {
		if h.recvPayload[n] != want {
			return Result{}, fmt.Errorf("TPS on %v: node %d received %d payload bytes, want %d",
				shape, n, h.recvPayload[n], want)
		}
	}
	r := opts.newResult(StratTPS)
	r.TPSLinearDim = linear
	opts.finishResult(&r, t, nw.Stats())
	r.MaxIntermediateBacklog = nw.Stats().MaxPendingFw
	return r, nil
}
