package collective

import (
	"fmt"

	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// Packet kinds used across the strategies.
const (
	kindDirect uint8 = iota
	kindTPS1
	kindTPS2
	kindTPSCredit
	kindVMesh1
	kindVMesh2
	kindXYZ1 // X-stage packet of the three-phase indirect scheme
	kindXYZ2 // Y-stage
	kindXYZ3 // Z-stage
)

// directSource implements the paper's randomized packet all-to-all: visit
// destinations in a per-node pseudorandom order, injecting `burst` packets
// per visit, cycling until every destination has received its whole
// message. The per-destination startup alpha is charged with the first
// packet of each destination.
type directSource struct {
	order torus.DestOrder
	msg   Msg
	burst int
	alpha int64
	det   bool
	pace  pacer

	idx, pass, inBurst int
	passes             int
}

func newDirectSource(shape torus.Shape, self int, msg Msg, burst int, alpha int64, det bool, seed uint64, pace pacer) *directSource {
	passes := (msg.NPkts + burst - 1) / burst
	return &directSource{
		order:  torus.NewDestOrder(shape.P(), self, seed),
		msg:    msg,
		burst:  burst,
		alpha:  alpha,
		det:    det,
		pace:   pace,
		passes: passes,
	}
}

func (s *directSource) Next(now int64) (network.PacketSpec, network.SrcStatus, int64) {
	if retry, ok := s.pace.gate(now); !ok {
		return network.PacketSpec{}, network.SrcWait, retry
	}
	for {
		if s.idx >= s.order.Len() {
			s.idx = 0
			s.pass++
		}
		if s.pass >= s.passes {
			return network.PacketSpec{}, network.SrcDone, 0
		}
		j := s.pass*s.burst + s.inBurst
		if j >= s.msg.NPkts {
			s.inBurst = 0
			s.idx++
			continue
		}
		dst := int32(s.order.At(s.idx))
		spec := network.PacketSpec{
			Dst:     dst,
			Size:    s.msg.PktSize(j),
			Payload: s.msg.PktPayload(j),
			Det:     s.det,
			Kind:    kindDirect,
			// Spread packets across the injection FIFOs (as BG/L's runtime
			// does) so one congested direction cannot head-of-line block
			// injection toward idle links.
			Class: int8(dst % 60),
		}
		if j == 0 {
			spec.ExtraCPU = s.alpha
		}
		s.inBurst++
		if s.inBurst == s.burst {
			s.inBurst = 0
			s.idx++
		}
		s.pace.charge(now, spec.Size)
		return spec, network.SrcReady, 0
	}
}

// directHandler counts delivered payload per node; all deliveries are final.
type directHandler struct {
	recvPayload []int64
}

func (h *directHandler) OnDeliver(d network.Delivered, fw []network.PacketSpec) ([]network.PacketSpec, int64, bool) {
	h.recvPayload[d.Node] += int64(d.Payload)
	return fw, 0, true
}

func runDirect(opts Options, strat Strategy, det, throttle bool, alpha int64) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	p := opts.Shape.P()
	msg := NewMsg(opts.MsgBytes, opts.Calib.HeaderBytes)
	sources := make([]network.Source, p)
	for n := 0; n < p; n++ {
		sources[n] = newDirectSource(opts.Shape, n, msg, opts.Burst, alpha, det, opts.Seed,
			opts.pacer(throttle))
	}
	h := &directHandler{recvPayload: make([]int64, p)}
	nw, err := opts.network(sources, h)
	if err != nil {
		return Result{}, err
	}
	t, err := opts.runNet(nw)
	if err != nil {
		opts.dumpOnError(nw, err)
		return Result{}, fmt.Errorf("%s on %v: %w", strat, opts.Shape, err)
	}
	want := int64(p-1) * int64(opts.MsgBytes)
	for n := 0; n < p; n++ {
		if h.recvPayload[n] != want {
			return Result{}, fmt.Errorf("%s on %v: node %d received %d payload bytes, want %d",
				strat, opts.Shape, n, h.recvPayload[n], want)
		}
	}
	r := opts.newResult(strat)
	opts.finishResult(&r, t, nw.Stats())
	return r, nil
}

// RunAR runs the direct adaptive-routing strategy (the paper's AR).
func RunAR(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	return runDirect(opts, StratAR, false, false, opts.Calib.AlphaAR)
}

// RunDR runs the direct strategy on the deterministic bubble VC with
// dimension-ordered routing.
func RunDR(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	return runDirect(opts, StratDR, true, false, opts.Calib.AlphaAR)
}

// RunThrottled runs AR with injection paced to the bisection bandwidth.
func RunThrottled(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	return runDirect(opts, StratThrottle, false, true, opts.Calib.AlphaAR)
}

// RunMPI runs the production-MPI-style baseline: the same randomized direct
// schedule with the heavier per-destination startup of the MPI layer.
func RunMPI(opts Options) (Result, error) {
	if err := opts.fill(); err != nil {
		return Result{}, err
	}
	return runDirect(opts, StratMPI, false, false, opts.Calib.AlphaMPI)
}
