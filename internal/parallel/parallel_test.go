package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-2) = %d", got)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), 8, items, func(_ context.Context, i, item int) (int, error) {
		if i != item {
			t.Errorf("index %d paired with item %d", i, item)
		}
		// Vary completion order so ordering cannot come for free.
		time.Sleep(time.Duration(item%3) * time.Microsecond)
		return item * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != 2*i {
			t.Fatalf("result[%d] = %d, want %d", i, r, 2*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, i, item int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	items := make([]int, 64)
	_, err := Map(context.Background(), 2, items, func(_ context.Context, i, _ int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, boom
		}
		// Slow the successes down so the error lands long before the pool
		// could have drained all 64 items.
		time.Sleep(200 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the item error", err)
	}
	if !strings.Contains(err.Error(), "item 3") {
		t.Errorf("error %q does not name the failing item", err)
	}
	// Cancellation must stop workers from draining the whole input.
	if n := calls.Load(); n == int64(len(items)) {
		t.Errorf("all %d items ran despite early error", n)
	}
}

func TestMapMultipleErrors(t *testing.T) {
	// Two items fail "simultaneously" (before either can cancel the other):
	// both must be reported, in index order.
	var gate atomic.Int64
	_, err := Map(context.Background(), 2, []int{0, 1}, func(_ context.Context, i, _ int) (int, error) {
		gate.Add(1)
		for gate.Load() < 2 {
			time.Sleep(time.Microsecond)
		}
		return 0, fmt.Errorf("fail-%d", i)
	})
	if err == nil {
		t.Fatal("no error reported")
	}
	for _, want := range []string{"fail-0", "fail-1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestMapContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := make([]int, 16)
	var calls atomic.Int64
	_, err := Map(ctx, 4, items, func(_ context.Context, i, _ int) (int, error) {
		calls.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d items ran under a cancelled context", calls.Load())
	}
}

func TestMapLocalPerWorkerState(t *testing.T) {
	var made atomic.Int64
	const workers = 4
	items := make([]int, 256)
	type scratch struct{ uses int }
	var totalUses atomic.Int64
	_, err := MapLocal(context.Background(), workers, items,
		func() *scratch {
			made.Add(1)
			return &scratch{}
		},
		func(_ context.Context, s *scratch, i, _ int) (int, error) {
			s.uses++ // would race if a scratch were shared between workers
			totalUses.Add(1)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if made.Load() > workers {
		t.Errorf("%d locals made for %d workers", made.Load(), workers)
	}
	if totalUses.Load() != int64(len(items)) {
		t.Errorf("fn ran %d times, want %d", totalUses.Load(), len(items))
	}
}

func TestMapWorkerClamp(t *testing.T) {
	// More workers than items must not spawn idle goroutines that call mk.
	var made atomic.Int64
	_, err := MapLocal(context.Background(), 64, []int{1, 2},
		func() int { made.Add(1); return 0 },
		func(_ context.Context, _ int, i, _ int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if made.Load() > 2 {
		t.Errorf("made %d locals for 2 items", made.Load())
	}
}

// BenchmarkMapOverhead measures the per-item pool overhead with a trivial
// fn; simulation work items are milliseconds, so anything in the tens of
// nanoseconds disappears.
func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	items := make([]int, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := Map(context.Background(), 0, items, func(_ context.Context, i, _ int) (int, error) {
			return i, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(items))/b.Elapsed().Seconds(), "items/s")
}
