package parallel

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a reusable counter barrier for a fixed set of n participants,
// built for the sharded simulation engine's window loop: crossings are
// frequent (one per handful of microseconds of useful work) and the
// participant count is small, so a generation-counting spin with a Gosched
// fallback beats channel- or cond-based rendezvous by an order of magnitude
// and still behaves on oversubscribed (even single-core) machines.
//
// The atomics also carry the ordering obligation: everything a participant
// wrote before Await is visible to every participant after the matching
// return (each arrival is observed by the last arriver's counter increment,
// whose generation bump is in turn observed by every waiter's load).
type Barrier struct {
	n       int32
	arrived atomic.Int32
	gen     atomic.Uint32
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	return &Barrier{n: int32(n)}
}

// Await blocks until all n participants have called it, then releases them
// all. The barrier is immediately reusable for the next crossing.
func (b *Barrier) Await() {
	g := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		// Last arriver: reset the count for the next crossing before
		// opening the gate (waiters only watch gen, so the order is safe).
		b.arrived.Store(0)
		b.gen.Add(1)
		return
	}
	// Brief spin for the common case of near-simultaneous arrival, then
	// yield: with fewer cores than participants (or a single core) the
	// missing arrivals can only happen if this goroutine gets off the CPU.
	for spin := 0; b.gen.Load() == g; spin++ {
		if spin >= 64 {
			runtime.Gosched()
		}
	}
}
