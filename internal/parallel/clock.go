package parallel

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Clocks is a fixed-size array of independently published int64 values, one
// per worker, each padded to its own cache line so a publisher never
// invalidates its neighbors' lines. It is the communication primitive of the
// asynchronous conservative engine (network.SyncAsync): each shard publishes
// the virtual time it has fully processed, and every other shard reads those
// clocks to bound its own safe horizon. The same structure doubles as the
// progress-generation and idle-flag arrays of the termination detector.
//
// Publish and Load use Go's atomic Store/Load, which are sequentially
// consistent: everything a shard wrote before Publish(i, t) - in particular
// the cross-shard messages it appended to its outbound rings - is visible to
// any shard that observes clock i at (or past) t. That release/acquire pairing
// is what makes "read clocks, then drain rings" a sound protocol order on the
// consumer side (see network/shard_async.go).
type Clocks struct {
	slots []clockSlot
}

// clockSlot pads each published value to a 64-byte cache line.
type clockSlot struct {
	v atomic.Int64
	_ [56]byte
}

// NewClocks returns n clocks, all zero.
func NewClocks(n int) *Clocks {
	return &Clocks{slots: make([]clockSlot, n)}
}

// Len returns the number of clocks.
func (c *Clocks) Len() int { return len(c.slots) }

// Publish atomically stores v as clock i.
func (c *Clocks) Publish(i int, v int64) { c.slots[i].v.Store(v) }

// Load atomically reads clock i.
func (c *Clocks) Load(i int) int64 { return c.slots[i].v.Load() }

// Reset zeroes every clock. Callers must ensure no concurrent publishers.
func (c *Clocks) Reset() {
	for i := range c.slots {
		c.slots[i].v.Store(0)
	}
}

// Backoff is an exponential waiting strategy for a shard whose safe horizon
// is blocked on its peers: a few busy spins (the peer is usually mid-window
// and finishes in nanoseconds), then cooperative yields, then escalating
// sleeps capped low enough that a freshly unblocked horizon is picked up
// quickly. The zero value is ready to use; Reset after any progress.
type Backoff struct {
	fails int
}

// spin/yield thresholds and the sleep cap. Yield early: on a single-core
// host every spin iteration only delays the peer that would unblock us.
const (
	backoffSpin  = 4                      // pure spins before yielding
	backoffYield = 64                     // Gosched rounds before sleeping
	backoffCap   = 128 * time.Microsecond // longest single sleep
)

// Reset clears the failure streak; call after the awaited condition held.
func (b *Backoff) Reset() { b.fails = 0 }

// Wait blocks appropriately for the current failure streak and records one
// more failure.
func (b *Backoff) Wait() {
	b.fails++
	switch {
	case b.fails <= backoffSpin:
		// Busy spin: cheap, and the common case resolves here on
		// multi-core hosts.
	case b.fails <= backoffYield:
		runtime.Gosched()
	default:
		d := time.Microsecond << uint(min(b.fails-backoffYield, 7))
		if d > backoffCap {
			d = backoffCap
		}
		time.Sleep(d)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
