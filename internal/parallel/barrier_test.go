package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestBarrierPhases checks that no participant enters phase k+1 before all
// have finished phase k, across many reuse cycles.
func TestBarrierPhases(t *testing.T) {
	const workers = 7
	const phases = 200
	b := NewBarrier(workers)
	var done [phases]atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for p := 0; p < phases; p++ {
				done[p].Add(1)
				b.Await()
				if got := done[p].Load(); got != workers {
					errs <- "crossed barrier before all workers finished the phase"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestBarrierPublishes checks the memory-ordering contract: a write made
// before Await is visible to another participant after it, without any
// additional synchronization.
func TestBarrierPublishes(t *testing.T) {
	b := NewBarrier(2)
	var plain [1000]int // deliberately non-atomic
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range plain {
			plain[i] = i + 1
		}
		b.Await()
	}()
	b.Await()
	for i := range plain {
		if plain[i] != i+1 {
			t.Fatalf("plain[%d] = %d after barrier", i, plain[i])
		}
	}
	wg.Wait()
}

func BenchmarkBarrier(bm *testing.B) {
	const workers = 4
	b := NewBarrier(workers)
	n := bm.N // every participant crosses exactly n times
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				b.Await()
			}
		}()
	}
	bm.ResetTimer()
	for i := 0; i < n; i++ {
		b.Await()
	}
	wg.Wait()
}
