package parallel

import (
	"sync"
	"testing"
	"time"
)

func TestClocksBasics(t *testing.T) {
	c := NewClocks(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	for i := 0; i < 3; i++ {
		if v := c.Load(i); v != 0 {
			t.Fatalf("fresh clock %d = %d, want 0", i, v)
		}
	}
	c.Publish(1, 42)
	if got := c.Load(1); got != 42 {
		t.Fatalf("Load(1) = %d, want 42", got)
	}
	if got := c.Load(0); got != 0 {
		t.Fatalf("Publish(1) disturbed clock 0: %d", got)
	}
	c.Reset()
	for i := 0; i < 3; i++ {
		if v := c.Load(i); v != 0 {
			t.Fatalf("clock %d = %d after Reset, want 0", i, v)
		}
	}
}

// TestClocksPublishOrdering pins the release/acquire contract the async
// engine leans on: data written before Publish must be visible to a reader
// that observed the published value. Run under -race this also proves the
// pattern is a proper synchronization edge, not a benign data race.
func TestClocksPublishOrdering(t *testing.T) {
	const rounds = 2000
	c := NewClocks(1)
	data := make([]int64, rounds+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= rounds; i++ {
			data[i] = i * 3 // the "ring append" before the publish
			c.Publish(0, i)
		}
	}()
	seen := int64(0)
	for seen < rounds {
		v := c.Load(0)
		if v < seen {
			t.Fatalf("clock went backwards: %d after %d", v, seen)
		}
		if v > seen {
			if data[v] != v*3 {
				t.Fatalf("observed clock %d but data[%d] = %d (publish did not order the write)",
					v, v, data[v])
			}
			seen = v
		}
	}
	wg.Wait()
}

func TestClocksConcurrentSlots(t *testing.T) {
	const workers, steps = 8, 1000
	c := NewClocks(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int64(1); v <= steps; v++ {
				c.Publish(w, v)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if got := c.Load(w); got != steps {
			t.Errorf("clock %d = %d, want %d", w, got, steps)
		}
	}
}

// TestBackoffEscalation checks the waiting schedule's shape: the first few
// waits spin (no sleep), the streak escalates into bounded sleeps, and Reset
// returns to the spin phase.
func TestBackoffEscalation(t *testing.T) {
	var b Backoff
	start := time.Now()
	for i := 0; i < backoffSpin; i++ {
		b.Wait()
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Errorf("spin phase took %v; should not sleep", d)
	}
	// Drive deep into the sleep phase: every wait must stay under the cap
	// (plus generous scheduler slack).
	for i := 0; i < 20; i++ {
		s := time.Now()
		b.Wait()
		if d := time.Since(s); d > backoffCap+50*time.Millisecond {
			t.Fatalf("wait %d slept %v, cap is %v", i, d, backoffCap)
		}
	}
	b.Reset()
	if b.fails != 0 {
		t.Fatalf("fails = %d after Reset", b.fails)
	}
}
