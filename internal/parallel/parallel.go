// Package parallel provides a bounded worker pool for fanning independent
// simulation runs across cores. Every experiment in this repository is a set
// of deterministic-per-seed simulations with no shared mutable state, so the
// pool's only jobs are bounding concurrency, preserving the input order of
// results, and aggregating errors.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a -j style worker-count flag: values <= 0 select
// GOMAXPROCS (one worker per available core).
func Workers(j int) int {
	if j > 0 {
		return j
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn over every item on up to Workers(workers) goroutines and
// returns the results in input order. The first error cancels the context
// passed to still-pending fn calls and stops workers from claiming further
// items; errors from items that were already running are aggregated in index
// order. Items skipped because of cancellation leave zero values in the
// result slice.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	return MapLocal(ctx, workers, items, func() struct{} { return struct{}{} },
		func(ctx context.Context, _ struct{}, i int, item T) (R, error) {
			return fn(ctx, i, item)
		})
}

// MapLocal is Map with per-worker state: mk runs once on each worker
// goroutine and its value is handed to every fn call that worker executes.
// Use it to carry expensive reusable scratch (e.g. a simulation network
// recycled across sweep points) without sharing it between goroutines.
func MapLocal[T, R, L any](ctx context.Context, workers int, items []T, mk func() L, fn func(ctx context.Context, local L, i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	results := make([]R, n)
	if n == 0 {
		return results, ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			local := mk()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(ctx, local, i, items[i])
				if err != nil {
					errs[i] = err
					cancel()
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	var joined []error
	for i, err := range errs {
		if err != nil {
			if len(items) > 1 {
				err = fmt.Errorf("item %d: %w", i, err)
			}
			joined = append(joined, err)
		}
	}
	if len(joined) > 0 {
		return results, errors.Join(joined...)
	}
	return results, ctx.Err()
}
