package traffic

import (
	"strings"
	"testing"

	"alltoall/internal/torus"
)

func shape844() torus.Shape { return torus.New(8, 4, 4) }

func TestShiftPattern(t *testing.T) {
	s := shape844()
	res, err := Run(Shift{Offset: 3}, Options{Shape: s, MsgBytes: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(s.P()) {
		t.Errorf("messages = %d, want %d", res.Messages, s.P())
	}
	if res.Time <= 0 || res.PerNodeMBs <= 0 {
		t.Errorf("bad result %+v", res)
	}
}

func TestShiftZeroOffsetRejected(t *testing.T) {
	if _, err := Run(Shift{Offset: 0}, Options{Shape: shape844(), MsgBytes: 64}); err == nil {
		t.Error("self-only pattern accepted")
	}
}

func TestDimShift(t *testing.T) {
	s := shape844()
	res, err := Run(DimShift{Dim: torus.X, Hops: 1}, Options{Shape: s, MsgBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	// A +1 X shift is pure nearest-neighbour: it should run close to link
	// speed with very low contention.
	if res.MaxLinkUtil > 1.0 {
		t.Errorf("util %v > 1", res.MaxLinkUtil)
	}
	if !strings.HasPrefix(res.Pattern, "dimshift-X") {
		t.Errorf("pattern name %q", res.Pattern)
	}
}

func TestTransposeNeedsSquare(t *testing.T) {
	if _, err := Run(Transpose{}, Options{Shape: shape844(), MsgBytes: 64}); err == nil {
		t.Error("transpose on non-square XY accepted")
	}
	res, err := Run(Transpose{}, Options{Shape: torus.New(4, 4, 4), MsgBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal nodes don't send; everyone else exchanges.
	p := int64(64)
	diag := int64(4 * 4) // x==y for each z
	if res.Messages != p-diag {
		t.Errorf("messages = %d, want %d", res.Messages, p-diag)
	}
}

func TestRandomPermutation(t *testing.T) {
	s := shape844()
	res, err := Run(RandomPermutation{Seed: 9}, Options{Shape: s, MsgBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(s.P()) {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestHotSpotIncast(t *testing.T) {
	s := torus.New(4, 4, 1)
	res, err := Run(HotSpot{Root: 5}, Options{Shape: s, MsgBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(s.P()-1) {
		t.Errorf("messages = %d", res.Messages)
	}
	// Incast serializes on the root's reception: completion is at least
	// (P-1) wire messages through the root's links (4 links here).
	if res.Time < int64(s.P()-1)*256/6 {
		t.Errorf("incast finished implausibly fast: %d", res.Time)
	}
}

func TestRandomSubset(t *testing.T) {
	s := shape844()
	res, err := Run(RandomSubset{K: 5, Seed: 3}, Options{Shape: s, MsgBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != int64(5*s.P()) {
		t.Errorf("messages = %d, want %d", res.Messages, 5*s.P())
	}
	// K larger than P-1 clamps.
	res2, err := Run(RandomSubset{K: 1000, Seed: 3}, Options{Shape: torus.New(4, 2, 1), MsgBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Messages != int64(7*8) {
		t.Errorf("clamped messages = %d, want 56", res2.Messages)
	}
}

func TestDeterministicRoutingPattern(t *testing.T) {
	s := shape844()
	res, err := Run(RandomPermutation{Seed: 4}, Options{Shape: s, MsgBytes: 512, Det: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Error("no completion time")
	}
}

func TestPatternValidation(t *testing.T) {
	if _, err := Run(Shift{Offset: 1}, Options{Shape: torus.Shape{Size: [3]int{0, 1, 1}}, MsgBytes: 8}); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := Run(Shift{Offset: 1}, Options{Shape: shape844(), MsgBytes: 0}); err == nil {
		t.Error("zero message accepted")
	}
}

func TestPatternDestinationsPure(t *testing.T) {
	// Property: Destinations never yields self or out-of-range ranks for
	// any pattern in the catalogue.
	s := torus.New(4, 4, 2)
	pats := []Pattern{
		Shift{Offset: 7}, DimShift{Dim: torus.Z, Hops: 1}, RandomPermutation{Seed: 2},
		HotSpot{Root: 3}, RandomSubset{K: 4, Seed: 8},
	}
	for _, pat := range pats {
		for src := 0; src < s.P(); src++ {
			for _, d := range pat.Destinations(s, src) {
				if d == src || d < 0 || d >= s.P() {
					t.Fatalf("%s: bad destination %d from %d", pat.Name(), d, src)
				}
			}
		}
	}
}
