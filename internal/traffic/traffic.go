// Package traffic generalizes the communication substrate beyond the
// paper's all-to-all: it generates many-to-many patterns (permutations,
// shifts, transposes, hot spots, random subsets) and runs them on the
// simulated torus with the same packetization, pacing and routing machinery
// as the collective strategies. The paper's introduction motivates exactly
// this: "we hope the performance analysis and the optimization techniques
// ... can be also applied for more complex many-to-many communication
// patterns".
package traffic

import (
	"context"
	"fmt"
	"math/rand"

	"alltoall/internal/collective"
	"alltoall/internal/model"
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// Pattern produces, for every source rank, the list of destination ranks it
// sends one message to. Destinations may repeat (multiple messages) but
// must not include the source itself.
type Pattern interface {
	Name() string
	Destinations(shape torus.Shape, src int) []int
}

// Shift sends every node one message to the node Offset ranks away
// (wrapping): a classic neighbor/ring exchange.
type Shift struct{ Offset int }

func (s Shift) Name() string { return fmt.Sprintf("shift+%d", s.Offset) }

// Destinations implements Pattern.
func (s Shift) Destinations(shape torus.Shape, src int) []int {
	p := shape.P()
	d := ((src+s.Offset)%p + p) % p
	if d == src {
		return nil
	}
	return []int{d}
}

// DimShift sends along one torus dimension by a fixed hop count: every node
// (x,y,z) sends to the node Hops away in Dim.
type DimShift struct {
	Dim  torus.Dim
	Hops int
}

func (s DimShift) Name() string { return fmt.Sprintf("dimshift-%v+%d", s.Dim, s.Hops) }

// Destinations implements Pattern.
func (s DimShift) Destinations(shape torus.Shape, src int) []int {
	c := shape.Coords(src)
	k := shape.Size[s.Dim]
	c[s.Dim] = ((c[s.Dim]+s.Hops)%k + k) % k
	d := shape.Rank(c)
	if d == src {
		return nil
	}
	return []int{d}
}

// Transpose exchanges X and Y coordinates (matrix transpose on the XY
// planes), a common FFT/linear-algebra pattern with heavy link reuse.
type Transpose struct{}

func (Transpose) Name() string { return "transpose" }

// Destinations implements Pattern.
func (Transpose) Destinations(shape torus.Shape, src int) []int {
	if shape.Size[torus.X] != shape.Size[torus.Y] {
		return nil // undefined off the square; validated by Run
	}
	c := shape.Coords(src)
	c[torus.X], c[torus.Y] = c[torus.Y], c[torus.X]
	d := shape.Rank(c)
	if d == src {
		return nil
	}
	return []int{d}
}

// RandomPermutation sends every node one message to a distinct random
// partner (a permutation with no fixed points where possible).
type RandomPermutation struct{ Seed uint64 }

func (RandomPermutation) Name() string { return "randperm" }

// Destinations implements Pattern.
func (r RandomPermutation) Destinations(shape torus.Shape, src int) []int {
	// Derangement-ish: use the shared keyed permutation; map fixed points
	// to the next rank.
	p := shape.P()
	perm := torus.NewPerm(p, r.Seed|1)
	d := perm.At(src)
	if d == src {
		d = (d + 1) % p
	}
	return []int{d}
}

// HotSpot sends every node one message to a single root (all-to-one
// incast): the worst case for reception-side contention.
type HotSpot struct{ Root int }

func (h HotSpot) Name() string { return fmt.Sprintf("hotspot@%d", h.Root) }

// Destinations implements Pattern.
func (h HotSpot) Destinations(shape torus.Shape, src int) []int {
	if src == h.Root%shape.P() {
		return nil
	}
	return []int{h.Root % shape.P()}
}

// RandomSubset sends every node one message to each of K distinct random
// peers: the general many-to-many pattern.
type RandomSubset struct {
	K    int
	Seed uint64
}

func (r RandomSubset) Name() string { return fmt.Sprintf("many-to-%d", r.K) }

// Destinations implements Pattern.
func (r RandomSubset) Destinations(shape torus.Shape, src int) []int {
	p := shape.P()
	k := r.K
	if k > p-1 {
		k = p - 1
	}
	rng := rand.New(rand.NewSource(int64(r.Seed)*1e9 + int64(src)))
	seen := map[int]bool{src: true}
	out := make([]int, 0, k)
	for len(out) < k {
		d := rng.Intn(p)
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// Options configures a pattern run.
type Options struct {
	Shape    torus.Shape
	MsgBytes int
	Seed     uint64
	Det      bool           // deterministic (dimension-ordered) routing
	Par      network.Params // zero value: network.DefaultParams()
	MaxTime  int64
}

// Result reports a pattern run.
type Result struct {
	Pattern          string
	Shape            torus.Shape
	MsgBytes         int
	Messages         int64
	Time             int64
	Seconds          float64
	MeanLatencyUnits float64
	MaxLinkUtil      float64
	MeanLinkUtil     float64
	PerNodeMBs       float64 // delivered payload per node per second
}

// patternSource emits the packetized messages for one node's destination
// list.
type patternSource struct {
	dests []int32
	msg   collective.Msg
	det   bool
	di, j int
}

func (s *patternSource) Next(now int64) (network.PacketSpec, network.SrcStatus, int64) {
	if s.di >= len(s.dests) {
		return network.PacketSpec{}, network.SrcDone, 0
	}
	spec := network.PacketSpec{
		Dst:     s.dests[s.di],
		Size:    s.msg.PktSize(s.j),
		Payload: s.msg.PktPayload(s.j),
		Det:     s.det,
		Class:   int8(s.dests[s.di] % 60),
	}
	s.j++
	if s.j == s.msg.NPkts {
		s.j = 0
		s.di++
	}
	return spec, network.SrcReady, 0
}

type patternHandler struct {
	recv []int64
}

func (h *patternHandler) OnDeliver(d network.Delivered, fw []network.PacketSpec) ([]network.PacketSpec, int64, bool) {
	h.recv[d.Node] += int64(d.Payload)
	return fw, 0, true
}

// RunOpts executes a pattern under a context with the collective Options
// vocabulary, the engine behind alltoall.RunPatternContext: pattern runs
// share the same option set as the all-to-all strategies (shape, message
// size, seed, shards, check, event queue, coalescing, faults via the
// effective machine parameters, MaxTime) plus Options.DetRouting for
// deterministic dimension-ordered routing. Cancellation aborts the run with
// an error wrapping network.ErrCanceled; an exceeded time bound wraps
// network.ErrMaxTime.
func RunOpts(ctx context.Context, pat Pattern, o collective.Options) (Result, error) {
	opts := Options{
		Shape:    o.Shape,
		MsgBytes: o.MsgBytes,
		Seed:     o.Seed,
		Det:      o.DetRouting,
		Par:      o.NetParams(),
		MaxTime:  o.MaxTime,
	}
	var cancel <-chan struct{}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		cancel = ctx.Done()
	}
	return run(pat, opts, cancel, o.Shards)
}

// Run executes a pattern on the simulated torus.
//
// Deprecated: Run is the legacy struct-options entry point, kept as a thin
// wrapper; prefer RunOpts (alltoall.RunPatternContext), which adds
// cancellation, engine sharding, and the unified option set.
func Run(pat Pattern, opts Options) (Result, error) {
	return run(pat, opts, nil, 1)
}

// run is the shared pattern executor.
func run(pat Pattern, opts Options, cancel <-chan struct{}, shards int) (Result, error) {
	if err := opts.Shape.Validate(); err != nil {
		return Result{}, err
	}
	if opts.MsgBytes < 1 {
		return Result{}, fmt.Errorf("traffic: MsgBytes must be >= 1")
	}
	if opts.Par == (network.Params{}) {
		opts.Par = network.DefaultParams()
	}
	calib := model.DefaultCalib()
	p := opts.Shape.P()
	msg := collective.NewMsg(opts.MsgBytes, calib.HeaderBytes)
	sources := make([]network.Source, p)
	var messages int64
	wantRecv := make([]int64, p)
	for n := 0; n < p; n++ {
		ds := pat.Destinations(opts.Shape, n)
		dests := make([]int32, len(ds))
		for i, d := range ds {
			if d == n || d < 0 || d >= p {
				return Result{}, fmt.Errorf("traffic: pattern %s produced invalid destination %d from %d",
					pat.Name(), d, n)
			}
			dests[i] = int32(d)
			wantRecv[d] += int64(opts.MsgBytes)
		}
		messages += int64(len(ds))
		sources[n] = &patternSource{dests: dests, msg: msg, det: opts.Det}
	}
	if messages == 0 {
		return Result{}, fmt.Errorf("traffic: pattern %s sends nothing on %v", pat.Name(), opts.Shape)
	}
	h := &patternHandler{recv: make([]int64, p)}
	nw, err := network.New(opts.Shape, opts.Par, sources, h)
	if err != nil {
		return Result{}, err
	}
	nw.SetCancel(cancel)
	maxTime := opts.MaxTime
	if maxTime == 0 {
		maxTime = int64(messages)*msg.Wire*int64(p) + 1<<24
	}
	if shards < 1 {
		shards = 1
	}
	t, err := nw.RunSharded(maxTime, shards)
	if err != nil {
		return Result{}, fmt.Errorf("traffic: %s on %v: %w", pat.Name(), opts.Shape, err)
	}
	for n := 0; n < p; n++ {
		if h.recv[n] != wantRecv[n] {
			return Result{}, fmt.Errorf("traffic: %s on %v: node %d received %d bytes, want %d",
				pat.Name(), opts.Shape, n, h.recv[n], wantRecv[n])
		}
	}
	st := nw.Stats()
	res := Result{
		Pattern:          pat.Name(),
		Shape:            opts.Shape,
		MsgBytes:         opts.MsgBytes,
		Messages:         messages,
		Time:             t,
		Seconds:          calib.Seconds(float64(t)),
		MeanLatencyUnits: st.MeanLatency(),
		MaxLinkUtil:      st.MaxLinkUtilization(t),
		MeanLinkUtil:     st.MeanLinkUtilization(t, opts.Shape.LinkCount()),
	}
	if t > 0 {
		bytesPerUnit := float64(messages) * float64(opts.MsgBytes) / float64(p) / float64(t)
		res.PerNodeMBs = bytesPerUnit / calib.BetaNsPerByte * 1e3
	}
	return res, nil
}
