package traffic

import (
	"context"
	"errors"
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// TestRunOptsMatchesRun pins the unified-options entry point to the legacy
// struct path: same pattern, same configuration, identical Result.
func TestRunOptsMatchesRun(t *testing.T) {
	s := torus.New(4, 4, 2)
	legacy, err := Run(Shift{Offset: 3}, Options{Shape: s, MsgBytes: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	unified, err := RunOpts(context.Background(), Shift{Offset: 3},
		collective.Options{Shape: s, MsgBytes: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if legacy != unified {
		t.Errorf("RunOpts diverged from Run:\nlegacy  %+v\nunified %+v", legacy, unified)
	}
}

// TestRunOptsSharded checks pattern runs on the window-parallel engine
// produce the identical result as the serial engine.
func TestRunOptsSharded(t *testing.T) {
	s := torus.New(4, 4, 2)
	serial, err := RunOpts(context.Background(), Shift{Offset: 5},
		collective.Options{Shape: s, MsgBytes: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunOpts(context.Background(), Shift{Offset: 5},
		collective.Options{Shape: s, MsgBytes: 256, Seed: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial != sharded {
		t.Errorf("sharded pattern run diverged:\nserial  %+v\nsharded %+v", serial, sharded)
	}
}

func TestRunOptsDetRouting(t *testing.T) {
	s := torus.New(4, 4, 2)
	adaptive, err := RunOpts(context.Background(), Transpose{},
		collective.Options{Shape: s, MsgBytes: 512, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	det, err := RunOpts(context.Background(), Transpose{},
		collective.Options{Shape: s, MsgBytes: 512, Seed: 1, DetRouting: true})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Messages != det.Messages {
		t.Errorf("routing mode changed message count: %d vs %d", adaptive.Messages, det.Messages)
	}
}

func TestRunOptsPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunOpts(ctx, Shift{Offset: 1},
		collective.Options{Shape: torus.New(4, 4, 2), MsgBytes: 64})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestRunCanceledMidRun drives the engine's cancellation path directly: a
// closed cancel channel aborts the simulation with ErrCanceled.
func TestRunCanceledMidRun(t *testing.T) {
	closed := make(chan struct{})
	close(closed)
	_, err := run(RandomSubset{K: 8, Seed: 3},
		Options{Shape: torus.New(8, 4, 4), MsgBytes: 4096}, closed, 1)
	if !errors.Is(err, network.ErrCanceled) {
		t.Errorf("err = %v, want wrapping network.ErrCanceled", err)
	}
}

func TestRunOptsMaxTime(t *testing.T) {
	for _, shards := range []int{1, 4} {
		_, err := RunOpts(context.Background(), Shift{Offset: 1},
			collective.Options{Shape: torus.New(4, 4, 2), MsgBytes: 4096, MaxTime: 50, Shards: shards})
		if !errors.Is(err, network.ErrMaxTime) {
			t.Errorf("shards=%d: err = %v, want wrapping network.ErrMaxTime", shards, err)
		}
	}
}
