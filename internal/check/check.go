// Package check defines the vocabulary of the simulator's runtime
// conformance layer: named invariants of the Blue Gene/L torus model and a
// structured, node/time-stamped violation type.
//
// The network engine validates these invariants at event granularity when
// network.Params.Check is set (see internal/network/invariant.go for the
// enforcement sites); the property/metamorphic suite in internal/conformance
// runs every strategy with checking enabled. The invariants are the
// conservation laws the reproduction's credibility rests on - a silent
// violation of any of them can masquerade as a contention finding.
package check

import "fmt"

// Invariant names one conservation law of the simulated machine.
type Invariant string

const (
	// CreditConservation: per (link, VC) token accounting. A router never
	// holds more credits for a neighbour's input VC than that VC's capacity,
	// and at quiescence every credit is back home (tokens == VCBytes).
	CreditConservation Invariant = "credit-conservation"

	// BubbleSlots: Puente's bubble rule on the escape VC. Escape-channel
	// tokens are whole max-packet slots: never negative, never fragmented,
	// and a packet joining a ring leaves at least one free slot behind.
	BubbleSlots Invariant = "bubble-slots"

	// FIFOOccupancy: every FIFO (input VC, injection, reception) stays
	// within its byte budget - dynamic VCs may overshoot by strictly less
	// than one max packet (flit-credit streaming), the bubble VC and the
	// injection/reception FIFOs not at all.
	FIFOOccupancy Invariant = "fifo-occupancy"

	// MonotonicTime: event timestamps never move backward - within an
	// engine's pop sequence, and across shard windows: a cross-shard
	// message must land at or after the receiving shard's clock.
	MonotonicTime Invariant = "monotonic-time"

	// Quiescence: at end of run every injected packet was delivered exactly
	// once, every queue is empty, every credit is home, and no CPU or
	// forwarding backlog remains.
	Quiescence Invariant = "quiescence"

	// OccupancyMask: the router's non-empty-queue bitmask agrees with the
	// queues (an internal arbitration index; drift would silently skip
	// queues during service).
	OccupancyMask Invariant = "occupancy-mask"

	// LinkLiveness: fault-injection discipline. A router never grants a
	// packet onto a link that is down, outage bookkeeping stays coherent
	// (a down link has an open outage interval, an up link does not), and
	// degraded links carry a sane stretch factor.
	LinkLiveness Invariant = "link-liveness"
)

// Violation is one detected invariant breach, stamped with the node and
// simulation time at which it was caught.
type Violation struct {
	Invariant Invariant
	Node      int32
	Time      int64
	Detail    string
}

// Error formats the violation as "check: <invariant> violated at node N
// t=T: detail", the diagnostic shape the conformance suite asserts on.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: %s violated at node %d t=%d: %s", v.Invariant, v.Node, v.Time, v.Detail)
}

// Violatef builds a Violation with a formatted detail string.
func Violatef(inv Invariant, node int32, t int64, format string, args ...any) *Violation {
	return &Violation{Invariant: inv, Node: node, Time: t, Detail: fmt.Sprintf(format, args...)}
}
