package network

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"alltoall/internal/check"
	"alltoall/internal/parallel"
)

// The asynchronous conservative engine (Params.Sync = SyncAsync, the
// default) replaces the BSP window barriers with published per-shard clocks,
// Chandy-Misra-Bryant style with the null messages folded into the clocks:
// each shard atomically publishes the virtual time it has fully processed
// and advances independently to
//
//	safe(i) = min over shards j != i of (clock[j] + lookahead[j][i])
//
// where lookahead[j][i] is precomputed per run as (shard-graph boundary hop
// distance between slabs j and i) x shardSafeWindow. Every direct cross-shard
// message travels between physically adjacent slabs (an arrival or credit
// targets a neighbour of the emitting node), and every cross-node effect
// costs at least one window of delay per hop - faults only lengthen paths
// and degraded links only stretch occupancy - so a message from shard j can
// never land before clock[j] + lookahead[j][i]. A distant shard constrains
// only transitively, through the chain of adjacent clocks; the full matrix
// is kept because it is tiny and only ever tightens the horizon. See
// DESIGN.md section 13 for the safety proof.
//
// Determinism: cross-shard messages travel through single-producer/single-
// consumer rings and land in a per-engine staged heap ordered by the same
// (t, node, kind, arg) key as the event queue. A staged message enters the
// simulator only at its deterministic virtual due point - when its whole
// (t, node, kind) group key would become the minimum pending item - and the
// entire group is inserted together, so accumulator state, queue pops, and
// every elision decision are pure functions of virtual time, independent of
// when the bytes physically arrived. Output is byte-identical to the serial
// and BSP engines at any shard count.
//
// Termination is a double-scan detector over three published arrays (reusing
// parallel.Clocks as generation counters and idle flags) plus a global count
// of sent-but-not-yet-staged messages; see tryTerminate.

// Sync protocol selectors for Params.Sync.
const (
	// SyncAsync is the asynchronous conservative engine (this file).
	SyncAsync = "async"
	// SyncBSP is the escape hatch: the original barrier protocol advancing
	// every shard in lockstep windows of width shardSafeWindow (shard.go).
	SyncBSP = "bsp"
)

// xmsgBytes is the wire size charged per cross-shard message in
// SyncStats.CrossShardBytes (the in-memory struct size: what actually moves
// between the workers' caches).
var xmsgBytes = int64(unsafe.Sizeof(xmsg{}))

// creditWordBytes is the per-credit cost of the BSP batched word stream.
const creditWordBytes = 8

// SyncStats reports the synchronization layer's counters for the most recent
// successful run. Unlike Stats these are scheduling- and wall-clock-dependent
// (except under SyncBSP, where the counts are structural), which is why they
// live outside Stats: the byte-identity oracles DeepEqual Stats across
// engines and shard counts, and these counters are exactly the part that may
// differ.
type SyncStats struct {
	// Mode is "serial", SyncBSP, or SyncAsync - whichever engine ran.
	Mode string
	// Shards is the worker count of the run (1 for serial).
	Shards int
	// HorizonAdvances counts safe-horizon advances (async) or processed
	// windows (bsp) summed over shards.
	HorizonAdvances int64
	// BlockedWaits counts blocked-wait episodes: transitions into waiting on
	// a peer's clock (async) or barrier crossings (bsp, structural).
	BlockedWaits int64
	// BlockedWaitNs is wall time spent in blocked episodes (async only; the
	// bsp barrier is not instrumented - timing it would slow the engine the
	// async one is benchmarked against).
	BlockedWaitNs int64
	// CrossShardEvents / CrossShardBytes count messages (logical arrivals
	// and credits) and bytes crossing shard boundaries. Bytes are mode-
	// dependent by design: bsp coalesced credits travel as 8-byte packed
	// words, async credits as full messages (see sendCredit).
	CrossShardEvents int64
	CrossShardBytes  int64
	// LookaheadMin/Max summarize the lookahead matrix (both equal the
	// uniform window under bsp; zero for serial).
	LookaheadMin int64
	LookaheadMax int64
}

// Add accumulates o into s for multi-phase workloads: counters sum, the
// identity fields (Mode, Shards) take o's values, and the lookahead summary
// folds min/max across phases.
func (s *SyncStats) Add(o *SyncStats) {
	s.Mode = o.Mode
	s.Shards = o.Shards
	s.HorizonAdvances += o.HorizonAdvances
	s.BlockedWaits += o.BlockedWaits
	s.BlockedWaitNs += o.BlockedWaitNs
	s.CrossShardEvents += o.CrossShardEvents
	s.CrossShardBytes += o.CrossShardBytes
	if s.LookaheadMin == 0 || (o.LookaheadMin != 0 && o.LookaheadMin < s.LookaheadMin) {
		s.LookaheadMin = o.LookaheadMin
	}
	if o.LookaheadMax > s.LookaheadMax {
		s.LookaheadMax = o.LookaheadMax
	}
}

// SyncStats returns the synchronization-layer counters of the most recent
// successful run. The value is a snapshot; it does not alias engine state.
func (nw *Network) SyncStats() SyncStats { return nw.syncStats }

// xring is a bounded single-producer/single-consumer ring of cross-shard
// messages. The producer owns w, the consumer owns r; each is padded to its
// own cache line so the two sides never false-share. put spins (yielding)
// when full - the consumer drains every loop iteration, so the wait is
// bounded by one receiver wakeup - and bails out when the run is aborting.
type xring struct {
	buf  []xmsg
	mask int64
	_    [32]byte
	w    atomic.Int64
	_    [56]byte
	r    atomic.Int64
	_    [56]byte
}

// xringCap is the ring capacity in messages (power of two). Sized so a full
// window of boundary traffic rarely fills it; when it does, put's spin is
// the flow control.
const xringCap = 1024

func newXring() *xring {
	return &xring{buf: make([]xmsg, xringCap), mask: xringCap - 1}
}

func (q *xring) put(m *xmsg, abort *atomic.Bool) {
	w := q.w.Load()
	for w-q.r.Load() == int64(len(q.buf)) {
		if abort.Load() {
			return // run is failing; the message can be dropped
		}
		runtime.Gosched()
	}
	q.buf[w&q.mask] = *m
	q.w.Store(w + 1)
}

// stagedHeap is a binary min-heap of inbound cross-shard messages ordered by
// the event queue's own strict total order (t, then the packed
// node/kind/arg key), so the due-point scan in processUntilAsync compares
// like with like.
type stagedHeap struct {
	ms []xmsg
}

// xmsgKey packs node/kind/arg exactly as event.key does (heap.go). Staged
// arrivals carry arg 0 (their heap arg is assigned at insertion, from the
// receiver's packet pool), which makes simultaneous arrivals at one node a
// single group - and their relative staging order irrelevant, since the
// coalescing accumulator (or the event heap) re-establishes the
// pid-independent arrival order on insertion.
func xmsgKey(m *xmsg) uint64 {
	return uint64(uint32(m.node))<<35 | uint64(m.kind)<<32 | uint64(uint32(m.arg))
}

func xmsgLess(a, b *xmsg) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return xmsgKey(a) < xmsgKey(b)
}

func (h *stagedHeap) len() int   { return len(h.ms) }
func (h *stagedHeap) top() *xmsg { return &h.ms[0] }
func (h *stagedHeap) reset()     { h.ms = h.ms[:0] }

func (h *stagedHeap) push(m *xmsg) {
	h.ms = append(h.ms, *m)
	i := len(h.ms) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !xmsgLess(&h.ms[i], &h.ms[p]) {
			break
		}
		h.ms[i], h.ms[p] = h.ms[p], h.ms[i]
		i = p
	}
}

func (h *stagedHeap) pop() xmsg {
	root := h.ms[0]
	last := len(h.ms) - 1
	h.ms[0] = h.ms[last]
	h.ms = h.ms[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && xmsgLess(&h.ms[c+1], &h.ms[c]) {
			c++
		}
		if !xmsgLess(&h.ms[c], &h.ms[i]) {
			break
		}
		h.ms[i], h.ms[c] = h.ms[c], h.ms[i]
		i = c
	}
	return root
}

// asyncState is the shared coordination state of one async run: the three
// published arrays (clocks, termination generations, idle flags), the
// in-flight message count, the run-wide abort/done flags, the per-run
// lookahead matrix, and the per-pair rings. Built once per shard count in
// ensureShards and recycled across runs (prepareAsync re-derives the
// run-dependent parts), so steady-state runs stay allocation-free.
type asyncState struct {
	clocks *parallel.Clocks // published fully-processed virtual times
	gens   *parallel.Clocks // per-shard progress generations (bumped on staging)
	idle   *parallel.Clocks // per-shard idle flags (1 = locally quiescent)
	msgs   atomic.Int64     // messages sent but not yet staged by their receiver
	done   atomic.Bool      // double-scan termination succeeded
	abort  atomic.Bool      // a shard failed; everyone unwinds

	mu   sync.Mutex
	ferr error // first error, wall-clock order (fallback when e.err is racier)

	look             []int64 // [src*s+dst] lookahead; maxInt64 = unconstrained
	lookMin, lookMax int64

	// outbox[src][dst] is the ring for that ordered pair, nil unless the
	// slabs are boundary-adjacent (direct messages only ever cross one
	// boundary); inbox[dst] lists the same rings in src order for draining.
	outbox [][]*xring
	inbox  [][]*xring
}

func (st *asyncState) send(src, dst int32, m *xmsg) {
	q := st.outbox[src][dst]
	if q == nil {
		panic("network: async cross-shard message between non-adjacent shards")
	}
	// The counter rises before the message is visible and falls only after
	// it is staged (drainRingsAsync), so msgs == 0 in the termination scan
	// really means "nothing in flight".
	st.msgs.Add(1)
	q.put(m, &st.abort)
}

func (st *asyncState) failed() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ferr
}

// engineAsync is the engine-private half of the async machinery.
type engineAsync struct {
	st        *asyncState
	staged    stagedHeap
	clock     int64   // last published clock (mirrors st.clocks[id])
	clockSnap []int64 // scratch: peer clocks snapshotted before draining
	genSnap   []int64 // scratch: first scan of the termination detector
	blocked   bool
	blockedAt time.Time
}

func (ax *engineAsync) reset() {
	ax.st = nil
	ax.staged.reset()
	ax.clock = 0
	ax.blocked = false
}

// deriveShardDist computes the shard-graph boundary hop distance between
// every pair of slabs: shards are vertices, with an edge wherever some owned
// node has a physical neighbour (including wraparound links) in the other
// shard. BFS from each shard; -1 marks unreachable pairs (which then carry
// no lookahead constraint - no direct message can cross them either).
func (nw *Network) deriveShardDist(s int) {
	adj := make([][]int32, s)
	var mark []bool
	for i := 0; i < s; i++ {
		mark = append(mark[:0], make([]bool, s)...)
		lo := int32(nw.P * i / s)
		hi := int32(nw.P * (i + 1) / s)
		for n := lo; n < hi; n++ {
			for d := 0; d < numDirs; d++ {
				nb := nw.nbrs[linkIdx(n, d)]
				if nb < 0 {
					continue // mesh edge
				}
				if j := int(nw.shardOf[nb]); j != i && !mark[j] {
					mark[j] = true
					adj[i] = append(adj[i], int32(j))
				}
			}
		}
	}
	nw.shardDist = make([]int32, s*s)
	queue := make([]int32, 0, s)
	for i := 0; i < s; i++ {
		row := nw.shardDist[i*s : (i+1)*s]
		for j := range row {
			row[j] = -1
		}
		row[i] = 0
		queue = append(queue[:0], int32(i))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if row[v] < 0 {
					row[v] = row[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
}

// prepareAsync re-derives the run-dependent async state: zeroed clocks and
// detector arrays, the lookahead matrix from the structural shard distances
// and this run's window, and empty rings. No allocation on the steady path.
func (nw *Network) prepareAsync(s int, window int64) {
	st := &nw.async
	st.clocks.Reset()
	st.gens.Reset()
	st.idle.Reset()
	st.msgs.Store(0)
	st.done.Store(false)
	st.abort.Store(false)
	st.mu.Lock()
	st.ferr = nil
	st.mu.Unlock()
	st.lookMin, st.lookMax = maxInt64, 0
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			d := nw.shardDist[i*s+j]
			if i == j || d < 0 {
				st.look[i*s+j] = maxInt64
				continue
			}
			l := int64(d) * window
			st.look[i*s+j] = l
			if l < st.lookMin {
				st.lookMin = l
			}
			if l > st.lookMax {
				st.lookMax = l
			}
		}
	}
	if st.lookMin == maxInt64 {
		st.lookMin = 0
	}
	for _, row := range st.outbox {
		for _, q := range row {
			if q != nil {
				q.r.Store(q.w.Load()) // drop residue from an aborted prior run
			}
		}
	}
}

// safeTarget computes this shard's horizon from the snapshotted peer clocks.
// The snapshot is taken BEFORE draining the rings: any message with
// t < snap[j] + look[j][i] was put into its ring before shard j published
// snap[j] (publish-after-process), so the later drain is guaranteed to have
// staged it. Overflow (idle shards chase their clocks upward without bound
// until the termination scan lands) clamps to maxInt64.
func (e *engine) safeTarget(snap []int64) int64 {
	st := e.ax.st
	s := len(snap)
	id := int(e.id)
	t := int64(maxInt64)
	for j := 0; j < s; j++ {
		if j == id {
			continue
		}
		l := st.look[j*s+id]
		if l == maxInt64 {
			continue
		}
		b := snap[j] + l
		if b < snap[j] {
			b = maxInt64
		}
		if b < t {
			t = b
		}
	}
	return t
}

// drainRingsAsync stages every inbound message onto the staged heap. The
// termination-detector discipline is load-bearing and ordered: the idle flag
// drops BEFORE any staging, the generation counter bumps after, and the
// in-flight count falls LAST - so a scanner that saw idle=1 and msgs==0 with
// stable generations cannot have missed work this drain acquired (the
// double-scan proof in tryTerminate leans on exactly this order).
func (e *engine) drainRingsAsync() (int, error) {
	st := e.ax.st
	id := int(e.id)
	n := 0
	var verr error
	for _, q := range st.inbox[id] {
		r := q.r.Load()
		w := q.w.Load()
		if r == w {
			continue
		}
		if n == 0 {
			st.idle.Publish(id, 0)
		}
		for ; r < w; r++ {
			m := &q.buf[r&q.mask]
			if e.par.Check && verr == nil && m.t < e.ax.clock {
				verr = e.checkInboundAsync(m)
			}
			e.ax.staged.push(m)
			n++
		}
		q.r.Store(r)
	}
	if n > 0 {
		st.gens.Publish(id, st.gens.Load(id)+1)
		st.msgs.Add(int64(-n))
	}
	return n, verr
}

// checkInboundAsync is the async engine's cross-shard monotonicity audit,
// the conservative protocol's whole correctness argument restated: a message
// landing behind the receiver's published clock means some sender violated
// its lookahead promise.
func (e *engine) checkInboundAsync(m *xmsg) *check.Violation {
	return check.Violatef(check.MonotonicTime, m.node, e.ax.clock,
		"cross-shard %s scheduled at t=%d behind the receiving shard's published clock %d (lookahead horizon violated)",
		eventKindName(m.kind), m.t, e.ax.clock)
}

// tryTerminate is one attempt of the double-scan termination detector. It
// succeeds only when, at the instant of the msgs read, every shard was
// locally quiescent and nothing was in flight. Proof sketch: suppose shard k
// had (or later acquires) work traceable to before the msgs read. That work
// arrived by staging, whose discipline is idle=0, stage, gen++, msgs-- (in
// that order, all sequentially consistent). If k's idle drop preceded our
// idle read we saw 0 and failed. Otherwise our idle read - and therefore our
// earlier first gen scan - preceded k's gen bump, while our second gen scan
// follows the msgs read, which follows k's msgs decrement, which follows the
// bump: the two scans disagree and we fail. A message in flight at the msgs
// read keeps the counter positive directly. False termination is
// additionally backstopped by runSharded's in-flight/active-source stall
// check.
func (e *engine) tryTerminate() bool {
	st := e.ax.st
	s := st.gens.Len()
	g := e.ax.genSnap
	for j := 0; j < s; j++ {
		g[j] = st.gens.Load(j)
	}
	for j := 0; j < s; j++ {
		if st.idle.Load(j) == 0 {
			return false
		}
	}
	if st.msgs.Load() != 0 {
		return false
	}
	for j := 0; j < s; j++ {
		if st.gens.Load(j) != g[j] {
			return false
		}
	}
	return true
}

// asyncFail records this shard's error and aborts the run: peers observe the
// flag at their next loop top (and ring producers stop spinning on it).
func (e *engine) asyncFail(err error) {
	if e.err == nil {
		e.err = err
	}
	st := e.ax.st
	st.mu.Lock()
	if st.ferr == nil {
		st.ferr = err
	}
	st.mu.Unlock()
	st.abort.Store(true)
}

// runAsync is one shard worker of the asynchronous conservative engine. No
// start barrier: the initial injections' first cross-shard effects all land
// at t >= shardSafeWindow, which the zero clock every shard starts from
// already promises.
func (e *engine) runAsync(maxTime int64, wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	st := e.ax.st
	id := int(e.id)
	e.armFaults(maxTime)
	for n := e.lo; n < e.hi; n++ {
		e.maybeRunCPU(n)
	}
	var bo parallel.Backoff
	snap := e.ax.clockSnap
	for {
		if st.done.Load() || st.abort.Load() {
			break
		}
		if e.cancel != nil {
			select {
			case <-e.cancel:
				e.asyncFail(fmt.Errorf("%w at t=%d (async horizon)", ErrCanceled, e.now))
				continue // loop top observes abort and unwinds
			default:
			}
		}
		// Snapshot clocks, THEN drain: see safeTarget for why this order is
		// what makes the horizon sound.
		for j := range snap {
			snap[j] = st.clocks.Load(j)
		}
		drained, verr := e.drainRingsAsync()
		if verr != nil {
			e.asyncFail(verr)
			continue
		}
		target := e.safeTarget(snap)
		quiet := drained == 0 && e.evq.len() == 0 && e.ax.staged.len() == 0
		if target > e.ax.clock {
			if e.ax.blocked {
				e.ax.blocked = false
				e.syncWaitNs += time.Since(e.ax.blockedAt).Nanoseconds()
			}
			if !quiet {
				if err := e.processUntilAsync(target, maxTime); err != nil {
					e.asyncFail(err)
					continue
				}
				e.syncAdvances++
			}
			// Publish-after-process: the clock moves only once every event
			// below it has dispatched (or, when quiet, once it provably has
			// none), never earlier - peers size their horizons off it.
			e.ax.clock = target
			st.clocks.Publish(id, target)
			bo.Reset()
			if !quiet {
				continue
			}
		}
		if quiet {
			// Locally quiescent: publish the idle flag and try to close the
			// run. The clock keeps chasing its horizon above (an idle shard
			// must keep promising "nothing before t" or it wedges its
			// neighbours), but an empty advance is not progress for the
			// detector.
			st.idle.Publish(id, 1)
			if e.tryTerminate() {
				st.done.Store(true)
				break
			}
		}
		if !e.ax.blocked {
			e.ax.blocked = true
			e.ax.blockedAt = time.Now()
			e.syncWaits++
		}
		bo.Wait()
	}
	if e.ax.blocked {
		e.ax.blocked = false
		e.syncWaitNs += time.Since(e.ax.blockedAt).Nanoseconds()
	}
}

// processUntilAsync is processUntil with the staged-message due-point scan
// woven in: before every pop, any staged (t, node, kind) group whose
// boundary key (arg 0 - which is also where a coalesced marker for the same
// group would sort) is <= the heap top is inserted whole. Inserting the
// whole group before its marker can pop is what keeps a replayed batch
// complete, and inserting at the boundary key rather than each message's own
// arg keeps heap-ordered credits from slipping ahead of it.
func (e *engine) processUntilAsync(tend, maxTime int64) error {
	poll := 0
	for {
		for e.ax.staged.len() > 0 {
			m := e.ax.staged.top()
			if m.t >= tend {
				break
			}
			if e.evq.len() > 0 && less(e.evq.top(), mkEvent(m.t, m.node, 0, m.kind)) {
				break
			}
			e.applyStagedGroup(m.t, m.node, m.kind)
			if e.par.Check && e.vio != nil {
				return e.vio
			}
		}
		if e.evq.len() == 0 || e.evq.top().t >= tend {
			return nil
		}
		if e.cancel != nil {
			if poll++; poll&8191 == 0 {
				select {
				case <-e.cancel:
					return fmt.Errorf("%w at t=%d (%d events in queue)", ErrCanceled, e.now, e.evq.len())
				default:
				}
			}
		}
		ev := e.evq.pop()
		if ev.t < e.now {
			return fmt.Errorf("network: time went backwards (%d < %d)", ev.t, e.now)
		}
		e.now = ev.t
		if e.now > maxTime {
			return fmt.Errorf("%w %d (in flight %d, active sources %d)",
				ErrMaxTime, maxTime, e.inFlight, e.activeSrc)
		}
		e.dispatch(ev)
		if e.par.Check && e.vio != nil {
			return e.vio
		}
	}
}

// applyStagedGroup inserts every staged message of one (t, node, kind) group
// into the simulator, through the same paths drainInboxes uses at a BSP
// window barrier - so the coalescing accumulators, the elision predicate,
// and the queued-event accounting behave identically per virtual time.
func (e *engine) applyStagedGroup(t int64, node int32, kind uint8) {
	for e.ax.staged.len() > 0 {
		m := e.ax.staged.top()
		if m.t != t || m.node != node || m.kind != kind {
			break
		}
		mm := e.ax.staged.pop()
		e.applyStaged(&mm)
	}
}

func (e *engine) applyStaged(m *xmsg) {
	if e.par.Check && e.vio == nil && m.t < e.now {
		e.vio = check.Violatef(check.MonotonicTime, m.node, e.now,
			"staged cross-shard %s at t=%d inserted behind the shard clock %d (lookahead horizon violated)",
			eventKindName(m.kind), m.t, e.now)
	}
	if m.kind == evArrive {
		pid := e.allocPkt()
		e.pkts[pid] = m.pkt
		e.inFlight++
		if e.coal {
			e.scheduleArrive(m.t, m.node, arriveArg(m.pkt.inDir, pid))
		} else {
			e.evq.push(mkEvent(m.t, m.node, arriveArg(m.pkt.inDir, pid), evArrive))
		}
		return
	}
	if e.coal {
		// The elision test runs at the deterministic insertion point, where
		// this node's outBusy reflects everything before m.t - the same
		// predicate as sendCredit's local path. (It may elide strictly more
		// than a BSP drain does, which evaluates with an earlier busy
		// horizon: that is the one place QueuedEvents legitimately depends
		// on Sync. Link state and logical event counts do not.)
		if dir, _, _ := creditUnpack(m.arg); e.outBusy[linkIdx(m.node, dir)] > m.t ||
			e.deadThrough(m.node, dir, m.t) {
			e.stashCredit(m.node, m.t, m.arg)
		} else {
			e.scheduleCredit(m.node, m.t, m.arg)
		}
		return
	}
	e.evq.push(mkEvent(m.t, m.node, m.arg, evCredit))
}
