package network

import (
	"errors"
	"strings"
	"testing"

	"alltoall/internal/check"
	"alltoall/internal/torus"
)

// checkedNet builds an all-to-all workload network with the runtime invariant
// checker enabled.
func checkedNet(t *testing.T, shape torus.Shape) (*Network, *shardCountHandler) {
	t.Helper()
	par := DefaultParams()
	par.Check = true
	p := shape.P()
	h := newShardCountHandler(p)
	src := make([]Source, p)
	for i := 0; i < p; i++ {
		specs := make([]PacketSpec, 0, p-1)
		for d := 0; d < p; d++ {
			if d != i {
				specs = append(specs, PacketSpec{Dst: int32(d), Size: 256, Payload: 256, Aux: -1})
			}
		}
		src[i] = &listSource{specs: specs}
	}
	return buildNet(t, shape, par, src, h), h
}

func TestCheckedRunClean(t *testing.T) {
	shapes := []torus.Shape{
		torus.New(4, 4, 2),
		torus.NewMesh(4, 2, 2, false, false, false),
	}
	for _, shape := range shapes {
		for _, shards := range []int{1, 4} {
			nw, h := checkedNet(t, shape)
			fin, err := nw.RunSharded(1<<40, shards)
			if err != nil {
				t.Fatalf("%v shards=%d: checked run failed: %v", shape, shards, err)
			}
			if fin <= 0 {
				t.Fatalf("%v shards=%d: finish time %d", shape, shards, fin)
			}
			for n := 0; n < shape.P(); n++ {
				if h.perNode[n] != int64(shape.P()-1) {
					t.Fatalf("%v shards=%d node %d got %d deliveries", shape, shards, n, h.perNode[n])
				}
			}
		}
	}
}

// seedViolation asserts a run over a deliberately corrupted network fails
// with the named invariant and a node/time-stamped diagnostic.
func seedViolation(t *testing.T, shards int, inv check.Invariant, corrupt func(*Network)) {
	t.Helper()
	nw, _ := checkedNet(t, torus.New(4, 4, 2))
	corrupt(nw)
	_, err := nw.RunSharded(1<<40, shards)
	if err == nil {
		t.Fatalf("corrupted run (shards=%d) succeeded; want %s violation", shards, inv)
	}
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("error is %T, want *check.Violation: %v", err, err)
	}
	if v.Invariant != inv {
		t.Fatalf("violated %s, want %s: %v", v.Invariant, inv, err)
	}
	msg := err.Error()
	if !strings.Contains(msg, string(inv)) || !strings.Contains(msg, "node ") || !strings.Contains(msg, "t=") {
		t.Fatalf("diagnostic lacks invariant/node/time stamp: %q", msg)
	}
}

// escapeDir returns a direction on node 0 with a live neighbour.
func escapeDir(t *testing.T, nw *Network) int {
	t.Helper()
	for d := 0; d < numDirs; d++ {
		if nw.nbrs[linkIdx(0, d)] >= 0 {
			return d
		}
	}
	t.Fatal("node 0 has no neighbours")
	return -1
}

func TestSeededBubbleSlotUnderflow(t *testing.T) {
	for _, shards := range []int{1, 4} {
		seedViolation(t, shards, check.BubbleSlots, func(nw *Network) {
			d := escapeDir(t, nw)
			nw.tok[tokIdx(0, d, VCBubble)] = -MaxPacketBytes
		})
	}
}

func TestSeededBubbleSlotFragmentation(t *testing.T) {
	seedViolation(t, 1, check.BubbleSlots, func(nw *Network) {
		d := escapeDir(t, nw)
		nw.tok[tokIdx(0, d, VCBubble)] = nw.Par.VCBytes - PacketGranule
	})
}

func TestSeededCounterfeitCredit(t *testing.T) {
	seedViolation(t, 1, check.CreditConservation, func(nw *Network) {
		d := escapeDir(t, nw)
		nw.tok[tokIdx(0, d, VCDyn0)] = nw.Par.VCBytes + PacketGranule
	})
}

func TestSeededViolationStampsNodeAndTime(t *testing.T) {
	nw, _ := checkedNet(t, torus.New(4, 4, 2))
	d := escapeDir(t, nw)
	nw.tok[tokIdx(0, d, VCBubble)] = -1
	_, err := nw.Run(1 << 40)
	var v *check.Violation
	if !errors.As(err, &v) {
		t.Fatalf("want *check.Violation, got %v", err)
	}
	if v.Node != 0 {
		t.Errorf("violation stamped node %d, want 0", v.Node)
	}
	if v.Time < 0 {
		t.Errorf("violation stamped t=%d, want >= 0", v.Time)
	}
}

func TestCheckNodeOccupancyMask(t *testing.T) {
	// occMask drift cannot be seeded pre-run without confusing arbitration
	// before the checker sees it, so audit the checker directly: complete a
	// clean run, then flip a bit over a provably empty queue.
	nw, _ := checkedNet(t, torus.New(4, 4, 2))
	if _, err := nw.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	e := &nw.eng
	if v := e.checkNode(0); v != nil {
		t.Fatalf("clean post-run state flagged: %v", v)
	}
	nw.occ[0] |= 1
	v := e.checkNode(0)
	if v == nil || v.Invariant != check.OccupancyMask {
		t.Fatalf("stale occMask bit not caught: %v", v)
	}
}

func TestCheckQuiescenceStrandedCredit(t *testing.T) {
	nw, _ := checkedNet(t, torus.New(4, 4, 2))
	if _, err := nw.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := nw.checkQuiescence(); err != nil {
		t.Fatalf("clean run not quiescent: %v", err)
	}
	d := escapeDir(t, nw)
	nw.tok[tokIdx(0, d, VCDyn1)] -= PacketGranule
	err := nw.checkQuiescence()
	var v *check.Violation
	if !errors.As(err, &v) || v.Invariant != check.Quiescence {
		t.Fatalf("stranded credit not caught: %v", err)
	}
	if !strings.Contains(err.Error(), "stranded") {
		t.Errorf("diagnostic %q does not name stranded credits", err)
	}
}

func TestCheckQuiescenceLedger(t *testing.T) {
	nw, _ := checkedNet(t, torus.New(4, 4, 2))
	if _, err := nw.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	nw.stats.TotalDelivered--
	err := nw.checkQuiescence()
	var v *check.Violation
	if !errors.As(err, &v) || v.Invariant != check.Quiescence {
		t.Fatalf("broken delivery ledger not caught: %v", err)
	}
	nw.stats.TotalDelivered++
}

func TestCheckedSerialShardedIdentical(t *testing.T) {
	shape := torus.New(4, 4, 2)
	nwA, hA := checkedNet(t, shape)
	finA, err := nwA.Run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	nwB, hB := checkedNet(t, shape)
	finB, err := nwB.RunSharded(1<<40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if finA != finB {
		t.Fatalf("serial finish %d != sharded finish %d with checks on", finA, finB)
	}
	for n := range hA.perNode {
		if hA.perNode[n] != hB.perNode[n] {
			t.Fatalf("node %d deliveries differ: serial %d sharded %d", n, hA.perNode[n], hB.perNode[n])
		}
	}
}
