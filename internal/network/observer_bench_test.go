package network

import (
	"testing"

	"alltoall/internal/torus"
)

// nullSink is the cheapest possible observer: empty hooks. The delta
// between BenchmarkNetworkRunObserved and BenchmarkNetworkRun is the pure
// hook-dispatch cost; the delta between BenchmarkNetworkRun before and
// after the observer hooks were added (nil observer) must be noise.
type nullSink struct{}

func (nullSink) OnGrant(now int64, node int32, dir int, vc int8, size int32) {}
func (nullSink) OnBlocked(now int64, node int32, inDir, vc int8, want uint8, since int64, qCount, win int32) {
}
func (nullSink) OnInjFIFO(node int32, fifo int, bytes int32) {}
func (nullSink) OnRecvFIFO(node int32, bytes int32)          {}
func (nullSink) OnCPU(now int64, node int32, cost int64)     {}

type nullObserver struct{}

func (nullObserver) BeginRun(shape torus.Shape, par Params) {}
func (nullObserver) Sink(shard, shards int, lo, hi int32) Sink {
	return nullSink{}
}
func (nullObserver) EndRun(finish int64) {}

// BenchmarkNetworkRunObserved is BenchmarkNetworkRun's workload with an
// empty observer installed: the cost of taking every hook call with no
// recording behind it.
func BenchmarkNetworkRunObserved(b *testing.B) {
	b.ReportAllocs()
	shape := torus.New(8, 8, 4)
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 256}
		}
		return srcs
	}
	nw, err := New(shape, DefaultParams(), mkSrcs(), countOnly{})
	if err != nil {
		b.Fatal(err)
	}
	nw.SetObserver(nullObserver{})
	if _, err := nw.Run(1 << 42); err != nil {
		b.Fatal(err)
	}
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.Reset(mkSrcs(), countOnly{}); err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Run(1 << 42); err != nil {
			b.Fatal(err)
		}
		events += nw.Stats().Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// TestNilObserverSteadyStateAllocs guards the zero-cost-when-off contract
// at the allocation level: with no observer installed, a warmed Reset+Run
// cycle on the serial engine performs no heap allocations at all - the
// nil-observer branches must not cause the compiler to heap-allocate
// anything on the hot path.
func TestNilObserverSteadyStateAllocs(t *testing.T) {
	shape := torus.New(4, 4, 4)
	p := shape.P()
	srcs := shardTraffic(p, 11)
	h := newShardCountHandler(p)
	nw, err := New(shape, DefaultParams(), srcs, h)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		for _, s := range srcs {
			if s != nil {
				s.(*listSource).i = 0
			}
		}
		h.reset()
		if err := nw.Reset(srcs, h); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Run(1 << 40); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm pools
	run()
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Errorf("steady-state serial run with nil observer allocates %.1f times per run, want 0", avg)
	}
}
