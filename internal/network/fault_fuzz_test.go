package network

import (
	"errors"
	"testing"

	"alltoall/internal/check"
	"alltoall/internal/torus"
)

// FuzzFaultSchedule fuzzes the -faults spec grammar: every accepted spec
// must have a canonical encoding that is a parse/encode fixed point, and
// every accepted schedule that names real links of a small torus must run
// to an honest outcome under the invariant checker - checker-clean
// completion with the delivery ledger intact, or an explicit stall/abort
// error. An invariant violation is a bug regardless of how hostile the
// schedule is.
func FuzzFaultSchedule(f *testing.F) {
	f.Add("0:12:+x:kill;5000:40:-y:down;9000:40:-y:up;0:7:+z:x4")
	f.Add("")
	f.Add("1:0:+x:down;2:0:+x:up")
	f.Add("0:5:+x:x4096")
	f.Add("0:63:-z:kill;0:0:+z:kill")
	f.Fuzz(func(t *testing.T, spec string) {
		fs, err := ParseFaults(spec)
		if err != nil {
			return // invalid specs only need to be rejected cleanly
		}
		enc := fs.String()
		fs2, err := ParseFaults(enc)
		if err != nil {
			t.Fatalf("canonical encoding %q of %q does not re-parse: %v", enc, spec, err)
		}
		if got := fs2.String(); got != enc {
			t.Fatalf("encoding is not a fixed point: %q -> %q", enc, got)
		}
		if len(fs.Events) == 0 || len(fs.Events) > 12 {
			return // engine smoke only for small non-empty schedules
		}
		shape := torus.New(4, 4, 4)
		p := shape.P()
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 96}
		}
		par := DefaultParams()
		par.Check = true
		par.Faults = fs
		nw, err := New(shape, par, srcs, countOnly{})
		if err != nil {
			return // schedule names links this machine does not have
		}
		if _, err := nw.RunSharded(1<<40, 1); err != nil {
			var v *check.Violation
			if errors.As(err, &v) {
				t.Fatalf("schedule %q: invariant violation: %v", enc, err)
			}
			return // stalls and severed rings are honest outcomes
		}
		st := nw.Stats()
		if st.PacketsInjected != st.TotalDelivered {
			t.Fatalf("schedule %q: delivery ledger broken: %d injected, %d delivered",
				enc, st.PacketsInjected, st.TotalDelivered)
		}
	})
}
