package network

import "math/bits"

// Bounded-horizon calendar queue.
//
// Every event the engine schedules lands within a small, parameter-bounded
// distance of the current clock: arrivals at now + size + RouterDelay (or
// now + PacketGranule + RouterDelay under cut-through), credit returns at
// now + CreditDelay, link-free wakeups at now + size, escape-maturity
// wakeups at most EscapeDelay ahead, and ordinary CPU completions at
// CPUCost(MaxPacketBytes). That bounded lookahead - the same property that
// powers the sharded engine's conservative windows - is the textbook
// precondition for a calendar queue: a ring of per-tick buckets spanning the
// horizon gives O(1) amortized push/pop where a heap pays O(log n) sifts
// over multi-million-event backlogs. The rare event beyond the horizon
// (strategy ExtraCPU charges, source pacing waits) overflows into a small
// reference heap that is consulted on every pop, so correctness never
// depends on the horizon being large enough - only throughput does.
//
// The pop sequence is the unique minimum of the pushed multiset under the
// strict (t, node, kind, arg) order of less(), exactly as for eventHeap:
// each bucket holds a single tick (two times mapping to the same slot differ
// by a full horizon and cannot both be pending, because pushes never precede
// the clock and never reach a full horizon ahead without overflowing), the
// ring is scanned in time order from the current tick, and ties within a
// bucket are kept sorted by the packed key. Serial and sharded runs are
// therefore byte-identical to the heap engine; the differential fuzz target
// in calendar_test.go holds the two implementations to that contract.

// calendarHorizon returns the bucket-ring span (a power of two) for the
// given parameters: comfortably past the largest routine scheduling delta so
// the overflow heap only sees genuinely unusual events, bounded so a
// pathological parameter sweep cannot ask for an absurd ring.
func calendarHorizon(par Params) int64 {
	h := int64(MaxPacketBytes) + par.RouterDelay // arrival of a full packet
	if par.CreditDelay > h {
		h = par.CreditDelay
	}
	if par.EscapeDelay > h {
		h = par.EscapeDelay
	}
	if c := par.CPUCost(MaxPacketBytes); c > h {
		h = c
	}
	h *= 4 // headroom: stacked deltas (size + delay), modest ExtraCPU charges
	const minHorizon, maxHorizon = 64, 1 << 16
	if h < minHorizon {
		h = minHorizon
	}
	if h > maxHorizon {
		h = maxHorizon
	}
	return 1 << bits.Len64(uint64(h-1)) // round up to a power of two
}

// calendarQueue is the bounded-horizon event structure. Invariants:
//   - base is the time of the most recently popped event (0 before the
//     first pop); pushes at t with t-base in [0, horizon) go to bucket
//     t&mask, anything else (including the defensive t < base case, which
//     the engine never produces) goes to the overflow heap;
//   - every bucketed event e satisfies e.t-base in [0, horizon), so bucket
//     t&mask holds one tick only and intra-bucket order is pure key order;
//   - buckets are kept sorted descending (tail = minimum) so a pop is a
//     slice truncation and a same-tick push is an insertion scan from the
//     tail, which is short because ties share one tick;
//   - occ mirrors bucket non-emptiness one bit per bucket, so the scan for
//     the next non-empty bucket runs 64 buckets per word;
//   - the cached minimum (cmin/cidx, valid when cvalid) memoizes the scan
//     between top and pop; a push only invalidates it when the new event
//     sorts before it, so the sharded engine's top-per-iteration loop does
//     not rescan the ring.
type calendarQueue struct {
	buckets [][]event
	occ     []uint64
	mask    int64 // horizon - 1 (horizon is a power of two)
	base    int64 // time of the last pop; floor for every bucketed event
	cur     int   // ring index of base (base & mask)
	n       int   // events in buckets (excluding overflow)

	cvalid bool
	cidx   int // bucket of the cached minimum; -1 = overflow heap
	cmin   event

	over eventHeap // beyond-horizon events; consulted on every top/pop
}

// init sizes the ring for the given horizon, keeping existing storage when
// the size already matches (Reset reuse).
func (q *calendarQueue) init(horizon int64) {
	if int64(len(q.buckets)) == horizon {
		return
	}
	q.buckets = make([][]event, horizon)
	q.occ = make([]uint64, horizon/64)
	q.mask = horizon - 1
}

func (q *calendarQueue) len() int { return q.n + q.over.len() }

// reset discards all pending events, keeping bucket storage for the next run.
func (q *calendarQueue) reset() {
	if q.n > 0 {
		for w, word := range q.occ {
			for word != 0 {
				i := bits.TrailingZeros64(word)
				word &^= 1 << i
				idx := w<<6 | i
				q.buckets[idx] = q.buckets[idx][:0]
			}
			q.occ[w] = 0
		}
	}
	q.n = 0
	q.base = 0
	q.cur = 0
	q.cvalid = false
	q.over.reset()
}

func (q *calendarQueue) push(e event) {
	if q.cvalid && less(e, q.cmin) {
		q.cvalid = false
	}
	if uint64(e.t-q.base) > uint64(q.mask) { // beyond horizon (or behind base)
		q.over.push(e)
		return
	}
	idx := int(e.t & q.mask)
	b := append(q.buckets[idx], e)
	// Descending insert from the tail: shift strictly-smaller events right.
	// The scan stays within one tick's ties, which are short in practice.
	i := len(b) - 1
	for i > 0 && less(b[i-1], e) {
		b[i] = b[i-1]
		i--
	}
	b[i] = e
	q.buckets[idx] = b
	q.occ[idx>>6] |= 1 << (uint(idx) & 63)
	q.n++
}

// ringScan returns the bucket index of the earliest non-empty bucket in ring
// order starting at cur, or -1 when the ring is empty. Ring order from cur is
// time order because every bucketed event lies within one horizon of base.
func (q *calendarQueue) ringScan() int {
	if q.n == 0 {
		return -1
	}
	w0 := q.cur >> 6
	off := uint(q.cur) & 63
	if word := q.occ[w0] &^ (1<<off - 1); word != 0 {
		return w0<<6 + bits.TrailingZeros64(word)
	}
	nw := len(q.occ)
	for i := 1; i <= nw; i++ {
		w := w0 + i
		if w >= nw {
			w -= nw
		}
		// At i == nw this re-reads word w0: only bits below off can still be
		// set (anything at or above off would have matched above), and those
		// are exactly the wrapped tail of the ring.
		if word := q.occ[w]; word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// locate computes the cached minimum: the winner of the first-bucket tail vs
// the overflow top under less(). The overflow top can legitimately sort
// before every bucketed event (it was pushed beyond an older horizon that
// has since advanced underneath it), so the comparison runs on every pop.
func (q *calendarQueue) locate() {
	if idx := q.ringScan(); idx >= 0 {
		b := q.buckets[idx]
		e := b[len(b)-1]
		if q.over.len() > 0 && less(q.over.top(), e) {
			q.cmin, q.cidx = q.over.top(), -1
		} else {
			q.cmin, q.cidx = e, idx
		}
	} else {
		q.cmin, q.cidx = q.over.top(), -1 // caller guarantees len() > 0
	}
	q.cvalid = true
}

// top returns the minimum event without removing it. Must not be called on
// an empty queue.
func (q *calendarQueue) top() event {
	if !q.cvalid {
		q.locate()
	}
	return q.cmin
}

func (q *calendarQueue) pop() event {
	if !q.cvalid {
		q.locate()
	}
	e := q.cmin
	if q.cidx < 0 {
		q.over.pop()
	} else {
		b := q.buckets[q.cidx]
		q.buckets[q.cidx] = b[:len(b)-1]
		if len(b) == 1 {
			q.occ[q.cidx>>6] &^= 1 << (uint(q.cidx) & 63)
		}
		q.n--
	}
	// Advance the clock floor to the popped time; the ring origin follows.
	// base moves only here, so a concurrent-window push (sharded drain) can
	// never alias into a stale slot.
	q.base = e.t
	q.cur = int(e.t & q.mask)
	q.cvalid = false
	return e
}

// remove deletes the queued event at time t whose key lies in [keyLo, keyHi],
// if present. Within the horizon it scans one bucket (one tick's ties, short
// in practice); an event at an in-horizon time can still live in the overflow
// heap when it was pushed against an older base, so the overflow is always a
// fallback candidate. The cached minimum is invalidated on success rather
// than patched - removals are rare next to pops.
func (q *calendarQueue) remove(t int64, keyLo, keyHi uint64) bool {
	if uint64(t-q.base) <= uint64(q.mask) {
		idx := int(t & q.mask)
		b := q.buckets[idx]
		for i := len(b) - 1; i >= 0; i-- {
			if e := b[i]; e.t == t && e.key >= keyLo && e.key <= keyHi {
				copy(b[i:], b[i+1:])
				q.buckets[idx] = b[:len(b)-1]
				if len(b) == 1 {
					q.occ[idx>>6] &^= 1 << (uint(idx) & 63)
				}
				q.n--
				q.cvalid = false
				return true
			}
		}
	}
	if q.over.remove(t, keyLo, keyHi) {
		q.cvalid = false
		return true
	}
	return false
}

// Params.EventQueue values (see Params).
const (
	// EventQueueCalendar selects the bounded-horizon calendar queue (the
	// default; "" means the same).
	EventQueueCalendar = "calendar"
	// EventQueueHeap selects the reference 4-ary heap. Escape hatch while
	// the calendar queue beds in; the two are byte-identical in output.
	EventQueueHeap = "heap"
)

// eventQueue is the engine's pending-event structure: the calendar queue by
// default, the reference heap behind Params.EventQueue. One predictable
// branch per operation - no interface dispatch on the hot path.
type eventQueue struct {
	useHeap bool
	cal     calendarQueue
	h       eventHeap
}

func (q *eventQueue) init(par Params) {
	q.useHeap = par.EventQueue == EventQueueHeap
	if !q.useHeap {
		q.cal.init(calendarHorizon(par))
	}
}

func (q *eventQueue) len() int {
	if q.useHeap {
		return q.h.len()
	}
	return q.cal.len()
}

func (q *eventQueue) push(e event) {
	if q.useHeap {
		q.h.push(e)
		return
	}
	q.cal.push(e)
}

func (q *eventQueue) pop() event {
	if q.useHeap {
		return q.h.pop()
	}
	return q.cal.pop()
}

func (q *eventQueue) top() event {
	if q.useHeap {
		return q.h.top()
	}
	return q.cal.top()
}

// remove deletes the queued event at time t whose key lies in [keyLo, keyHi],
// if present. Both implementations remove exactly the same event from the
// same pending multiset, so Stats.QueuedEvents stays queue-structure
// invariant (the calendar differential oracle depends on that).
func (q *eventQueue) remove(t int64, keyLo, keyHi uint64) bool {
	if q.useHeap {
		return q.h.remove(t, keyLo, keyHi)
	}
	return q.cal.remove(t, keyLo, keyHi)
}

func (q *eventQueue) reset() {
	if q.useHeap {
		q.h.reset()
		return
	}
	q.cal.reset()
}
