package network

import "alltoall/internal/check"

// Runtime invariant checking (the conformance layer's enforcement half).
//
// When Params.Check is set, every event dispatch is followed by a validation
// of the router it touched (events mutate only node-local router state, so
// checking the event's node covers every mutation), cross-shard mailbox
// messages are checked against the receiving shard's clock, and a completed
// run must pass a full-machine quiescence audit. All checks are behind a
// single predictable branch per event so the hot path stays branch-cheap
// when checking is off.

// checkNode validates the event-granularity invariants of one router:
// credit bounds per (direction, VC), bubble slot integrity, FIFO occupancy
// bounds, and occupancy-mask coherence. Returns nil when everything holds.
func (e *engine) checkNode(node int32) *check.Violation {
	r := &e.routers[node]
	vcb := e.par.VCBytes
	for d := 0; d < numDirs; d++ {
		if e.nbrs[linkIdx(node, d)] < 0 {
			continue
		}
		for vc := 0; vc < NumVC; vc++ {
			tok := e.tok[tokIdx(node, d, vc)]
			if tok > vcb {
				return check.Violatef(check.CreditConservation, node, e.now,
					"dir %d vc %d holds %d tokens, capacity %d (credit counterfeited)", d, vc, tok, vcb)
			}
			q := &r.in[d][vc]
			if vc == VCBubble {
				// Puente's rule: escape tokens are whole max-packet slots.
				if tok < 0 {
					return check.Violatef(check.BubbleSlots, node, e.now,
						"dir %d escape VC token balance %d < 0 (bubble slot underflow)", d, tok)
				}
				if tok%MaxPacketBytes != 0 {
					return check.Violatef(check.BubbleSlots, node, e.now,
						"dir %d escape VC token balance %d fragments the %d-byte slot quantum", d, tok, MaxPacketBytes)
				}
				if q.bytes > vcb {
					return check.Violatef(check.FIFOOccupancy, node, e.now,
						"dir %d escape VC holds %d bytes, capacity %d (no overshoot allowed)", d, q.bytes, vcb)
				}
			} else {
				// Flit-credit streaming: a grant needs one free granule and
				// may overshoot by at most MaxPacketBytes-PacketGranule.
				if tok < PacketGranule-MaxPacketBytes {
					return check.Violatef(check.CreditConservation, node, e.now,
						"dir %d vc %d token balance %d below the streaming floor %d", d, vc, tok, PacketGranule-MaxPacketBytes)
				}
				if q.bytes > vcb+MaxPacketBytes-PacketGranule {
					return check.Violatef(check.FIFOOccupancy, node, e.now,
						"dir %d vc %d holds %d bytes, capacity %d + overshoot bound %d",
						d, vc, q.bytes, vcb, MaxPacketBytes-PacketGranule)
				}
			}
		}
	}
	for i := range r.inj {
		if q := &r.inj[i]; q.bytes > e.par.InjFIFOBytes {
			return check.Violatef(check.FIFOOccupancy, node, e.now,
				"injection FIFO %d holds %d bytes, capacity %d", i, q.bytes, e.par.InjFIFOBytes)
		}
	}
	if r.recv.bytes > e.par.RecvFIFOBytes {
		return check.Violatef(check.FIFOOccupancy, node, e.now,
			"reception FIFO holds %d bytes, capacity %d", r.recv.bytes, e.par.RecvFIFOBytes)
	}
	// The arbitration index must agree with the queues: a stale set bit
	// wastes service passes, a stale clear bit starves a queue forever.
	for idx := 0; idx < numDirs*NumVC+len(r.inj); idx++ {
		var q *pktQueue
		if idx < numDirs*NumVC {
			q = &r.in[idx/NumVC][idx%NumVC]
		} else {
			q = &r.inj[idx-numDirs*NumVC]
		}
		if got, want := e.occ[node]&(1<<idx) != 0, q.count > 0; got != want {
			return check.Violatef(check.OccupancyMask, node, e.now,
				"queue %d: occMask bit %v but count %d", idx, got, q.count)
		}
	}
	return nil
}

// checkBubbleGrant re-verifies Puente's invariant immediately after an
// escape-channel grant: a continuing packet may consume the last free slot's
// predecessor but never go negative; a joining packet must leave at least
// one whole free bubble behind on the ring it entered.
func (e *engine) checkBubbleGrant(node int32, o int, joining bool, rem int32) {
	floor := int32(0)
	if joining {
		floor = MaxPacketBytes
	}
	if rem < floor && e.vio == nil {
		e.vio = check.Violatef(check.BubbleSlots, node, e.now,
			"escape grant on dir %d (joining=%v) left %d token bytes, bubble rule requires >= %d",
			o, joining, rem, floor)
	}
}

// checkInbound validates a cross-shard message against the receiving
// engine's clock: the windowed protocol guarantees every cross-shard effect
// lands at or after the receiver's current time (that lookahead is the
// sharded engine's entire correctness argument).
func (e *engine) checkInbound(m *xmsg) *check.Violation {
	if m.t < e.now {
		return check.Violatef(check.MonotonicTime, m.node, e.now,
			"cross-shard %s scheduled at t=%d behind the receiving shard's clock %d (window lookahead violated)",
			eventKindName(m.kind), m.t, e.now)
	}
	return nil
}

// checkInboundCredit is checkInbound for one credit decoded from a batched
// cross-shard word stream (coalesced mode): the same window-monotonicity
// contract, checked per logical credit rather than per message.
func (e *engine) checkInboundCredit(t int64, node int32) *check.Violation {
	return check.Violatef(check.MonotonicTime, node, e.now,
		"cross-shard batched credit scheduled at t=%d behind the receiving shard's clock %d (window lookahead violated)",
		t, e.now)
}

func eventKindName(kind uint8) string {
	switch kind {
	case evArrive:
		return "arrival"
	case evService:
		return "service"
	case evCPUKick:
		return "cpu-kick"
	case evCredit:
		return "credit"
	case evFault:
		return "fault"
	}
	return "event"
}

// checkLiveGrant records a grant onto a down link: freeOutputs masks dead
// directions out of every arbitration path, so reaching here means the
// masking chokepoint was bypassed. Called from tryRoute's commit when
// Params.Check is set on a faulted run.
func (e *engine) checkLiveGrant(node int32, o int) {
	if e.vio == nil {
		e.vio = check.Violatef(check.LinkLiveness, node, e.now,
			"grant onto down link %s (dead mask %#x)", DirName(o), e.deadMask[node])
	}
}

// checkFaultQuiescence audits the fault state after a completed run: outage
// bookkeeping must be coherent (every down direction has an open outage
// interval, every up one does not - credits crossed down/up transitions
// without losing the books), and no degraded link carries a nonsensical
// stretch. Forced-return ledger entries were already folded into the
// lazyAdd/lazyApply balance by forceFlushLazy.
func (nw *Network) checkFaultQuiescence(now int64) error {
	if len(nw.fsched) == 0 {
		return nil
	}
	for n := 0; n < nw.P; n++ {
		node := int32(n)
		for d := 0; d < numDirs; d++ {
			lnk := linkIdx(node, d)
			down := nw.deadMask[n]&(1<<d) != 0
			if open := nw.downSince[lnk] >= 0; open != down {
				return check.Violatef(check.LinkLiveness, node, now,
					"link %s: down=%v but outage-open=%v (DeadLinkTicks books broken)", DirName(d), down, open)
			}
			if nw.killMask[n]&(1<<d) != 0 && !down {
				return check.Violatef(check.LinkLiveness, node, now,
					"link %s: killed but not down (revived past a kill)", DirName(d))
			}
			if s := nw.stretch[lnk]; s < 1 || s > MaxDegradeFactor {
				return check.Violatef(check.LinkLiveness, node, now,
					"link %s: stretch factor %d out of range", DirName(d), s)
			}
		}
	}
	return nil
}

// checkQuiescence audits the whole machine after a completed run: every
// FIFO empty, every credit back home, no CPU or forwarding work pending,
// and the delivery ledger balanced (every injected packet delivered exactly
// once). Called only when Params.Check is set, after per-shard statistics
// are merged.
func (nw *Network) checkQuiescence() error {
	now := nw.Now()
	for n := range nw.routers {
		r := &nw.routers[n]
		node := int32(n)
		for d := 0; d < numDirs; d++ {
			if nw.nbrs[linkIdx(node, d)] < 0 {
				continue
			}
			for vc := 0; vc < NumVC; vc++ {
				if tok := nw.tok[tokIdx(node, d, vc)]; tok != nw.Par.VCBytes {
					return check.Violatef(check.Quiescence, node, now,
						"dir %d vc %d ended with %d tokens, capacity %d (stranded credits)", d, vc, tok, nw.Par.VCBytes)
				}
				if q := &r.in[d][vc]; q.count != 0 || q.bytes != 0 {
					return check.Violatef(check.Quiescence, node, now,
						"dir %d vc %d ended with %d packets / %d bytes queued", d, vc, q.count, q.bytes)
				}
			}
		}
		for i := range r.inj {
			if q := &r.inj[i]; q.count != 0 || q.bytes != 0 {
				return check.Violatef(check.Quiescence, node, now,
					"injection FIFO %d ended with %d packets / %d bytes", i, q.count, q.bytes)
			}
		}
		if r.recv.count != 0 || r.recv.bytes != 0 {
			return check.Violatef(check.Quiescence, node, now,
				"reception FIFO ended with %d packets / %d bytes", r.recv.count, r.recv.bytes)
		}
		if len(r.pendingFw) != 0 {
			return check.Violatef(check.Quiescence, node, now,
				"%d software forwards never re-injected", len(r.pendingFw))
		}
		if r.cpuBusy {
			return check.Violatef(check.Quiescence, node, now, "CPU still busy at end of run")
		}
		if r.pendValid {
			return check.Violatef(check.Quiescence, node, now, "polled source packet never injected")
		}
		if nw.occ[n] != 0 {
			return check.Violatef(check.Quiescence, node, now,
				"occupancy mask %#x nonzero over empty queues", nw.occ[n])
		}
		for w := 0; w < coalWays; w++ {
			if t := nw.credAt[n*coalWays+w]; t != 0 {
				return check.Violatef(check.Quiescence, node, now,
					"coalesced credit batch for tick %d never replayed (marker lost)", t)
			}
			if t := nw.arrAt[n*coalWays+w]; t != 0 {
				return check.Violatef(check.Quiescence, node, now,
					"coalesced arrival batch for tick %d never replayed (marker lost)", t)
			}
		}
		if k := len(nw.lazyCred[n]); k != 0 {
			return check.Violatef(check.Quiescence, node, now,
				"%d elided credits never matured (tokens stranded off the books)", k)
		}
		if nw.credPend[n] != 0 {
			return check.Violatef(check.Quiescence, node, now,
				"credit pending-batch counter %d nonzero over empty slots", nw.credPend[n])
		}
	}
	// Coalescing ledger: every logical credit/arrival accumulated into a
	// side table must have been replayed by its marker, and no spill batch
	// may outlive the run. Summed over engines (unused engines are zeroed).
	var sched, rep [2]int64
	var lazyAdd, lazyApply int64
	audit := func(e *engine) error {
		if len(e.credSpill) != 0 || len(e.arrSpill) != 0 {
			return check.Violatef(check.Quiescence, -1, now,
				"shard %d ended with %d credit / %d arrival spill batches pending",
				e.id, len(e.credSpill), len(e.arrSpill))
		}
		for k := 0; k < 2; k++ {
			sched[k] += e.coalSched[k]
			rep[k] += e.coalRep[k]
		}
		lazyAdd += e.lazyAdd
		lazyApply += e.lazyApply
		return nil
	}
	if err := audit(&nw.eng); err != nil {
		return err
	}
	for i := range nw.shards {
		if err := audit(&nw.shards[i]); err != nil {
			return err
		}
	}
	if sched != rep {
		return check.Violatef(check.Quiescence, -1, now,
			"coalescing ledger unbalanced: %d/%d credits and %d/%d arrivals scheduled/replayed",
			sched[0], rep[0], sched[1], rep[1])
	}
	if lazyAdd != lazyApply {
		return check.Violatef(check.Quiescence, -1, now,
			"lazy credit ledger unbalanced: %d elided but %d applied", lazyAdd, lazyApply)
	}
	if st := &nw.stats; st.PacketsInjected != st.TotalDelivered {
		return check.Violatef(check.Quiescence, -1, now,
			"%d packets injected but %d delivered (exactly-once broken)", st.PacketsInjected, st.TotalDelivered)
	}
	return nw.checkFaultQuiescence(now)
}
