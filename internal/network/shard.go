package network

import (
	"fmt"
	"sync"

	"alltoall/internal/parallel"
)

// This file is the BSP escape hatch (Params.Sync = SyncBSP) of the sharded
// engine: a conservative time-windowed parallel simulation in which nodes
// are partitioned into contiguous rank slabs, each advanced by its own
// worker over a private event heap, all in lockstep. Within a window of
// width shardSafeWindow no shard can affect another - every cross-shard
// effect travels with a known minimum delay (PacketGranule+RouterDelay for
// packet arrivals, CreditDelay for token returns) - so an event generated
// inside the window [T, T+W) lands at T+W or later. Cross-shard events go
// into per-shard-pair mailboxes drained at the window barrier; because the
// event order is a strict total order on (t, node, kind, arg) and arrival
// args are pid-independent (see heap.go), the pop sequence - and therefore
// every handler call, statistic, and the finish time - is byte-identical to
// the serial engine at any shard count.
//
// The default protocol is the asynchronous conservative engine in
// shard_async.go, which drops the global barriers in favour of published
// per-shard clocks and a slab-distance lookahead matrix; this barrier
// protocol remains as the differential oracle and escape hatch, exactly as
// the reference event heap does for the calendar queue.

// xmsg is one cross-shard effect: a packet arrival (kind evArrive, packet
// carried by value; the destination shard re-homes it into its own pool) or
// a credit return (kind evCredit, arg as in creditArg).
type xmsg struct {
	t    int64
	node int32
	arg  int32
	kind uint8
	pkt  packet
}

// shardSafeWindow is the minimum delay of any cross-node interaction: the
// provably safe lockstep window of the BSP escape hatch, and the per-hop
// unit of the async engine's lookahead matrix (lookahead between slabs at
// boundary distance d is d windows). A non-positive result (degenerate
// parameters) disables sharding.
func shardSafeWindow(par Params) int64 {
	w := int64(PacketGranule) + par.RouterDelay
	if par.CreditDelay < w {
		w = par.CreditDelay
	}
	return w
}

// ensureShards (re)builds the shard engines for the given count, reusing
// them across Reset cycles so cached sweeps stay allocation-free.
func (nw *Network) ensureShards(s int) {
	if len(nw.shards) == s {
		return
	}
	if nw.shardOf == nil {
		nw.shardOf = make([]int16, nw.P)
	}
	nw.shards = make([]engine, s)
	for i := 0; i < s; i++ {
		lo := int32(nw.P * i / s)
		hi := int32(nw.P * (i + 1) / s)
		e := &nw.shards[i]
		e.init(nw, int32(i), lo, hi, &Stats{
			LinkBusy: make([]int64, nw.P*numDirs),
			CPUBusy:  make([]int64, nw.P),
		})
		e.shardOf = nw.shardOf
		e.out = make([][]xmsg, s)
		e.credOut = make([]creditBatch, s)
		for j := range e.credOut {
			e.credOut[j].hdr = -1
		}
		for n := lo; n < hi; n++ {
			nw.shardOf[n] = int16(i)
		}
	}
	nw.barrier = parallel.NewBarrier(s)
	// Async machinery, structural per shard count: the shard-graph distance
	// matrix, the published arrays, per-engine scratch, and one SPSC ring
	// per boundary-adjacent ordered pair (direct cross-shard messages only
	// ever cross one slab boundary). The per-run parts (lookahead values,
	// clock zeroing) are re-derived by prepareAsync.
	nw.deriveShardDist(s)
	st := &nw.async
	st.clocks = parallel.NewClocks(s)
	st.gens = parallel.NewClocks(s)
	st.idle = parallel.NewClocks(s)
	st.look = make([]int64, s*s)
	st.outbox = make([][]*xring, s)
	st.inbox = make([][]*xring, s)
	for i := 0; i < s; i++ {
		st.outbox[i] = make([]*xring, s)
	}
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i != j && nw.shardDist[i*s+j] == 1 {
				q := newXring()
				st.outbox[i][j] = q
				st.inbox[j] = append(st.inbox[j], q)
			}
		}
	}
	for i := 0; i < s; i++ {
		e := &nw.shards[i]
		e.ax.clockSnap = make([]int64, s)
		e.ax.genSnap = make([]int64, s)
	}
}

func (nw *Network) runSharded(maxTime int64, shards int) (int64, error) {
	nw.ensureShards(shards)
	nw.sharded = true
	window := shardSafeWindow(nw.Par)
	asyncMode := nw.Par.Sync != SyncBSP
	if asyncMode {
		nw.prepareAsync(shards, window)
	}
	for i := range nw.shards {
		e := &nw.shards[i]
		e.obs = nil
		if nw.observer != nil {
			e.obs = nw.observer.Sink(i, shards, e.lo, e.hi)
		}
		e.cancel = nw.cancel
		e.async = asyncMode
		if asyncMode {
			e.ax.st = &nw.async
			e.ax.clock = 0
		}
		e.activeSrc = 0
		if nw.sources != nil {
			for n := e.lo; n < e.hi; n++ {
				if nw.sources[n] != nil {
					e.activeSrc++
				}
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	if asyncMode {
		for i := 1; i < shards; i++ {
			go nw.shards[i].runAsync(maxTime, &wg)
		}
		nw.shards[0].runAsync(maxTime, nil)
	} else {
		for i := 1; i < shards; i++ {
			go nw.shards[i].run(maxTime, window, &wg)
		}
		nw.shards[0].run(maxTime, window, nil)
	}
	wg.Wait()
	for i := range nw.shards {
		if err := nw.shards[i].err; err != nil {
			return 0, err
		}
	}
	if asyncMode {
		if err := nw.async.failed(); err != nil {
			return 0, err
		}
	}
	ss := SyncStats{Mode: SyncBSP, Shards: shards, LookaheadMin: window, LookaheadMax: window}
	if asyncMode {
		ss.Mode = SyncAsync
		ss.LookaheadMin = nw.async.lookMin
		ss.LookaheadMax = nw.async.lookMax
	}
	for i := range nw.shards {
		e := &nw.shards[i]
		ss.HorizonAdvances += e.syncAdvances
		ss.BlockedWaits += e.syncWaits
		ss.BlockedWaitNs += e.syncWaitNs
		ss.CrossShardEvents += e.syncXEv
		ss.CrossShardBytes += e.syncXBytes
	}
	nw.syncStats = ss
	var inFlight int64
	activeSrc := 0
	for i := range nw.shards {
		inFlight += nw.shards[i].inFlight
		activeSrc += nw.shards[i].activeSrc
	}
	if inFlight != 0 || activeSrc != 0 {
		return 0, fmt.Errorf("network: stalled at t=%d with %d packets in flight, %d active sources (deadlock?)",
			nw.Now(), inFlight, activeSrc)
	}
	for i := range nw.shards {
		// Workers have quiesced; the force-flush runs serially per shard so
		// the forced-return counts land in that shard's own statistics.
		nw.shards[i].forceFlushLazy()
	}
	for i := range nw.shards {
		s := nw.shards[i].stats
		s.closeWindows()
		nw.stats.merge(s)
	}
	nw.closeFaultStats()
	if nw.Par.Check {
		// After the merge so the exactly-once ledger sees machine totals.
		if err := nw.checkQuiescence(); err != nil {
			return 0, err
		}
	}
	nw.stats.closeWindows()
	nw.stats.renderUtil(nw.Par.UtilSampleWindow, nw.linkCount)
	if nw.observer != nil {
		nw.observer.EndRun(nw.stats.FinishTime)
	}
	return nw.stats.FinishTime, nil
}

// run is one shard worker. All shards execute the same barrier sequence and
// compute the window decision from identical published state, so they exit
// on the same iteration and the barrier count stays balanced.
//
// The memory discipline: a shard's outboxes and its err/inMin fields are
// written only in the drain span (between the window barrier and the next
// inMin barrier), in which no other shard reads them; the barrier's atomics
// order every write before a crossing against every read after it. A window
// error therefore cannot be published from inside processUntil - the other
// shards are concurrently reading err for the same iteration's exit vote -
// so it is staged in pend and published at the top of the next iteration.
func (e *engine) run(maxTime, window int64, wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	nw := e.nw
	e.armFaults(maxTime)
	for n := e.lo; n < e.hi; n++ {
		e.maybeRunCPU(n)
	}
	e.syncWaits++
	nw.barrier.Await() // initial injections scheduled; outboxes stable (empty)
	var pend error
	for {
		// The loop top is inside the drain span (between the window barrier
		// and the next inMin barrier), the only region where this shard may
		// publish err - which is also what makes it the cancellation point:
		// every shard sees the same signal and votes to fail together.
		if pend == nil && e.cancel != nil {
			select {
			case <-e.cancel:
				pend = fmt.Errorf("%w at t=%d (window barrier)", ErrCanceled, e.now)
			default:
			}
		}
		if pend != nil {
			if e.err == nil {
				e.err = pend
			}
			pend = nil
		}
		e.drainInboxes()
		if e.evq.len() > 0 {
			e.inMin = e.evq.top().t
		} else {
			e.inMin = maxInt64
		}
		e.syncWaits++
		nw.barrier.Await() // inMin published, all inboxes drained
		gmin := maxInt64
		fail := false
		for i := range nw.shards {
			o := &nw.shards[i]
			if o.err != nil {
				fail = true
			}
			if o.inMin < gmin {
				gmin = o.inMin
			}
		}
		if fail || gmin == maxInt64 {
			return
		}
		if err := e.processUntil(gmin+window, maxTime); err != nil {
			pend = err
		}
		e.syncAdvances++
		e.syncWaits++
		nw.barrier.Await() // window processed; outboxes and err published
	}
}

// drainInboxes moves every message other shards addressed to this one onto
// the local heap. Arrivals are re-homed into this engine's packet pool; the
// pool-slot number never influences event order (heap.go), so the transfer
// is invisible to the simulation.
func (e *engine) drainInboxes() {
	for i := range e.nw.shards {
		if int32(i) == e.id {
			continue
		}
		src := &e.nw.shards[i]
		box := src.out[e.id]
		for j := range box {
			m := &box[j]
			if e.par.Check && e.err == nil {
				// The window protocol's whole correctness argument: every
				// cross-shard effect must land at or after this shard's
				// clock. A violation is published at the next barrier.
				if v := e.checkInbound(m); v != nil {
					e.err = v
				}
			}
			if m.kind == evArrive {
				pid := e.allocPkt()
				e.pkts[pid] = m.pkt
				e.inFlight++
				if e.coal {
					e.scheduleArrive(m.t, m.node, arriveArg(m.pkt.inDir, pid))
				} else {
					e.evq.push(mkEvent(m.t, m.node, arriveArg(m.pkt.inDir, pid), evArrive))
				}
			} else {
				e.evq.push(mkEvent(m.t, m.node, m.arg, evCredit))
			}
		}
		src.out[e.id] = box[:0]
		// Batched credit words (coalesced mode): decode straight into the
		// accumulator tables. The window protocol's monotonicity contract
		// applies per decoded credit exactly as it does per xmsg.
		if cb := &src.credOut[e.id]; len(cb.words) > 0 {
			e.credRecs = cb.decodeInto(e.credRecs[:0])
			for _, rec := range e.credRecs {
				if e.par.Check && e.err == nil && rec.t < e.now {
					e.err = e.checkInboundCredit(rec.t, rec.node)
				}
				// Same elision test as the in-shard path (sendCredit), applied
				// where this node's outBusy is readable: a credit whose link is
				// busy - or down - through t needs no event, only a lazy token
				// add.
				if dir, _, _ := creditUnpack(rec.arg); e.outBusy[linkIdx(rec.node, dir)] > rec.t ||
					e.deadThrough(rec.node, dir, rec.t) {
					e.stashCredit(rec.node, rec.t, rec.arg)
				} else {
					e.scheduleCredit(rec.node, rec.t, rec.arg)
				}
			}
			cb.reset()
		}
	}
}
