package network

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"alltoall/internal/check"
	"alltoall/internal/torus"
)

func TestParseFaultsRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"0:12:+x:kill",
		"0:12:+x:kill;5000:40:-y:down;9000:40:-y:up;0:7:+z:x4",
		"100:0:-z:x4096",
	} {
		fs, err := ParseFaults(spec)
		if err != nil {
			t.Fatalf("ParseFaults(%q): %v", spec, err)
		}
		fs2, err := ParseFaults(fs.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", fs.String(), err)
		}
		if !reflect.DeepEqual(fs, fs2) {
			t.Errorf("round trip of %q: %+v != %+v", spec, fs, fs2)
		}
	}
	// Whitespace tolerance: the canonical encoding of a padded spec matches
	// the unpadded one.
	a, err := ParseFaults(" 5:1:+y:down ;\t6:1:+y:up ")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseFaults("5:1:+y:down;6:1:+y:up")
	if a.String() != b.String() {
		t.Errorf("whitespace changed the schedule: %q vs %q", a, b)
	}
}

func TestParseFaultsRejects(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"1:2:3",            // too few fields
		"1:2:+x:down:more", // too many fields
		"-1:2:+x:down",     // negative time
		"1:-2:+x:down",     // negative node
		"1:2:+w:down",      // unknown direction
		"1:2:+x:explode",   // unknown action
		"1:2:+x:x0",        // degrade factor below 1
		"1:2:+x:x4097",     // degrade factor above MaxDegradeFactor
		"1:2:+x:x",         // missing factor
	} {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("ParseFaults(%q) accepted", spec)
		}
	}
}

// faultRun performs one checked all-to-all run with the given schedule.
func faultRun(t *testing.T, shape torus.Shape, par Params, fs *FaultSchedule, shards int) (int64, *Stats) {
	t.Helper()
	par.Check = true
	par.Faults = fs
	p := shape.P()
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 192}
	}
	nw, err := New(shape, par, srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := nw.RunSharded(1<<40, shards)
	if err != nil {
		t.Fatalf("faulted run (shards=%d, coalesce=%q, eventq=%q): %v", shards, par.Coalesce, par.EventQueue, err)
	}
	st := nw.Stats()
	if st.PacketsInjected != st.TotalDelivered {
		t.Fatalf("delivery ledger broken: %d injected, %d delivered", st.PacketsInjected, st.TotalDelivered)
	}
	return ft, st
}

// TestZeroFaultScheduleByteIdentical pins the no-fault fast path: an empty
// (but non-nil) schedule must be byte-identical - finish time and full
// statistics - to Params.Faults == nil, at shards 1 and 4.
func TestZeroFaultScheduleByteIdentical(t *testing.T) {
	shape := torus.New(4, 4, 2)
	for _, shards := range []int{1, 4} {
		ftNil, stNil := faultRun(t, shape, DefaultParams(), nil, shards)
		ftEmpty, stEmpty := faultRun(t, shape, DefaultParams(), &FaultSchedule{}, shards)
		if ftNil != ftEmpty {
			t.Errorf("shards=%d: empty schedule finish %d, nil %d", shards, ftEmpty, ftNil)
		}
		if !reflect.DeepEqual(stNil, stEmpty) {
			t.Errorf("shards=%d: empty schedule stats diverge from nil\nempty: %+v\nnil:   %+v",
				shards, stEmpty, stNil)
		}
		if stEmpty.DeadLinkTicks != 0 || stEmpty.Reroutes != 0 || stEmpty.ForcedCreditReturns != 0 {
			t.Errorf("shards=%d: healthy run reports fault stats: dead=%d reroutes=%d forced=%d",
				shards, stEmpty.DeadLinkTicks, stEmpty.Reroutes, stEmpty.ForcedCreditReturns)
		}
	}
}

// TestFaultedRunIdenticalEverywhere is the determinism oracle for fault
// injection: a schedule mixing a permanent kill, a transient outage, and a
// degraded link must produce the same finish time and engine-invariant
// statistics at shards {1,4} x coalesce {on,off} x event queue
// {calendar,heap}, with the invariant checker on throughout. QueuedEvents and
// ForcedCreditReturns are coalesce-mode bookkeeping (how work was scheduled,
// not what the machine did) and are normalized out; the logical EventsByKind
// counts must agree exactly.
func TestFaultedRunIdenticalEverywhere(t *testing.T) {
	shape := torus.New(4, 4, 2)
	fs, err := ParseFaults("0:5:+x:kill;300:12:-y:down;2500:12:-y:up;0:20:-z:x4")
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultParams()
	base.Coalesce = CoalesceOff
	ftRef, stRef := faultRun(t, shape, base, fs, 1)
	if stRef.DeadLinkTicks == 0 {
		t.Error("schedule with a t=0 kill accrued no DeadLinkTicks")
	}
	for _, tc := range []struct {
		name     string
		coalesce string
		queue    string
		shards   int
	}{
		{"serial-coal", CoalesceOn, "", 1},
		{"sharded-off", CoalesceOff, "", 4},
		{"sharded-coal", CoalesceOn, "", 4},
		{"serial-coal-heap", CoalesceOn, EventQueueHeap, 1},
		{"sharded-coal-heap", CoalesceOn, EventQueueHeap, 4},
		{"sharded-off-heap", CoalesceOff, EventQueueHeap, 4},
	} {
		par := DefaultParams()
		par.Coalesce = tc.coalesce
		par.EventQueue = tc.queue
		ft, st := faultRun(t, shape, par, fs, tc.shards)
		if ft != ftRef {
			t.Errorf("%s: finish %d, reference %d", tc.name, ft, ftRef)
		}
		if st.EventsByKind != stRef.EventsByKind {
			t.Errorf("%s: logical event counts diverge: %v vs %v", tc.name, st.EventsByKind, stRef.EventsByKind)
		}
		st.QueuedEvents = stRef.QueuedEvents
		st.ForcedCreditReturns = stRef.ForcedCreditReturns
		if !reflect.DeepEqual(st, stRef) {
			t.Errorf("%s: stats diverge from reference\ngot: %+v\nref: %+v", tc.name, st, stRef)
		}
	}
}

// TestKilledLinkDegradesGracefully: a permanently killed torus link must not
// stop the collective - packets reroute the long way around the ring, the
// delivery ledger stays exactly-once (asserted inside faultRun), the checker
// stays clean, and completion is no faster than the healthy run.
func TestKilledLinkDegradesGracefully(t *testing.T) {
	shape := torus.New(4, 4, 2)
	ftHealthy, _ := faultRun(t, shape, DefaultParams(), nil, 1)
	fs, _ := ParseFaults("0:5:+x:kill")
	ft, st := faultRun(t, shape, DefaultParams(), fs, 1)
	if st.Reroutes == 0 {
		t.Error("killed +x ring link forced no reroutes")
	}
	if st.DeadLinkTicks != ft {
		t.Errorf("one link dead for the whole run: DeadLinkTicks %d, finish %d", st.DeadLinkTicks, ft)
	}
	// Band-tolerant monotonicity: adaptive rerouting under a fault can
	// serendipitously dodge contention the healthy schedule hits, so a small
	// speedup is legitimate; a large one would mean the fault leaked capacity.
	if ft < ftHealthy*95/100 {
		t.Errorf("killing a link sped the run up beyond the 5%% band: %d faulted vs %d healthy", ft, ftHealthy)
	}
}

// TestTransientOutageAccrues: a down/up pair accrues exactly the outage
// window, and a closed outage leaves no tail at end of run.
func TestTransientOutageAccrues(t *testing.T) {
	shape := torus.New(4, 4, 2)
	fs, _ := ParseFaults("100:3:+y:down;1300:3:+y:up")
	_, st := faultRun(t, shape, DefaultParams(), fs, 1)
	if st.DeadLinkTicks != 1200 {
		t.Errorf("outage [100,1300) accrued %d DeadLinkTicks, want 1200", st.DeadLinkTicks)
	}
}

// TestDegradedLinkSlowsRun: stretching a busy link's wire occupancy must cost
// time, never save it, and must not disturb the delivery ledger.
func TestDegradedLinkSlowsRun(t *testing.T) {
	shape := torus.New(4, 4, 2)
	ftHealthy, _ := faultRun(t, shape, DefaultParams(), nil, 1)
	// Node 0's live links on 4x4x2 (the z dimension is a 2-deep mesh): all of
	// x and y, +z only.
	fs, _ := ParseFaults("0:0:+x:x8;0:0:-x:x8;0:0:+y:x8;0:0:-y:x8;0:0:+z:x8")
	ft, st := faultRun(t, shape, DefaultParams(), fs, 1)
	if ft <= ftHealthy {
		t.Errorf("degrading every link of node 0 by 8x did not slow the run: %d vs %d healthy", ft, ftHealthy)
	}
	if st.DeadLinkTicks != 0 {
		t.Errorf("degraded (not dead) links accrued %d DeadLinkTicks", st.DeadLinkTicks)
	}
}

// TestMeshDeadLinkIsHonest: a mesh dimension has no long way around, so
// killing a link a packet needs must end in the standard stall diagnostic,
// not a hang or a silent drop.
func TestMeshDeadLinkIsHonest(t *testing.T) {
	shape := torus.NewMesh(4, 1, 1, false, false, false)
	par := DefaultParams()
	par.Check = true
	fs, err := ParseFaults("0:1:+x:kill")
	if err != nil {
		t.Fatal(err)
	}
	par.Faults = fs
	srcs := make([]Source, 4)
	for n := 0; n < 4; n++ {
		srcs[n] = &allToAllSource{self: int32(n), p: 4, size: 192}
	}
	nw, err := New(shape, par, srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = nw.Run(1 << 40)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("partitioned mesh run: %v, want stall diagnostic", err)
	}
}

func TestFaultScheduleValidation(t *testing.T) {
	shape := torus.NewMesh(4, 2, 2, false, false, false)
	for name, fs := range map[string]*FaultSchedule{
		"node out of range": {Events: []FaultEvent{{T: 0, Node: 99, Dir: 0, Action: FaultDown}}},
		"negative node":     {Events: []FaultEvent{{T: 0, Node: -1, Dir: 0, Action: FaultDown}}},
		"bad direction":     {Events: []FaultEvent{{T: 0, Node: 0, Dir: 9, Action: FaultDown}}},
		"mesh edge link":    {Events: []FaultEvent{{T: 0, Node: 0, Dir: 1, Action: FaultDown}}}, // node 0 has no -x
		"negative time":     {Events: []FaultEvent{{T: -5, Node: 0, Dir: 0, Action: FaultDown}}},
		"bad factor":        {Events: []FaultEvent{{T: 0, Node: 0, Dir: 0, Action: FaultDegrade, Factor: 0}}},
		"up after kill": {Events: []FaultEvent{
			{T: 10, Node: 0, Dir: 0, Action: FaultKill},
			{T: 20, Node: 0, Dir: 0, Action: FaultUp},
		}},
	} {
		par := DefaultParams()
		par.Faults = fs
		if _, err := New(shape, par, nil, countOnly{}); err == nil {
			t.Errorf("%s: schedule accepted", name)
		}
	}
}

// TestFaultQuiescenceAudit drives the fault-aware quiescence checks directly:
// a clean faulted run passes, then corrupted outage bookkeeping is caught as
// a LinkLiveness violation.
func TestFaultQuiescenceAudit(t *testing.T) {
	shape := torus.New(4, 4, 2)
	par := DefaultParams()
	par.Check = true
	fs, _ := ParseFaults("100:3:+y:down;1300:3:+y:up")
	par.Faults = fs
	srcs := make([]Source, shape.P())
	for n := range srcs {
		srcs[n] = &allToAllSource{self: int32(n), p: int32(shape.P()), size: 192}
	}
	nw, err := New(shape, par, srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Run(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := nw.checkQuiescence(); err != nil {
		t.Fatalf("clean faulted run not quiescent: %v", err)
	}
	lnk := linkIdx(3, 2) // node 3, +y
	nw.downSince[lnk] = 500
	err = nw.checkQuiescence()
	var v *check.Violation
	if !errors.As(err, &v) || v.Invariant != check.LinkLiveness {
		t.Fatalf("corrupted outage books not caught as link-liveness: %v", err)
	}
	nw.downSince[lnk] = -1
	nw.stretch[lnk] = 0
	err = nw.checkQuiescence()
	if !errors.As(err, &v) || v.Invariant != check.LinkLiveness {
		t.Fatalf("corrupted stretch not caught as link-liveness: %v", err)
	}
}

// TestFaultResetReplays: Reset must restore the healthy initial fault state so
// a re-run of the same network replays the faulted run byte-identically.
func TestFaultResetReplays(t *testing.T) {
	shape := torus.New(4, 4, 2)
	par := DefaultParams()
	par.Check = true
	fs, _ := ParseFaults("0:5:+x:kill;300:12:-y:down;2500:12:-y:up")
	par.Faults = fs
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 192}
		}
		return srcs
	}
	nw, err := New(shape, par, mkSrcs(), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	ft1, err := nw.Run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	st1 := nw.Stats()
	if err := nw.Reset(mkSrcs(), countOnly{}); err != nil {
		t.Fatal(err)
	}
	ft2, err := nw.Run(1 << 40)
	if err != nil {
		t.Fatalf("re-run after Reset: %v", err)
	}
	if ft1 != ft2 {
		t.Errorf("re-run finish %d, first run %d", ft2, ft1)
	}
	if !reflect.DeepEqual(st1, nw.Stats()) {
		t.Errorf("re-run stats diverge:\nfirst: %+v\nre:    %+v", st1, nw.Stats())
	}
}
