package network

import (
	"testing"
	"testing/quick"
)

func TestPktQueueFIFO(t *testing.T) {
	q := newPktQueue(1024)
	for i := int32(0); i < 4; i++ {
		if !q.fits(256) {
			t.Fatalf("push %d rejected", i)
		}
		q.push(pktRef{}, i, 256)
	}
	if q.fits(64) {
		t.Error("overfull accept")
	}
	for i := int32(0); i < 4; i++ {
		if got := q.peek(); got != i {
			t.Fatalf("peek = %d, want %d", got, i)
		}
		if got := q.pop(256); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if !q.empty() {
		t.Error("not empty after draining")
	}
}

func TestPktQueueRemoveAt(t *testing.T) {
	q := newPktQueue(2048)
	for i := int32(0); i < 5; i++ {
		q.push(pktRef{}, 10+i, 64)
	}
	if got := q.removeAt(2, 64); got != 12 {
		t.Fatalf("removeAt(2) = %d", got)
	}
	want := []int32{10, 11, 13, 14}
	for i, w := range want {
		if got := q.idAt(int32(i)); got != w {
			t.Fatalf("after removeAt, at(%d) = %d, want %d", i, got, w)
		}
	}
	// Remove the head via removeAt(0) matches pop semantics.
	if got := q.removeAt(0, 64); got != 10 {
		t.Fatalf("removeAt(0) = %d", got)
	}
	if q.count != 3 || q.bytes != 3*64 {
		t.Fatalf("count=%d bytes=%d", q.count, q.bytes)
	}
}

func TestPktQueueWrapAround(t *testing.T) {
	q := newPktQueue(4 * 64)
	// Exercise ring wrap: repeatedly push/pop past the buffer end.
	next := int32(0)
	expect := int32(0)
	for round := 0; round < 25; round++ {
		for q.fits(64) {
			q.push(pktRef{}, next, 64)
			next++
		}
		q.pop(64)
		expect++
		q.removeAt(1, 64) // middle removal under wrap
		// The removed id is expect+1; account for it.
		for i := int32(0); i < q.count; i++ {
			got := q.idAt(i)
			if got == expect+1 {
				t.Fatalf("removed element still present")
			}
		}
		// Drain one more to keep ids tractable.
		got := q.pop(64)
		if got != expect {
			t.Fatalf("round %d: pop = %d, want %d", round, got, expect)
		}
		expect += 2 // one popped + one removed from the middle
	}
}

func TestPktQueueOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	q := newPktQueue(128)
	q.push(pktRef{}, 0, 64)
	q.push(pktRef{}, 1, 64)
	q.push(pktRef{}, 2, 64)
}

func TestEventHeapOrdering(t *testing.T) {
	f := func(times []int16) bool {
		var h eventHeap
		for i, tt := range times {
			h.push(mkEvent(int64(tt), 0, int32(i), evArrive))
		}
		last := int64(-1 << 40)
		for h.len() > 0 {
			e := h.pop()
			if e.t < last {
				return false
			}
			last = e.t
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventPacking(t *testing.T) {
	for _, tc := range []struct {
		node, a int32
		kind    uint8
	}{
		{0, 0, evArrive},
		{65535, 1 << 20, evService},
		{(1 << 29) - 1, (1 << 31) - 1, evCPUKick},
		{12345, 99, evFault},
		{7, 0x7f, evService},
	} {
		e := mkEvent(42, tc.node, tc.a, tc.kind)
		if e.node() != tc.node || e.arg() != tc.a || e.kind() != tc.kind {
			t.Errorf("mkEvent(%d,%d,%d) round-trip = (%d,%d,%d)",
				tc.node, tc.a, tc.kind, e.node(), e.arg(), e.kind())
		}
	}
}

func TestEventHeapTotalOrder(t *testing.T) {
	// Equal-time events must pop in (node, kind, arg) order regardless of
	// push order, so simulation results cannot depend on heap internals.
	var h eventHeap
	h.push(mkEvent(5, 2, 0, evArrive))
	h.push(mkEvent(5, 1, 3, evCPUKick))
	h.push(mkEvent(5, 1, 1, evService))
	h.push(mkEvent(3, 9, 0, evService))
	h.push(mkEvent(5, 1, 2, evService))
	want := []event{
		mkEvent(3, 9, 0, evService),
		mkEvent(5, 1, 1, evService),
		mkEvent(5, 1, 2, evService),
		mkEvent(5, 1, 3, evCPUKick),
		mkEvent(5, 2, 0, evArrive),
	}
	for i, w := range want {
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestEventHeapStableUnderInterleaving(t *testing.T) {
	var h eventHeap
	for i := 0; i < 100; i++ {
		h.push(event{t: int64(100 - i)})
		if i%3 == 0 {
			h.pop()
		}
	}
	last := int64(-1)
	for h.len() > 0 {
		e := h.pop()
		if e.t < last {
			t.Fatalf("heap order violated: %d after %d", e.t, last)
		}
		last = e.t
	}
}
