package network

import "alltoall/internal/torus"

// NumDirs is the number of output directions per router (two per torus
// dimension; dir = 2*dim for the + direction, 2*dim+1 for the -).
const NumDirs = numDirs

// Observer taps the simulator's hot path for instrumentation: per-link and
// per-VC traffic, head-of-line blocking, FIFO depths, and CPU occupancy.
// Install one with Network.SetObserver before a run.
//
// The contract mirrors the invariant checker's: an observer may only record,
// never perturb - the simulation's event sequence, statistics, and handler
// observations must be byte-identical with and without one installed. When
// no observer is installed the hot path pays one predicted nil-check branch
// per hook site (the same bar as Params.Check).
//
// Sharding: each engine (shard) requests its own Sink and calls it only from
// the worker goroutine that owns the shard's node range, so a Sink needs no
// locking as long as any state shared between sinks is partitioned by node
// (shards own disjoint node ranges). EndRun is called once, after all
// workers have quiesced, and is where per-shard state is folded into run
// totals; folding in shard order keeps aggregation deterministic.
type Observer interface {
	// BeginRun announces a run on the given machine. Called once per
	// Run/RunSharded, before any event is processed. A recycled network
	// (Reset) calls it again for each new run; observers that should
	// accumulate across phases or sweep points simply keep their counters.
	BeginRun(shape torus.Shape, par Params)

	// Sink returns the event sink for one engine covering nodes [lo, hi).
	// The serial engine requests a single sink (shard 0 of 1).
	Sink(shard, shards int, lo, hi int32) Sink

	// EndRun marks a successful run completion at the given finish time.
	// Failed runs (stall, cancellation, invariant violation) skip it.
	EndRun(finish int64)
}

// Sink receives the per-event callbacks for one engine. All times are in
// simulation units; node/dir/vc follow the router's conventions (dir/2 is
// the torus dimension, vc is a VC* constant or -1 for injection FIFOs).
type Sink interface {
	// OnGrant fires when a packet wins an output link: size wire bytes on
	// direction dir of node, on virtual channel vc.
	OnGrant(now int64, node int32, dir int, vc int8, size int32)

	// OnBlocked fires each arbitration pass in which an eligible packet
	// failed to move (wanted links busy, or insufficient credits). inDir/vc
	// locate the queue the packet occupies (-1/-1 for an injection FIFO),
	// want is its desired-output bitmask, since the time it first blocked
	// here, qCount the queue's depth and win the arbitration lookahead -
	// qCount > win means further packets are stuck behind the window
	// (head-of-line victims).
	OnBlocked(now int64, node int32, inDir, vc int8, want uint8, since int64, qCount, win int32)

	// OnInjFIFO fires after a packet enters an injection FIFO, with the
	// FIFO's resulting byte occupancy.
	OnInjFIFO(node int32, fifo int, bytes int32)

	// OnRecvFIFO fires after a packet enters the reception FIFO, with the
	// FIFO's resulting byte occupancy.
	OnRecvFIFO(node int32, bytes int32)

	// OnCPU fires when a CPU operation starts at node, charging cost units.
	OnCPU(now int64, node int32, cost int64)
}

// FaultSink is an optional extension of Sink. A sink that also implements it
// receives every effective fault transition (a Down/Kill that actually took a
// live link out, an Up that actually restored one, every Degrade) at the
// simulation time it applied. Transitions arrive on the owning shard's
// goroutine, like every other Sink callback; scheduled transitions that
// change nothing (a second Down on an already-dead link, an Up on a killed
// one) are not reported. Sinks that do not implement FaultSink simply never
// hear about faults - the extension keeps existing Sink implementations
// source-compatible.
type FaultSink interface {
	OnFault(now int64, node int32, dir int, action FaultAction, factor int32)
}

// SetObserver installs (or, with nil, removes) the observer for subsequent
// runs. Must not be called while a run is in progress. The observer is
// preserved across Reset: recycled sweep runs keep reporting to it.
func (nw *Network) SetObserver(obs Observer) { nw.observer = obs }
