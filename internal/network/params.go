// Package network implements a packet-granularity discrete-event simulator
// of the Blue Gene/L torus interconnect: input-queued routers with per-input
// virtual-channel FIFOs, token (credit) flow control, a bubble escape
// channel with dimension-ordered deterministic routing, minimal adaptive
// routing with join-the-shortest-queue output selection, injection and
// reception FIFOs, and a serial per-node CPU model for packet handling.
//
// Time is measured in abstract "byte-times": one unit is the time to move
// one byte across one torus link at the paper's effective rate
// (beta = 6.48 ns at calibration). A packet of S wire bytes occupies a link
// for S units. The CPU moves CPUDen bytes per unit aggregate (default 4,
// the paper's "processor can keep about four links busy").
package network

import "fmt"

// Packet size limits, from the Blue Gene/L torus: packets are multiples of
// 32 bytes up to 256 bytes; the paper's messaging runtime never sends less
// than 64 bytes.
const (
	MaxPacketBytes = 256
	MinPacketBytes = 64
	PacketGranule  = 32
)

// Virtual channel indices at each router input port.
const (
	VCDyn0   = 0 // dynamic (adaptive) channel 0
	VCDyn1   = 1 // dynamic (adaptive) channel 1
	VCBubble = 2 // bubble escape channel (deterministic, dimension-ordered)
	NumVC    = 3
)

// Params configures the simulated machine. The zero value is not valid; use
// DefaultParams.
type Params struct {
	// VCBytes is the buffer capacity of each input virtual-channel FIFO in
	// bytes (BG/L: ~1 KiB, i.e. four full-size packets).
	VCBytes int32

	// InjFIFOs is the number of injection FIFOs per node. The collective
	// layer maps injection classes onto FIFOs; the Two Phase Schedule
	// reserves distinct FIFOs for its two phases.
	InjFIFOs int

	// InjFIFOBytes is the capacity of each injection FIFO in bytes.
	InjFIFOBytes int32

	// RecvFIFOBytes is the capacity of the reception FIFO in bytes. When
	// full, arriving packets stall in their input VCs (backpressure).
	RecvFIFOBytes int32

	// RouterDelay is the per-hop pipeline latency in time units added on
	// top of the wire occupancy (approximately 100 ns on BG/L).
	RouterDelay int64

	// CreditDelay is the latency of a token (credit) return to the
	// upstream router, in time units.
	CreditDelay int64

	// CPU cost of handling one packet of S bytes is S*CPUNum/CPUDen time
	// units; the default 1/4 lets the core sustain four links of traffic.
	CPUNum, CPUDen int64

	// InjectTokens is the minimum free space (bytes) a dynamic VC must have
	// before an *injection* may be granted onto it; transit packets need
	// only one flit-credit. Giving through-traffic priority over injection
	// (as the BG/L torus arbiter does) keeps free slack circulating in the
	// network instead of being swallowed by greedy injection, which would
	// otherwise collapse saturated rings into a one-hole conveyor.
	InjectTokens int32

	// EscapeDelay is how long an adaptive packet must sit blocked before it
	// may fall back to the bubble escape VC. The escape channel exists for
	// deadlock freedom; if packets hop onto it eagerly whenever the dynamic
	// VCs are momentarily full, the strictly-reserved escape ring becomes
	// the main carrier and throughput collapses into slot-conveyor mode.
	EscapeDelay int64

	// StoreForward disables virtual cut-through: packets only become
	// eligible for the next hop after fully arriving. BG/L uses virtual
	// cut-through (packets are forwarded as soon as the 32-byte header
	// chunk lands); store-and-forward is provided for ablation - it drives
	// congested operation into a "conveyor" regime where buffer holes crawl
	// backward one packet-time per hop and link utilization collapses.
	StoreForward bool

	// UtilSampleWindow, when positive, records a time series of mean link
	// utilization per window of this many time units (Stats.UtilSeries).
	// Useful for watching congestion build up during a run.
	UtilSampleWindow int64

	// VCLookahead is the number of packets at the front of each dynamic VC
	// buffer the router arbiter may choose among (the VC buffers are
	// random-access SRAM, not strict FIFOs). 1 models a strict FIFO and
	// exhibits classic head-of-line saturation around 60% utilization; the
	// default of 4 (a full VC of max-size packets) reproduces the paper's
	// near-peak link utilization. The bubble escape VC is always strictly
	// FIFO (the ring invariant depends on it), as are injection FIFOs.
	VCLookahead int32

	// EventQueue selects the engine's pending-event structure: "" or
	// EventQueueCalendar for the bounded-horizon calendar queue (the
	// default), EventQueueHeap for the reference 4-ary heap the calendar
	// replaced. The two produce byte-identical simulations (the pop order is
	// a pure function of the pushed multiset either way); the heap remains
	// as an escape hatch for one release while the calendar queue beds in.
	EventQueue string

	// Coalesce selects same-tick credit/arrival coalescing: "" or CoalesceOn
	// (the default) merges every credit and arrival landing at one
	// (node, tick) into a single queued marker event whose handler replays
	// the logical events in the exact uncoalesced order, cutting queued
	// event volume by roughly a third on saturated runs; CoalesceOff is the
	// escape hatch and differential oracle. Output is byte-identical either
	// way, at any shard count (see coalesce.go for the replay-order
	// argument). Coalescing is inert when CreditDelay < 1.
	Coalesce string

	// Sync selects the sharded engine's synchronization protocol: "" or
	// SyncAsync (the default) for the asynchronous conservative engine,
	// where each shard publishes the virtual time it has fully processed
	// and advances independently to the horizon its peers' clocks and the
	// precomputed slab-distance lookahead matrix allow (shard_async.go);
	// SyncBSP is the escape hatch: the original barrier protocol that
	// advances every shard in lockstep windows of width shardSafeWindow.
	// Output is byte-identical either way, and to the serial engine, at
	// any shard count. Ignored by serial runs (Shards <= 1).
	Sync string

	// Faults is the deterministic link-fault schedule for every run on this
	// network: timed down/up transitions, permanent kills, and bandwidth
	// degradation (see FaultSchedule and ParseFaults for the -faults spec
	// grammar). nil - and an empty schedule - leaves the machine healthy and
	// the hot path untouched (runs are byte-identical to a network built
	// without the field). A pointer so Params stays comparable with ==; the
	// schedule must not be mutated while installed. Shape-dependent
	// validation (node range, link existence, no revival after a kill)
	// happens in New/ResetParams.
	Faults *FaultSchedule

	// Check enables the runtime invariant checker (internal/check): after
	// every event the affected router is validated against the model's
	// conservation laws (credit conservation, bubble slot bounds, FIFO
	// occupancy, occupancy-mask coherence), cross-shard messages are
	// checked for window monotonicity, and a completed run must reach full
	// quiescence (every credit home, every packet delivered exactly once).
	// A violation aborts the run with a node/time-stamped diagnostic. Off
	// by default: the hot path pays only a predictable branch per event.
	Check bool
}

// DefaultParams returns the calibration used throughout the reproduction.
func DefaultParams() Params {
	return Params{
		// BG/L VC FIFOs are ~1 KiB; the simulator models packets as atomic
		// units, so effective buffering is doubled to stand in for the
		// flit-level pipelining (a packet streaming through a draining
		// buffer) that packet-atomic credits cannot express.
		VCBytes:  2048,
		InjFIFOs: 6, // BG/L has six normal injection FIFOs

		InjFIFOBytes:  1024,
		RecvFIFOBytes: 8192,
		RouterDelay:   15,
		CreditDelay:   15,
		CPUNum:        1,
		CPUDen:        4,
		VCLookahead:   4,
		InjectTokens:  3 * MaxPacketBytes,
		EscapeDelay:   64,
	}
}

// CPUCost returns the CPU time to handle a packet of size bytes.
func (p Params) CPUCost(size int32) int64 {
	return int64(size) * p.CPUNum / p.CPUDen
}

// validate rejects parameter combinations the simulator cannot run: buffer
// geometry that deadlocks the escape channel, and unknown enum selectors.
// Shared by New and ResetParams.
func (p Params) validate() error {
	// VCBytes must admit a joining packet under the bubble rule
	// (size + one full-packet bubble), or the escape channel deadlocks.
	if p.InjFIFOs < 1 || p.VCBytes < 2*MaxPacketBytes || p.CPUDen <= 0 || p.VCLookahead < 1 {
		return fmt.Errorf("network: invalid params %+v", p)
	}
	switch p.EventQueue {
	case "", EventQueueCalendar, EventQueueHeap:
	default:
		return fmt.Errorf("network: unknown EventQueue %q (want %q or %q)",
			p.EventQueue, EventQueueCalendar, EventQueueHeap)
	}
	switch p.Coalesce {
	case "", CoalesceOn, CoalesceOff:
	default:
		return fmt.Errorf("network: unknown Coalesce %q (want %q or %q)",
			p.Coalesce, CoalesceOn, CoalesceOff)
	}
	switch p.Sync {
	case "", SyncAsync, SyncBSP:
	default:
		return fmt.Errorf("network: unknown Sync %q (want %q or %q)",
			p.Sync, SyncAsync, SyncBSP)
	}
	return nil
}

// SameStructure reports whether a network built with p can be recycled for a
// run under o via ResetParams: the fields that size buffers, rings, and
// arenas at construction time must match. Everything else - delays, CPU
// rate, lookahead, event-queue choice, coalescing, checking - is runtime
// behavior that ResetParams re-derives.
func (p Params) SameStructure(o Params) bool {
	return p.VCBytes == o.VCBytes &&
		p.InjFIFOs == o.InjFIFOs &&
		p.InjFIFOBytes == o.InjFIFOBytes &&
		p.RecvFIFOBytes == o.RecvFIFOBytes
}
