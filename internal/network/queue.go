package network

import "math/bits"

// pktRef is one queued packet's arbitration-hot state. tryQueue, tryRoute,
// and noteBlocked read (and for blocked, write) these fields for every
// candidate on every pass; keeping them in the ring slot keeps those passes
// on contiguous memory instead of chasing a random packet-pool pointer per
// entry. The struct is deliberately squeezed to 16 bytes - four refs per
// cache line - because the ring's first-touch miss is the hottest line in
// the whole simulator: the packet's identity (pool index) lives in a
// parallel ring (pktQueue.ids) that is only read when a packet actually
// moves, i.e. on ~2% of visits, and its destination is not stored at all
// (want == 0 <=> no hops remain <=> the packet is at its destination).
// The header fields are settled before the packet is pushed and never
// change while it sits in a queue, so the copy cannot go stale; blocked is
// owned by the slot for the duration of the residence (it is 0 at every
// push, by construction: grants zero it and injections start fresh) and
// the pool copy is re-zeroed on grant.
type pktRef struct {
	blocked int64   // time this packet first failed arbitration here (0 = never)
	size    int16   // wire bytes (<= MaxPacketBytes)
	hops    [3]int8 // remaining signed hops per dimension
	vcIn    int8    // packed (vc+1)<<3 | (inDir+1); see packVCIn
	want    uint8   // bitmask of output directions this packet can use next
	det     bool
}

// packVCIn packs a VC index and input direction (both may be -1: injection
// FIFO residence) into one byte: vc+1 in bits 3.. and inDir+1 in bits 0..2.
func packVCIn(vc, inDir int8) int8 {
	return (vc+1)<<3 | (inDir + 1)
}

func (rf *pktRef) vc() int8    { return rf.vcIn>>3 - 1 }
func (rf *pktRef) inDir() int8 { return rf.vcIn&7 - 1 }

// pktQueue is a fixed-capacity FIFO of packet refs with byte accounting.
// Capacity is expressed in bytes; the slot array is sized for the worst case
// of minimum-size packets so a byte-accepted push never lacks a slot. Slot
// counts are rounded up to a power of two so ring indexing is a mask rather
// than a division; admission is still governed by the byte budget, which for
// minimum-size packets binds no later than the pre-rounding slot count.
type pktQueue struct {
	buf      []pktRef
	ids      []int32 // parallel ring: pool index of each queued packet
	mask     int32
	head     int32
	count    int32
	bytes    int32
	capBytes int32

	// Queue-level arbitration summary, maintained so service passes can
	// skip a queue without touching its ring (the ring is a separate,
	// usually cache-cold allocation). wantOR is a superset of the queued
	// entries' want masks: exact after a push, possibly stale-high after a
	// removal (it only resets when the queue empties). Stale-high is safe:
	// it can only cause a visit that scans and moves nothing, which is
	// exactly what the visit would have done anyway. nDeliv is the exact
	// count of queued packets at their destination (want == 0 <=> no hops
	// remain <=> deliverable here); those move under any wake mask, so a
	// skip additionally requires nDeliv == 0.
	wantOR uint8
	nDeliv uint8
}

func newPktQueue(capBytes int32) pktQueue {
	slots := pktSlots(capBytes)
	return pktQueue{buf: make([]pktRef, slots), ids: make([]int32, slots),
		mask: slots - 1, capBytes: capBytes}
}

// pktSlots returns the ring size (in slots) backing a queue of capBytes.
func pktSlots(capBytes int32) int32 {
	slots := capBytes / MinPacketBytes
	if slots < 1 {
		slots = 1
	}
	return int32(1) << bits.Len32(uint32(slots-1))
}

// newPktQueueIn is newPktQueue carving its rings out of arena/idArena
// instead of allocating: it consumes the first pktSlots(capBytes) entries
// of each and returns the remainders. Network construction lays every ring
// of the machine into one slab, in node order, so a service pass visiting
// several queues of the same node stays within a few contiguous pages
// instead of chasing one heap allocation per queue (the ring's first-touch
// miss is the hottest line in the arbitration loop). The id ring lives in
// its own slab: scans never load it, so keeping it out of the header slab
// doubles the header density per cache line.
func newPktQueueIn(arena []pktRef, idArena []int32, capBytes int32) (pktQueue, []pktRef, []int32) {
	slots := pktSlots(capBytes)
	return pktQueue{buf: arena[:slots:slots], ids: idArena[:slots:slots],
		mask: slots - 1, capBytes: capBytes}, arena[slots:], idArena[slots:]
}

func (q *pktQueue) empty() bool { return q.count == 0 }

// reset discards all contents, keeping the slot arrays.
func (q *pktQueue) reset() {
	q.head, q.count, q.bytes = 0, 0, 0
	q.wantOR, q.nDeliv = 0, 0
}

// fits reports whether a packet of the given size can be accepted.
func (q *pktQueue) fits(size int32) bool {
	return q.bytes+size <= q.capBytes && q.count < int32(len(q.buf))
}

// push appends ref for pool packet pid, charging cost bytes against the
// capacity (the cost is the flow-control footprint, which for escape-VC
// packets exceeds the wire size).
func (q *pktQueue) push(ref pktRef, pid, cost int32) {
	if !q.fits(cost) {
		panic("network: pktQueue overflow (flow control violated)")
	}
	pos := (q.head + q.count) & q.mask
	q.buf[pos] = ref
	q.ids[pos] = pid
	q.count++
	q.bytes += cost
	q.wantOR |= ref.want
	if ref.want == 0 {
		q.nDeliv++
	}
}

func (q *pktQueue) peek() int32 {
	return q.ids[q.head]
}

func (q *pktQueue) pop(cost int32) int32 {
	pid := q.ids[q.head]
	if q.buf[q.head].want == 0 {
		q.nDeliv--
	}
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= cost
	if q.count == 0 {
		q.wantOR = 0
	}
	return pid
}

// at returns the i-th queued ref (0 = head) without removing it. The pointer
// aliases the ring slot and is invalidated by any removeAt/pop.
func (q *pktQueue) at(i int32) *pktRef {
	return &q.buf[(q.head+i)&q.mask]
}

// idAt returns the pool index of the i-th queued packet (0 = head).
func (q *pktQueue) idAt(i int32) int32 {
	return q.ids[(q.head+i)&q.mask]
}

// removeAt removes the i-th entry, preserving the order of the rest.
func (q *pktQueue) removeAt(i, cost int32) int32 {
	pos := (q.head + i) & q.mask
	pid := q.ids[pos]
	if q.buf[pos].want == 0 {
		q.nDeliv--
	}
	for j := i; j > 0; j-- {
		cur := (q.head + j) & q.mask
		prev := (q.head + j - 1) & q.mask
		q.buf[cur] = q.buf[prev]
		q.ids[cur] = q.ids[prev]
	}
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= cost
	if q.count == 0 {
		q.wantOR = 0
	}
	return pid
}
