package network

import "math/bits"

// pktRef is one queued packet's arbitration-hot state. tryQueue, tryRoute,
// and noteBlocked read (and for blocked, write) these fields for every
// candidate on every pass; keeping them in the ring slot keeps those passes
// on contiguous memory instead of chasing a random packet-pool pointer per
// entry. The packet pool is touched only when a packet actually moves: a
// grant commit (tryRoute rewrites vc/inDir/want/hops/blocked, then the
// entry leaves the queue) or a delivery. The header fields are settled
// before the packet is pushed and never change while it sits in a queue, so
// the copy cannot go stale; blocked is owned by the slot for the duration
// of the residence (it is 0 at every push, by construction: grants zero it
// and injections start fresh) and the pool copy is re-zeroed on grant.
type pktRef struct {
	blocked int64 // time this packet first failed arbitration here (0 = never)
	pid     int32
	dst     int32
	size    int32
	hops    [3]int8
	vc      int8
	inDir   int8
	want    uint8
	det     bool
}

// pktQueue is a fixed-capacity FIFO of packet refs with byte accounting.
// Capacity is expressed in bytes; the slot array is sized for the worst case
// of minimum-size packets so a byte-accepted push never lacks a slot. Slot
// counts are rounded up to a power of two so ring indexing is a mask rather
// than a division; admission is still governed by the byte budget, which for
// minimum-size packets binds no later than the pre-rounding slot count.
type pktQueue struct {
	buf      []pktRef
	mask     int32
	head     int32
	count    int32
	bytes    int32
	capBytes int32

	// Queue-level arbitration summary, maintained so service passes can
	// skip a queue without touching its ring (the ring is a separate,
	// usually cache-cold allocation). wantOR is a superset of the queued
	// entries' want masks: exact after a push, possibly stale-high after a
	// removal (it only resets when the queue empties). Stale-high is safe:
	// it can only cause a visit that scans and moves nothing, which is
	// exactly what the visit would have done anyway. nDeliv is the exact
	// count of queued packets at their destination (want == 0 <=> no hops
	// remain <=> deliverable here); those move under any wake mask, so a
	// skip additionally requires nDeliv == 0.
	wantOR uint8
	nDeliv uint8
}

func newPktQueue(capBytes int32) pktQueue {
	slots := pktSlots(capBytes)
	return pktQueue{buf: make([]pktRef, slots), mask: slots - 1, capBytes: capBytes}
}

// pktSlots returns the ring size (in slots) backing a queue of capBytes.
func pktSlots(capBytes int32) int32 {
	slots := capBytes / MinPacketBytes
	if slots < 1 {
		slots = 1
	}
	return int32(1) << bits.Len32(uint32(slots-1))
}

// newPktQueueIn is newPktQueue carving its ring out of arena instead of
// allocating: it consumes the first pktSlots(capBytes) entries and returns
// the remainder. Network construction lays every ring of the machine into
// one slab, in node order, so a service pass visiting several queues of the
// same node stays within a few contiguous pages instead of chasing one
// heap allocation per queue (the ring's first-touch miss is the hottest
// line in the arbitration loop).
func newPktQueueIn(arena []pktRef, capBytes int32) (pktQueue, []pktRef) {
	slots := pktSlots(capBytes)
	return pktQueue{buf: arena[:slots:slots], mask: slots - 1, capBytes: capBytes}, arena[slots:]
}

func (q *pktQueue) empty() bool { return q.count == 0 }

// reset discards all contents, keeping the slot array.
func (q *pktQueue) reset() {
	q.head, q.count, q.bytes = 0, 0, 0
	q.wantOR, q.nDeliv = 0, 0
}

// fits reports whether a packet of the given size can be accepted.
func (q *pktQueue) fits(size int32) bool {
	return q.bytes+size <= q.capBytes && q.count < int32(len(q.buf))
}

// push appends ref, charging cost bytes against the capacity (the cost is
// the flow-control footprint, which for escape-VC packets exceeds the wire
// size).
func (q *pktQueue) push(ref pktRef, cost int32) {
	if !q.fits(cost) {
		panic("network: pktQueue overflow (flow control violated)")
	}
	q.buf[(q.head+q.count)&q.mask] = ref
	q.count++
	q.bytes += cost
	q.wantOR |= ref.want
	if ref.want == 0 {
		q.nDeliv++
	}
}

func (q *pktQueue) peek() int32 {
	return q.buf[q.head].pid
}

func (q *pktQueue) pop(cost int32) int32 {
	rf := &q.buf[q.head]
	pid := rf.pid
	if rf.want == 0 {
		q.nDeliv--
	}
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= cost
	if q.count == 0 {
		q.wantOR = 0
	}
	return pid
}

// at returns the i-th queued ref (0 = head) without removing it. The pointer
// aliases the ring slot and is invalidated by any removeAt/pop.
func (q *pktQueue) at(i int32) *pktRef {
	return &q.buf[(q.head+i)&q.mask]
}

// removeAt removes the i-th entry, preserving the order of the rest.
func (q *pktQueue) removeAt(i, cost int32) int32 {
	pos := (q.head + i) & q.mask
	pid := q.buf[pos].pid
	if q.buf[pos].want == 0 {
		q.nDeliv--
	}
	for j := i; j > 0; j-- {
		cur := (q.head + j) & q.mask
		prev := (q.head + j - 1) & q.mask
		q.buf[cur] = q.buf[prev]
	}
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= cost
	if q.count == 0 {
		q.wantOR = 0
	}
	return pid
}
