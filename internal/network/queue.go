package network

import "math/bits"

// pktQueue is a fixed-capacity FIFO of packet ids with byte accounting.
// Capacity is expressed in bytes; the slot array is sized for the worst case
// of minimum-size packets so a byte-accepted push never lacks a slot. Slot
// counts are rounded up to a power of two so ring indexing is a mask rather
// than a division; admission is still governed by the byte budget, which for
// minimum-size packets binds no later than the pre-rounding slot count.
type pktQueue struct {
	buf      []int32
	mask     int32
	head     int32
	count    int32
	bytes    int32
	capBytes int32
}

func newPktQueue(capBytes int32) pktQueue {
	slots := capBytes / MinPacketBytes
	if slots < 1 {
		slots = 1
	}
	slots = int32(1) << bits.Len32(uint32(slots-1))
	return pktQueue{buf: make([]int32, slots), mask: slots - 1, capBytes: capBytes}
}

func (q *pktQueue) empty() bool { return q.count == 0 }

// reset discards all contents, keeping the slot array.
func (q *pktQueue) reset() {
	q.head, q.count, q.bytes = 0, 0, 0
}

// fits reports whether a packet of the given size can be accepted.
func (q *pktQueue) fits(size int32) bool {
	return q.bytes+size <= q.capBytes && q.count < int32(len(q.buf))
}

func (q *pktQueue) push(pid, size int32) {
	if !q.fits(size) {
		panic("network: pktQueue overflow (flow control violated)")
	}
	q.buf[(q.head+q.count)&q.mask] = pid
	q.count++
	q.bytes += size
}

func (q *pktQueue) peek() int32 {
	return q.buf[q.head]
}

func (q *pktQueue) pop(size int32) int32 {
	pid := q.buf[q.head]
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= size
	return pid
}

// at returns the i-th queued packet id (0 = head) without removing it.
func (q *pktQueue) at(i int32) int32 {
	return q.buf[(q.head+i)&q.mask]
}

// removeAt removes the i-th entry, preserving the order of the rest.
func (q *pktQueue) removeAt(i, size int32) int32 {
	pos := (q.head + i) & q.mask
	pid := q.buf[pos]
	for j := i; j > 0; j-- {
		cur := (q.head + j) & q.mask
		prev := (q.head + j - 1) & q.mask
		q.buf[cur] = q.buf[prev]
	}
	q.head = (q.head + 1) & q.mask
	q.count--
	q.bytes -= size
	return pid
}
