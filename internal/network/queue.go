package network

// pktQueue is a fixed-capacity FIFO of packet ids with byte accounting.
// Capacity is expressed in bytes; the slot array is sized for the worst case
// of minimum-size packets so a byte-accepted push never lacks a slot.
type pktQueue struct {
	buf      []int32
	head     int32
	count    int32
	bytes    int32
	capBytes int32
}

func newPktQueue(capBytes int32) pktQueue {
	slots := capBytes / MinPacketBytes
	if slots < 1 {
		slots = 1
	}
	return pktQueue{buf: make([]int32, slots), capBytes: capBytes}
}

func (q *pktQueue) empty() bool { return q.count == 0 }

// fits reports whether a packet of the given size can be accepted.
func (q *pktQueue) fits(size int32) bool {
	return q.bytes+size <= q.capBytes && q.count < int32(len(q.buf))
}

func (q *pktQueue) push(pid, size int32) {
	if !q.fits(size) {
		panic("network: pktQueue overflow (flow control violated)")
	}
	q.buf[(q.head+q.count)%int32(len(q.buf))] = pid
	q.count++
	q.bytes += size
}

func (q *pktQueue) peek() int32 {
	return q.buf[q.head]
}

func (q *pktQueue) pop(size int32) int32 {
	pid := q.buf[q.head]
	q.head = (q.head + 1) % int32(len(q.buf))
	q.count--
	q.bytes -= size
	return pid
}

// at returns the i-th queued packet id (0 = head) without removing it.
func (q *pktQueue) at(i int32) int32 {
	return q.buf[(q.head+i)%int32(len(q.buf))]
}

// removeAt removes the i-th entry, preserving the order of the rest.
func (q *pktQueue) removeAt(i, size int32) int32 {
	n := int32(len(q.buf))
	pos := (q.head + i) % n
	pid := q.buf[pos]
	for j := i; j > 0; j-- {
		cur := (q.head + j) % n
		prev := (q.head + j - 1) % n
		q.buf[cur] = q.buf[prev]
	}
	q.head = (q.head + 1) % n
	q.count--
	q.bytes -= size
	return pid
}
