package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// coalRun performs one all-to-all run with the given coalescing mode,
// returning the finish time and full statistics.
func coalRun(t *testing.T, shape torus.Shape, par Params, shards int, size int32) (int64, *Stats) {
	t.Helper()
	p := shape.P()
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: size}
	}
	nw, err := New(shape, par, srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := nw.RunSharded(1<<40, shards)
	if err != nil {
		t.Fatalf("coalesce=%q shards=%d on %v: %v", par.Coalesce, shards, shape, err)
	}
	return ft, nw.Stats()
}

// TestCoalesceIdentical is the engine-level differential oracle: the same
// simulation with Params.Coalesce on and off must produce the same finish
// time and byte-identical statistics (QueuedEvents excepted - shrinking it
// is the whole point) across torus and mesh shapes, serial and sharded,
// calendar and heap queues, checked and unchecked.
func TestCoalesceIdentical(t *testing.T) {
	for _, shape := range []torus.Shape{
		torus.New(4, 4, 2),
		torus.NewMesh(4, 4, 2, false, false, false),
	} {
		base := DefaultParams()
		base.Coalesce = CoalesceOff
		ftOff, stOff := coalRun(t, shape, base, 1, 192)
		if stOff.QueuedEvents != stOff.Events() {
			t.Errorf("%v: uncoalesced QueuedEvents %d != Events %d",
				shape, stOff.QueuedEvents, stOff.Events())
		}
		for _, tc := range []struct {
			name   string
			queue  string
			shards int
			check  bool
		}{
			{"serial", "", 1, false},
			{"serial-checked", "", 1, true},
			{"sharded", "", 4, false},
			{"sharded-heap", EventQueueHeap, 4, false},
		} {
			par := DefaultParams()
			par.Coalesce = CoalesceOn
			par.EventQueue = tc.queue
			par.Check = tc.check
			ft, st := coalRun(t, shape, par, tc.shards, 192)
			if ft != ftOff {
				t.Errorf("%v %s: finish %d, uncoalesced %d", shape, tc.name, ft, ftOff)
			}
			if st.QueuedEvents >= stOff.QueuedEvents {
				t.Errorf("%v %s: coalescing queued %d events, uncoalesced %d (no reduction)",
					shape, tc.name, st.QueuedEvents, stOff.QueuedEvents)
			}
			st.QueuedEvents = stOff.QueuedEvents
			if !reflect.DeepEqual(st, stOff) {
				t.Errorf("%v %s: stats diverge from uncoalesced run\ncoalesced:   %+v\nuncoalesced: %+v",
					shape, tc.name, st, stOff)
			}
		}
	}
}

// TestCoalesceEventReduction pins the point of the optimization on a
// saturated shape: at least 25%% fewer queued events per packet, with the
// logical event counts untouched.
func TestCoalesceEventReduction(t *testing.T) {
	shape := torus.New(8, 4, 4)
	off := DefaultParams()
	off.Coalesce = CoalesceOff
	_, stOff := coalRun(t, shape, off, 1, 256)
	_, stOn := coalRun(t, shape, DefaultParams(), 1, 256)
	if stOn.EventsByKind != stOff.EventsByKind {
		t.Errorf("logical event counts diverge: %v vs %v", stOn.EventsByKind, stOff.EventsByKind)
	}
	eppOff := float64(stOff.QueuedEvents) / float64(stOff.PacketsInjected)
	eppOn := float64(stOn.QueuedEvents) / float64(stOn.PacketsInjected)
	if eppOn > 0.75*eppOff {
		t.Errorf("queued events/packet %.2f, uncoalesced %.2f: reduction below 25%%", eppOn, eppOff)
	}
	t.Logf("events/packet: %.2f coalesced vs %.2f uncoalesced (%.1f%% fewer)",
		eppOn, eppOff, 100*(1-eppOn/eppOff))
}

func TestCoalesceParamValidated(t *testing.T) {
	par := DefaultParams()
	par.Coalesce = "sometimes"
	if _, err := New(torus.New(2, 2, 1), par, nil, countOnly{}); err == nil {
		t.Fatal("bogus Coalesce accepted")
	}
}

// TestCoalSlotSpill drives the accumulator data structure directly: more
// distinct in-flight ticks than coalWays packed slots must overflow into the
// spill list, merge later entries into the right batch wherever it lives,
// and drain back to empty with the arg backing recycled through the pool.
// It also exercises inline-capacity overflow: a batch outgrowing its
// coalArgsCap inline entries migrates to the spill list without re-arming.
func TestCoalSlotSpill(t *testing.T) {
	e := &engine{}
	at := make([]int64, coalWays)
	cnt := make([]uint8, coalWays)
	args := make([]int32, coalWays*coalArgsCap)
	pend := make([]uint8, 1)
	var spill []coalSpill

	const ticks = coalWays + 2
	for i := 0; i < ticks; i++ {
		tk := int64(100 + i)
		if !e.coalPut(at, cnt, args, &spill, pend, 0, tk, int32(10+i)) {
			t.Fatalf("tick %d: batch not armed", tk)
		}
		// Second same-tick arg must merge, sorting before the first.
		if e.coalPut(at, cnt, args, &spill, pend, 0, tk, int32(5+i)) {
			t.Fatalf("tick %d: second put armed a duplicate marker", tk)
		}
	}
	if len(spill) != ticks-coalWays {
		t.Fatalf("spill holds %d batches, want %d", len(spill), ticks-coalWays)
	}
	if pend[0] != coalWays {
		t.Fatalf("pend %d after filling slots, want %d", pend[0], coalWays)
	}

	// Replay the first (slot-resident) tick, freeing its slot; a fresh entry
	// for the still-spilled tick must extend the spill batch, not claim the
	// freed slot (which would split the batch across two markers).
	batch, way, sidx := coalFind(at, cnt, args, spill, 0, 100)
	if way < 0 || !reflect.DeepEqual(batch, []int32{5, 10}) {
		t.Fatalf("tick 100: batch %v (way %d, spill %d)", batch, way, sidx)
	}
	e.coalRelease(at, cnt, &spill, pend, 0, way, sidx)
	if pend[0] != coalWays-1 {
		t.Fatalf("pend %d after releasing a slot, want %d", pend[0], coalWays-1)
	}
	spilledTick := int64(100 + coalWays)
	if e.coalPut(at, cnt, args, &spill, pend, 0, spilledTick, 99) {
		t.Fatal("spilled tick re-armed after an unrelated slot freed")
	}

	for i := 1; i < ticks; i++ {
		tk := int64(100 + i)
		batch, way, sidx := coalFind(at, cnt, args, spill, 0, tk)
		want := []int32{int32(5 + i), int32(10 + i)}
		if tk == spilledTick {
			want = append(want, 99)
		}
		if !reflect.DeepEqual(batch, want) {
			t.Errorf("tick %d: batch %v, want %v", tk, batch, want)
		}
		e.coalRelease(at, cnt, &spill, pend, 0, way, sidx)
	}
	if len(spill) != 0 {
		t.Errorf("%d spill batches left after draining", len(spill))
	}
	for w := 0; w < coalWays; w++ {
		if at[w] != 0 {
			t.Errorf("slot %d still claims tick %d", w, at[w])
		}
	}
	if pend[0] != 0 {
		t.Errorf("pend %d after draining, want 0", pend[0])
	}
	if len(e.spillFree) == 0 {
		t.Error("spill arg backing not recycled to the pool")
	}

	// Inline overflow: coalArgsCap+1 args on one tick migrate the batch to
	// the spill list (slot freed, pend decremented, marker NOT re-armed)
	// with every arg intact and sorted.
	const tk = int64(500)
	if !e.coalPut(at, cnt, args, &spill, pend, 0, tk, 0) {
		t.Fatal("overflow tick: batch not armed")
	}
	for i := 1; i <= coalArgsCap; i++ {
		if e.coalPut(at, cnt, args, &spill, pend, 0, tk, int32(coalArgsCap-i+1)) {
			t.Fatalf("overflow arg %d re-armed the marker", i)
		}
	}
	if len(spill) != 1 || pend[0] != 0 {
		t.Fatalf("after overflow: %d spill batches, pend %d; want 1, 0", len(spill), pend[0])
	}
	batch, way, sidx = coalFind(at, cnt, args, spill, 0, tk)
	if way >= 0 || len(batch) != coalArgsCap+1 {
		t.Fatalf("overflow batch %v (way %d), want %d spilled args", batch, way, coalArgsCap+1)
	}
	for i, a := range batch {
		if a != int32(i) {
			t.Fatalf("overflow batch %v not sorted", batch)
		}
	}
	e.coalRelease(at, cnt, &spill, pend, 0, way, sidx)
	if len(spill) != 0 {
		t.Errorf("%d spill batches left after overflow drain", len(spill))
	}
}

// FuzzCreditBatch round-trips the packed cross-shard credit stream: any
// sequence of (tick, node, arg) records with nondecreasing ticks - the only
// discipline the encoder assumes, guaranteed by event-time monotonicity
// within a window - must decode back exactly, in order.
func FuzzCreditBatch(f *testing.F) {
	f.Add([]byte{1, 0, 0, 1, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 250, 6, 7, 8, 0, 9, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		var b creditBatch
		b.reset()
		var want []creditRec
		tick := int64(1)
		for i := 0; i+2 < len(data); i += 3 {
			tick += int64(data[i]) // nondecreasing; 0 = same tick
			node := int32(data[i+1])
			arg := int32(data[i+2]) << 8 // exercise arg bits beyond one byte
			b.add(tick, node, arg)
			want = append(want, creditRec{t: tick, node: node, arg: arg})
		}
		got := b.decodeInto(nil)
		if len(got) != len(want) {
			t.Fatalf("decoded %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
			}
		}
		// A reused stream (window drained, buffer recycled) must behave like
		// a fresh one.
		b.reset()
		if out := b.decodeInto(got[:0]); len(out) != 0 {
			t.Fatalf("reset stream decoded %d records", len(out))
		}
	})
}

// TestCoalesceNegativeArgOrder pins the arrival replay order against args
// with the high bit clear but large magnitudes (inDir in the top bits):
// insertArg must sort exactly like the event key tie-break, i.e. ascending
// int32.
func TestCoalesceNegativeArgOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var b []int32
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			b = insertArg(b, int32(rng.Intn(6))<<arrivePidBits|int32(rng.Intn(1<<10)))
		}
		for i := 1; i < len(b); i++ {
			if b[i-1] > b[i] {
				t.Fatalf("trial %d: args out of order: %v", trial, b)
			}
		}
	}
}

func init() {
	// Guard the packing assumption the marker replay relies on: markers use
	// arg 0, and no real credit/arrival arg is ever negative (creditArg
	// packs into 19 bits, arriveArg into 31), so ascending-int32 batch order
	// equals the uint64 key tie-break order.
	if creditArg(numDirs-1, NumVC-1, MaxPacketBytes) < 0 || arriveArg(numDirs-1, 1<<arrivePidBits-1) < 0 {
		panic(fmt.Sprintf("packed event args went negative: credit %d arrive %d",
			creditArg(numDirs-1, NumVC-1, MaxPacketBytes), arriveArg(numDirs-1, 1<<arrivePidBits-1)))
	}
}
