package network

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"alltoall/internal/torus"
)

// Deterministic fault injection.
//
// A FaultSchedule is a list of timed link faults: a link can go down and come
// back up, be killed permanently, or have its bandwidth degraded (stretched
// wire occupancy). Faults are ordinary simulator events - each scheduled
// transition becomes an evFault entry in the strict (t, node, kind, arg)
// total order - so a faulted run is byte-identical at any shard count and
// with coalescing or either event-queue structure on or off, exactly like a
// healthy one.
//
// Semantics:
//
//   - Down/Kill: the router stops granting onto the link (freeOutputs masks
//     the direction out), so queued packets reroute via the adaptive dynamic
//     VCs or, when minimal routing has no live direction left, flip to the
//     long way around the ring (rerouteNode/flipDeadDims). A packet already
//     committed to the wire when the link dies completes its transfer (the
//     arrival event is already scheduled). Credits owed across a dead link
//     keep their exact-time semantics: in coalesced mode they ride the lazy
//     ledger (a dead link is outside freeMask for its whole outage, so the
//     credit event is a provable no-op; see coalesce.go) and any still
//     stashed at end of run are force-returned (Stats.ForcedCreditReturns)
//     before the quiescence audit.
//   - Up: the direction rejoins freeOutputs and an arbitration pass runs at
//     the reopened link. The outage [down, up) accrues Stats.DeadLinkTicks.
//     An Up for a killed link is rejected at validation.
//   - Degrade: the link's wire occupancy is multiplied by Factor (a packet of
//     S bytes holds the link S*Factor units, and its cut-through header takes
//     PacketGranule*Factor to cross). Factor 1 restores full speed.
//
// On a mesh dimension a dead link cannot be routed around (there is no other
// way); packets needing it stall and the run fails with the standard
// deadlock diagnostic, which is the honest answer for a partitioned mesh.

// FaultAction is the kind of one scheduled fault transition.
type FaultAction uint8

const (
	// FaultDown takes the link out of service at T.
	FaultDown FaultAction = iota
	// FaultUp returns a downed link to service at T.
	FaultUp
	// FaultKill takes the link out of service permanently.
	FaultKill
	// FaultDegrade multiplies the link's wire occupancy by Factor from T on.
	FaultDegrade
)

func (a FaultAction) String() string {
	switch a {
	case FaultDown:
		return "down"
	case FaultUp:
		return "up"
	case FaultKill:
		return "kill"
	case FaultDegrade:
		return "degrade"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// FaultEvent is one scheduled transition of the output link (Node, Dir).
// Faults are attached to a node's OUTPUT direction: killing (n, +x) stops n
// from sending toward +x but leaves the reverse wire (the +x neighbour's -x
// output) alive; fail both to sever the cable.
type FaultEvent struct {
	T      int64       // simulation time of the transition (>= 0)
	Node   int32       // rank owning the output link
	Dir    int         // output direction, 0..5 (2*dim, +1 for the - direction)
	Action FaultAction
	Factor int32 // FaultDegrade only: wire-occupancy multiplier, 1..MaxDegradeFactor
}

// MaxDegradeFactor bounds FaultDegrade stretch factors so stretched wire
// times stay comfortably inside int32 window accounting.
const MaxDegradeFactor = 4096

// FaultSchedule is a deterministic set of link fault transitions. The zero
// value (or an empty Events list) is a valid schedule that faults nothing; a
// run with an empty schedule is byte-identical to Params.Faults == nil.
type FaultSchedule struct {
	Events []FaultEvent
}

// dirNames maps direction indices to the spec grammar's tokens.
var dirNames = [numDirs]string{"+x", "-x", "+y", "-y", "+z", "-z"}

// dirByName is the inverse of dirNames; -1 = unknown.
func dirByName(s string) int {
	for d, n := range dirNames {
		if s == n {
			return d
		}
	}
	return -1
}

// DirName returns the spec-grammar token for a direction index ("+x".."-z").
func DirName(dir int) string {
	if dir < 0 || dir >= numDirs {
		return fmt.Sprintf("dir(%d)", dir)
	}
	return dirNames[dir]
}

// ParseFaults parses the -faults spec grammar: semicolon-separated events of
// the form
//
//	t:node:dir:action
//
// where t is the transition time (decimal, >= 0), node the rank, dir one of
// +x -x +y -y +z -z, and action one of down, up, kill, or xN (degrade: wire
// occupancy multiplied by N, e.g. x4). Whitespace around events is ignored;
// an empty string yields an empty schedule. Example:
//
//	0:12:+x:kill; 5000:40:-y:down; 9000:40:-y:up; 0:7:+z:x4
//
// Shape-dependent validation (node range, link existence) happens when the
// schedule is installed on a network, not here.
func ParseFaults(spec string) (*FaultSchedule, error) {
	fs := &FaultSchedule{}
	for _, raw := range strings.Split(spec, ";") {
		ev := strings.TrimSpace(raw)
		if ev == "" {
			continue
		}
		parts := strings.Split(ev, ":")
		if len(parts) != 4 {
			return nil, fmt.Errorf("faults: event %q: want t:node:dir:action", ev)
		}
		t, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("faults: event %q: bad time %q", ev, parts[0])
		}
		node, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 32)
		if err != nil || node < 0 {
			return nil, fmt.Errorf("faults: event %q: bad node %q", ev, parts[1])
		}
		dir := dirByName(strings.TrimSpace(parts[2]))
		if dir < 0 {
			return nil, fmt.Errorf("faults: event %q: bad direction %q (want +x -x +y -y +z -z)", ev, parts[2])
		}
		f := FaultEvent{T: t, Node: int32(node), Dir: dir}
		switch act := strings.TrimSpace(parts[3]); act {
		case "down":
			f.Action = FaultDown
		case "up":
			f.Action = FaultUp
		case "kill":
			f.Action = FaultKill
		default:
			if !strings.HasPrefix(act, "x") {
				return nil, fmt.Errorf("faults: event %q: bad action %q (want down, up, kill, or xN)", ev, parts[3])
			}
			n, err := strconv.ParseInt(act[1:], 10, 32)
			if err != nil || n < 1 || n > MaxDegradeFactor {
				return nil, fmt.Errorf("faults: event %q: bad degrade factor %q (want x1..x%d)", ev, act, MaxDegradeFactor)
			}
			f.Action = FaultDegrade
			f.Factor = int32(n)
		}
		fs.Events = append(fs.Events, f)
	}
	return fs, nil
}

// String encodes the schedule in the ParseFaults grammar, one event per
// semicolon-separated field in Events order. ParseFaults(s.String()) yields
// an identical schedule (FuzzFaultSchedule holds the round-trip to that).
func (fs *FaultSchedule) String() string {
	if fs == nil || len(fs.Events) == 0 {
		return ""
	}
	var b strings.Builder
	for i, f := range fs.Events {
		if i > 0 {
			b.WriteByte(';')
		}
		act := f.Action.String()
		if f.Action == FaultDegrade {
			act = "x" + strconv.FormatInt(int64(f.Factor), 10)
		}
		fmt.Fprintf(&b, "%d:%d:%s:%s", f.T, f.Node, DirName(f.Dir), act)
	}
	return b.String()
}

// faultLess is the canonical schedule order: (T, Node, Dir, Action, Factor).
// It matches the (t, node, kind, arg) event order - same-tick faults at one
// node dispatch in ascending canonical index - so the derived order, not the
// textual one, decides ties.
func faultLess(a, b FaultEvent) bool {
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Dir != b.Dir {
		return a.Dir < b.Dir
	}
	if a.Action != b.Action {
		return a.Action < b.Action
	}
	return a.Factor < b.Factor
}

// deriveFaults validates par.Faults against the built machine and installs
// the canonical (sorted) schedule plus the per-event revival times on nw.
// Called from New and ResetParams; a nil or empty schedule clears the fault
// state so the engines take the zero-cost healthy path.
func (nw *Network) deriveFaults() error {
	nw.fsched = nw.fsched[:0]
	fs := nw.Par.Faults
	if fs == nil || len(fs.Events) == 0 {
		return nil
	}
	for _, f := range fs.Events {
		if f.T < 0 {
			return fmt.Errorf("network: fault at t=%d: time must be >= 0", f.T)
		}
		if f.Node < 0 || int(f.Node) >= nw.P {
			return fmt.Errorf("network: fault names node %d, machine has %d", f.Node, nw.P)
		}
		if f.Dir < 0 || f.Dir >= numDirs {
			return fmt.Errorf("network: fault names direction %d (want 0..%d)", f.Dir, numDirs-1)
		}
		if nw.nbrs[linkIdx(f.Node, f.Dir)] < 0 {
			return fmt.Errorf("network: fault names link (%d, %s), which does not exist (mesh edge)",
				f.Node, DirName(f.Dir))
		}
		switch f.Action {
		case FaultDown, FaultUp, FaultKill:
		case FaultDegrade:
			if f.Factor < 1 || f.Factor > MaxDegradeFactor {
				return fmt.Errorf("network: fault degrades link (%d, %s) by factor %d (want 1..%d)",
					f.Node, DirName(f.Dir), f.Factor, MaxDegradeFactor)
			}
		default:
			return fmt.Errorf("network: unknown fault action %d", f.Action)
		}
	}
	nw.fsched = append(nw.fsched, fs.Events...)
	sort.SliceStable(nw.fsched, func(i, j int) bool { return faultLess(nw.fsched[i], nw.fsched[j]) })
	// Per-event revival times: for each Down, the next Up on the same link
	// (maxInt64 when none - the outage lasts the run); Kills never revive.
	// The lazy-credit elision needs this at down-application time: a credit
	// maturing while the link is still down is a provable no-op only when no
	// Up lands before its maturity.
	if nw.frevive == nil {
		nw.frevive = make([]int64, 0, len(nw.fsched))
	}
	nw.frevive = nw.frevive[:0]
	for i, f := range nw.fsched {
		rev := maxInt64
		if f.Action == FaultDown {
			for _, g := range nw.fsched[i+1:] {
				if g.Node == f.Node && g.Dir == f.Dir && g.Action == FaultUp {
					rev = g.T
					break
				}
			}
		}
		if f.Action == FaultKill {
			for _, g := range nw.fsched[i+1:] {
				if g.Node == f.Node && g.Dir == f.Dir && g.Action == FaultUp {
					return fmt.Errorf("network: fault revives link (%d, %s) at t=%d after a kill at t=%d",
						f.Node, DirName(f.Dir), g.T, f.T)
				}
			}
		}
		nw.frevive = append(nw.frevive, rev)
	}
	// Lazily allocate the fault-state SoA (healthy networks never pay for it)
	// and put it in the healthy initial state; New runs without a Reset in
	// between, so derivation must leave the arrays ready.
	if nw.deadMask == nil {
		nw.deadMask = make([]uint8, nw.P)
		nw.killMask = make([]uint8, nw.P)
		nw.stretch = make([]int32, nw.P*numDirs)
		nw.downSince = make([]int64, nw.P*numDirs)
		nw.reviveAt = make([]int64, nw.P*numDirs)
	}
	nw.resetFaultState()
	return nil
}

// resetFaultState returns the fault SoA to the healthy initial state (all
// links up, unit stretch). Called from Reset when the arrays exist.
func (nw *Network) resetFaultState() {
	if nw.deadMask == nil {
		return
	}
	for n := range nw.deadMask {
		nw.deadMask[n] = 0
		nw.killMask[n] = 0
	}
	for l := range nw.stretch {
		nw.stretch[l] = 1
		nw.downSince[l] = -1
		nw.reviveAt[l] = 0
	}
}

// armFaults binds the engine to the network's fault state and schedules this
// engine's share of the fault transitions: events at T <= 0 apply as initial
// state (before the first injection scan), later ones become evFault events
// in the ordinary queue. Events beyond maxTime never fire (the run cannot
// reach them) and are skipped so their pop cannot trip the max-time abort.
// Called at the top of every run, serial and per shard.
func (e *engine) armFaults(maxTime int64) {
	fs := e.nw.fsched
	e.faulty = len(fs) > 0
	if !e.faulty {
		return
	}
	e.deadMask = e.nw.deadMask
	e.killMask = e.nw.killMask
	e.stretch = e.nw.stretch
	e.downSince = e.nw.downSince
	e.reviveAt = e.nw.reviveAt
	for i := range fs {
		f := &fs[i]
		if f.Node < e.lo || f.Node >= e.hi {
			continue
		}
		if f.T <= 0 {
			e.applyFault(f.Node, int32(i))
			continue
		}
		if f.T <= maxTime {
			e.evq.push(mkEvent(f.T, f.Node, int32(i), evFault))
		}
	}
}

// applyFault executes one fault transition at the owning node. Every mutation
// is node-local (dead/kill masks, per-link stretch and outage bookkeeping,
// queued-packet reroutes), so the sharded engine applies faults exactly where
// the serial one does in the total event order.
func (e *engine) applyFault(node int32, idx int32) {
	f := &e.nw.fsched[idx]
	d := f.Dir
	lnk := linkIdx(node, d)
	bit := uint8(1) << d
	switch f.Action {
	case FaultDown, FaultKill:
		if f.Action == FaultKill {
			e.killMask[node] |= bit
		}
		if e.deadMask[node]&bit != 0 {
			return // already down; kill only hardens the outage
		}
		e.deadMask[node] |= bit
		e.downSince[lnk] = e.now
		e.reviveAt[lnk] = e.nw.frevive[idx]
		e.noteFault(node, d, f.Action, 0)
		// Queued packets whose every minimal direction just died flip to the
		// long way around the ring; a pass then lets the flipped ones move.
		if e.rerouteNode(node) {
			e.service(node, maskAll)
		}
	case FaultUp:
		if e.deadMask[node]&bit == 0 || e.killMask[node]&bit != 0 {
			return // not down, or killed (validation rejects scheduled revivals)
		}
		e.deadMask[node] &^= bit
		e.stats.DeadLinkTicks += e.now - e.downSince[lnk]
		e.downSince[lnk] = -1
		e.noteFault(node, d, FaultUp, 0)
		e.service(node, bit)
	case FaultDegrade:
		e.stretch[lnk] = f.Factor
		e.noteFault(node, d, FaultDegrade, f.Factor)
	}
}

// noteFault reports an effective fault transition to the observer, when one
// is installed and opted into fault callbacks. Faults are rare (a handful per
// run), so the per-call type assertion costs nothing measurable.
func (e *engine) noteFault(node int32, dir int, action FaultAction, factor int32) {
	if e.obs == nil {
		return
	}
	if fsk, ok := e.obs.(FaultSink); ok {
		fsk.OnFault(e.now, node, dir, action, factor)
	}
}

// aliveMask returns the output directions of node that exist and are up.
func (e *engine) aliveMask(node int32) uint8 {
	var m uint8
	base := linkIdx(node, 0)
	for d := 0; d < numDirs; d++ {
		if e.nbrs[base+d] >= 0 {
			m |= 1 << d
		}
	}
	return m &^ e.deadMask[node]
}

// flipDeadDims redirects a hop vector whose every minimal direction is dead:
// each unfinished dimension whose desired direction is down flips to the
// long way around its ring (k-h hops the other way) when that ring wraps and
// the opposite direction is alive. Deterministic packets only consider their
// first unfinished dimension (dimension order). Returns whether any
// dimension flipped; mesh dimensions cannot flip (no other way around).
func (e *engine) flipDeadDims(hops *[3]int8, det bool, alive uint8) bool {
	flipped := false
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		h := hops[d]
		if h == 0 {
			continue
		}
		o := dirOf(d, int(h))
		if alive&(1<<o) == 0 && e.nw.Shape.Wrap[d] && alive&(1<<(o^1)) != 0 {
			k := e.nw.Shape.Size[d]
			if h > 0 {
				hops[d] = int8(int(h) - k)
			} else {
				hops[d] = int8(int(h) + k)
			}
			flipped = true
		}
		if det {
			break
		}
	}
	return flipped
}

// reroutePkt flips one queued packet stranded by a down link (want nonzero
// but fully dead). The ring slot header and the pool packet both update -
// the header is a settled copy of the pool fields (queue.go) and must stay
// one. The escape clock restarts: the packet's desire changed, so its
// blocked-since time no longer describes the new route.
func (e *engine) reroutePkt(node int32, q *pktQueue, i int32, alive uint8) bool {
	rf := q.at(i)
	if rf.want == 0 || rf.want&alive != 0 {
		return false
	}
	hops := rf.hops
	if !e.flipDeadDims(&hops, rf.det, alive) {
		return false
	}
	want := wantMask(hops, rf.det)
	rf.hops = hops
	rf.want = want
	rf.blocked = 0
	p := &e.pkts[q.idAt(i)]
	p.hops = hops
	p.want = want
	q.wantOR |= want // superset semantics: old bits may go stale-high (safe)
	e.stats.Reroutes++
	return true
}

// rerouteNode walks every queue of node after a link went down, flipping
// stranded packets. The walk order (input VCs by direction then VC, then
// injection FIFOs, each front to back) is fixed, so the reroute sequence is
// identical at any shard count.
func (e *engine) rerouteNode(node int32) bool {
	r := &e.routers[node]
	alive := e.aliveMask(node)
	changed := false
	for d := 0; d < numDirs; d++ {
		if e.nbrs[linkIdx(node, d)] < 0 {
			continue
		}
		for vc := 0; vc < NumVC; vc++ {
			q := &r.in[d][vc]
			for i := int32(0); i < q.count; i++ {
				if e.reroutePkt(node, q, i, alive) {
					changed = true
				}
			}
		}
	}
	for fi := range r.inj {
		q := &r.inj[fi]
		for i := int32(0); i < q.count; i++ {
			if e.reroutePkt(node, q, i, alive) {
				changed = true
			}
		}
	}
	return changed
}

// rerouteFresh is the arrival/injection-time stranding check: a packet whose
// precomputed want has no live direction at node flips before it is queued.
// Runs only on faulted networks, on the pool packet, before the queue slot
// header is built.
func (e *engine) rerouteFresh(node int32, p *packet) {
	if p.want == 0 {
		return
	}
	alive := e.aliveMask(node)
	if p.want&alive != 0 {
		return
	}
	if !e.flipDeadDims(&p.hops, p.det, alive) {
		return
	}
	p.want = wantMask(p.hops, p.det)
	e.stats.Reroutes++
}

// deadThrough reports whether node's output dir is down for the whole
// interval (now, t]: the link is dead now and no scheduled revival lands at
// or before t. Under that condition a credit maturing at t is a provable
// no-op (the dead direction is outside freeMask for its entire outage), so
// the lazy-credit elision applies exactly as it does for a busy link.
func (e *engine) deadThrough(node int32, dir int, t int64) bool {
	return e.faulty && e.deadMask[node]&(1<<dir) != 0 && e.reviveAt[linkIdx(node, dir)] > t
}

// forceFlushLazy returns every credit still parked in the lazy ledger at end
// of run. On a healthy network the ledger is provably empty here (every
// elided credit's link frees, and that free-time dispatch flushes it); a
// killed link's credits have no such dispatch, so they are forced home -
// counting the same logical evCredit pops the uncoalesced engine performs
// when those credit events fire against the dead link - before the
// quiescence audit checks that every token is back.
func (e *engine) forceFlushLazy() {
	if !e.coal || !e.faulty {
		return
	}
	for n := e.lo; n < e.hi; n++ {
		l := e.lazy[n]
		if len(l) == 0 {
			continue
		}
		for _, lc := range l {
			dir, vc, cost := creditUnpack(lc.arg)
			e.tok[tokIdx(n, dir, int(vc))] += cost
			e.stats.EventsByKind[evCredit]++
			e.lazyApply++
			e.stats.ForcedCreditReturns++
		}
		e.lazy[n] = l[:0]
	}
}

// closeFaultStats accrues the outage tails of links still down when the run
// finished: an interval [down, FinishTime) that never saw its Up (or was
// killed) counts toward DeadLinkTicks here. A schedule whose Down lands
// after the collective already completed contributes nothing (the clamp).
// Runs after per-shard statistics merge, so it reads the global finish time.
func (nw *Network) closeFaultStats() {
	if len(nw.fsched) == 0 {
		return
	}
	fin := nw.stats.FinishTime
	for _, ds := range nw.downSince {
		if ds >= 0 && fin > ds {
			nw.stats.DeadLinkTicks += fin - ds
		}
	}
}
