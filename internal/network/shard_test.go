package network

import (
	"math/rand"
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// shardCountHandler is a shard-safe delivery handler: all state is indexed
// by the receiving node, which is always processed by the worker owning it.
// Packets carrying a non-negative Aux different from the receiving node are
// software-forwarded there (exercising the pendingFw path across shards).
type shardCountHandler struct {
	perNode []int64
	bytes   []int64
}

func newShardCountHandler(p int) *shardCountHandler {
	return &shardCountHandler{perNode: make([]int64, p), bytes: make([]int64, p)}
}

func (h *shardCountHandler) OnDeliver(d Delivered, fw []PacketSpec) ([]PacketSpec, int64, bool) {
	h.perNode[d.Node]++
	h.bytes[d.Node] += int64(d.Size)
	if d.Aux >= 0 && d.Aux != d.Node {
		return append(fw, PacketSpec{Dst: d.Aux, Size: d.Size, Payload: d.Payload, Aux: -1, Kind: 1}), 0, false
	}
	return fw, 0, true
}

func (h *shardCountHandler) reset() {
	for i := range h.perNode {
		h.perNode[i] = 0
		h.bytes[i] = 0
	}
}

// shardTraffic builds a deterministic random workload: a mix of direct and
// two-hop (software-forwarded) packets, adaptive and deterministic routing,
// several sizes and FIFO classes.
func shardTraffic(p int, seed int64) []Source {
	rng := rand.New(rand.NewSource(seed))
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		count := rng.Intn(24)
		specs := make([]PacketSpec, 0, count)
		for i := 0; i < count; i++ {
			d := rng.Intn(p)
			if d == n {
				continue
			}
			spec := PacketSpec{
				Dst:   int32(d),
				Size:  int32(64 + 32*rng.Intn(7)),
				Aux:   -1,
				Det:   rng.Intn(3) == 0,
				Class: int8(rng.Intn(60)),
			}
			if fin := rng.Intn(p); rng.Intn(3) == 0 && fin != d {
				spec.Aux = int32(fin) // deliver at d, then forward to fin
			}
			specs = append(specs, spec)
		}
		if len(specs) > 0 {
			srcs[n] = &listSource{specs: specs}
		}
	}
	return srcs
}

func shardTestShapes() []torus.Shape {
	return []torus.Shape{
		torus.New(4, 4, 4),                         // symmetric torus
		torus.New(8, 4, 2),                         // asymmetric torus
		torus.NewMesh(5, 3, 4, false, true, false), // odd mesh/torus mix
		torus.New(16, 1, 1),                        // degenerate ring
	}
}

// TestShardedMatchesSerial checks that every statistic of a sharded run -
// and therefore anything rendered from it - is byte-identical to the serial
// engine's, for every tested shard count, on symmetric and asymmetric
// shapes including meshes.
func TestShardedMatchesSerial(t *testing.T) {
	par := DefaultParams()
	par.UtilSampleWindow = 2048
	for _, shape := range shardTestShapes() {
		p := shape.P()
		hSerial := newShardCountHandler(p)
		ref, err := New(shape, par, shardTraffic(p, 42), hSerial)
		if err != nil {
			t.Fatalf("shape %v: %v", shape, err)
		}
		refFin, err := ref.Run(1 << 40)
		if err != nil {
			t.Fatalf("shape %v serial: %v", shape, err)
		}
		for _, shards := range []int{1, 2, 4, 7} {
			h := newShardCountHandler(p)
			nw, err := New(shape, par, shardTraffic(p, 42), h)
			if err != nil {
				t.Fatalf("shape %v: %v", shape, err)
			}
			fin, err := nw.RunSharded(1<<40, shards)
			if err != nil {
				t.Fatalf("shape %v shards=%d: %v", shape, shards, err)
			}
			if fin != refFin {
				t.Errorf("shape %v shards=%d: finish %d, serial %d", shape, shards, fin, refFin)
			}
			if !reflect.DeepEqual(nw.Stats(), ref.Stats()) {
				t.Errorf("shape %v shards=%d: stats diverge from serial\nserial:  %+v\nsharded: %+v",
					shape, shards, ref.Stats(), nw.Stats())
			}
			if !reflect.DeepEqual(h, hSerial) {
				t.Errorf("shape %v shards=%d: handler observations diverge from serial", shape, shards)
			}
		}
	}
}

// TestShardedResetRecycles checks that Reset fully recycles the sharded
// engines: repeated runs on one network - including a change of shard count
// in between - reproduce the serial result exactly.
func TestShardedResetRecycles(t *testing.T) {
	shape := torus.New(4, 4, 4)
	p := shape.P()
	par := DefaultParams()
	par.UtilSampleWindow = 2048

	hSerial := newShardCountHandler(p)
	ref, err := New(shape, par, shardTraffic(p, 7), hSerial)
	if err != nil {
		t.Fatal(err)
	}
	refFin, err := ref.Run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}

	h := newShardCountHandler(p)
	nw, err := New(shape, par, shardTraffic(p, 7), h)
	if err != nil {
		t.Fatal(err)
	}
	for run, shards := range []int{4, 2, 4, 1, 4} {
		if run > 0 {
			h.reset()
			if err := nw.Reset(shardTraffic(p, 7), h); err != nil {
				t.Fatal(err)
			}
		}
		fin, err := nw.RunSharded(1<<40, shards)
		if err != nil {
			t.Fatalf("run %d shards=%d: %v", run, shards, err)
		}
		if fin != refFin {
			t.Errorf("run %d shards=%d: finish %d, serial %d", run, shards, fin, refFin)
		}
		if !reflect.DeepEqual(nw.Stats(), ref.Stats()) {
			t.Errorf("run %d shards=%d: stats diverge from serial", run, shards)
		}
		if !reflect.DeepEqual(h, hSerial) {
			t.Errorf("run %d shards=%d: handler observations diverge", run, shards)
		}
	}
}

// TestShardedSteadyStateAllocs guards the cached-run property: once warmed,
// a Reset + sharded run cycle performs no per-run heap allocations beyond
// goroutine bookkeeping (bounded by the shard count).
func TestShardedSteadyStateAllocs(t *testing.T) {
	const shards = 4
	shape := torus.New(4, 4, 4)
	p := shape.P()
	srcs := shardTraffic(p, 11)
	h := newShardCountHandler(p)
	nw, err := New(shape, DefaultParams(), srcs, h)
	if err != nil {
		t.Fatal(err)
	}
	rewind := func() {
		for _, s := range srcs {
			if s != nil {
				s.(*listSource).i = 0
			}
		}
		h.reset()
	}
	run := func() {
		rewind()
		if err := nw.Reset(srcs, h); err != nil {
			t.Fatal(err)
		}
		if _, err := nw.RunSharded(1<<40, shards); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm: builds shard engines, grows pools and mailboxes
	run()
	if avg := testing.AllocsPerRun(10, run); avg > shards {
		t.Errorf("steady-state sharded run allocates %.1f times per run, want <= %d", avg, shards)
	}
}
