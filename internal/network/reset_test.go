package network

import (
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// TestResetMatchesFresh: a recycled network must reproduce a fresh
// network's run exactly - same finish time, same full statistics.
func TestResetMatchesFresh(t *testing.T) {
	shape := torus.New(4, 4, 2)
	p := shape.P()
	mkSrcs := func(size int32) []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: size}
		}
		return srcs
	}
	run := func(nw *Network) (int64, *Stats) {
		tt, err := nw.Run(1 << 40)
		if err != nil {
			t.Fatal(err)
		}
		return tt, nw.Stats()
	}

	freshA, err := New(shape, DefaultParams(), mkSrcs(256), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	tA, stA := run(freshA)

	freshB, err := New(shape, DefaultParams(), mkSrcs(128), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	tB, stB := run(freshB)

	// Recycle one network through both workloads, in both orders.
	nw, err := New(shape, DefaultParams(), mkSrcs(256), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	run(nw)
	for i, want := range []struct {
		size int64
		t    int64
		st   *Stats
	}{{128, tB, stB}, {256, tA, stA}, {128, tB, stB}} {
		if err := nw.Reset(mkSrcs(int32(want.size)), countOnly{}); err != nil {
			t.Fatal(err)
		}
		gotT, gotSt := run(nw)
		if gotT != want.t {
			t.Errorf("reset run %d (size %d): finish %d, fresh %d", i, want.size, gotT, want.t)
		}
		if !reflect.DeepEqual(gotSt, want.st) {
			t.Errorf("reset run %d (size %d): stats diverged\nreset: %+v\nfresh: %+v",
				i, want.size, gotSt, want.st)
		}
	}
}

// TestResetRejectsWrongSourceCount: Reset validates like New.
func TestResetRejectsWrongSourceCount(t *testing.T) {
	shape := torus.New(4, 2, 1)
	p := shape.P()
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = &listSource{}
	}
	nw, err := New(shape, DefaultParams(), srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Reset(srcs[:p-1], countOnly{}); err == nil {
		t.Error("short source slice accepted")
	}
	if err := nw.Reset(srcs, nil); err == nil {
		t.Error("nil handler accepted")
	}
}

// TestResetParamsMatchesFresh: recycling a network across *parameter*
// changes (delays, event-queue structure, coalescing, checking) must
// reproduce a fresh network's run exactly. This is the contract that lets
// the collective NetCache recycle across a parameter sweep: every derived
// cache - the calendar horizon, the coalescing gate and side tables, the
// queue-structure choice - has to be rebuilt from the new Params, not
// inherited from the cached run.
func TestResetParamsMatchesFresh(t *testing.T) {
	shape := torus.New(4, 4, 2)
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 192}
		}
		return srcs
	}
	run := func(nw *Network) (int64, *Stats) {
		tt, err := nw.Run(1 << 40)
		if err != nil {
			t.Fatal(err)
		}
		return tt, nw.Stats()
	}

	base := DefaultParams()
	longCredit := base
	longCredit.CreditDelay = 60 // different calendar horizon derivation
	uncoalesced := base
	uncoalesced.Coalesce = CoalesceOff
	heapChecked := base
	heapChecked.EventQueue = EventQueueHeap
	heapChecked.Check = true
	variants := []Params{base, longCredit, uncoalesced, heapChecked, base}

	want := make([]struct {
		t  int64
		st *Stats
	}, len(variants))
	for i, par := range variants {
		nw, err := New(shape, par, mkSrcs(), countOnly{})
		if err != nil {
			t.Fatal(err)
		}
		want[i].t, want[i].st = run(nw)
	}

	nw, err := New(shape, variants[len(variants)-1], mkSrcs(), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	run(nw)
	for i, par := range variants {
		if err := nw.ResetParams(par, mkSrcs(), countOnly{}); err != nil {
			t.Fatal(err)
		}
		gotT, gotSt := run(nw)
		if gotT != want[i].t {
			t.Errorf("variant %d: finish %d, fresh %d", i, gotT, want[i].t)
		}
		if !reflect.DeepEqual(gotSt, want[i].st) {
			t.Errorf("variant %d: stats diverged\nrecycled: %+v\nfresh:    %+v", i, gotSt, want[i].st)
		}
	}
}

// TestResetParamsRejectsStructureChange: parameters that size buffers at
// construction time cannot recycle.
func TestResetParamsRejectsStructureChange(t *testing.T) {
	shape := torus.New(4, 2, 1)
	p := shape.P()
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = &listSource{}
	}
	nw, err := New(shape, DefaultParams(), srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	bigger := DefaultParams()
	bigger.VCBytes *= 2
	if err := nw.ResetParams(bigger, srcs, countOnly{}); err == nil {
		t.Error("VCBytes change accepted by ResetParams")
	}
	invalid := DefaultParams()
	invalid.Coalesce = "sometimes"
	if err := nw.ResetParams(invalid, srcs, countOnly{}); err == nil {
		t.Error("invalid Coalesce selector accepted by ResetParams")
	}
}
