package network

import (
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// TestResetMatchesFresh: a recycled network must reproduce a fresh
// network's run exactly - same finish time, same full statistics.
func TestResetMatchesFresh(t *testing.T) {
	shape := torus.New(4, 4, 2)
	p := shape.P()
	mkSrcs := func(size int32) []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: size}
		}
		return srcs
	}
	run := func(nw *Network) (int64, *Stats) {
		tt, err := nw.Run(1 << 40)
		if err != nil {
			t.Fatal(err)
		}
		return tt, nw.Stats()
	}

	freshA, err := New(shape, DefaultParams(), mkSrcs(256), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	tA, stA := run(freshA)

	freshB, err := New(shape, DefaultParams(), mkSrcs(128), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	tB, stB := run(freshB)

	// Recycle one network through both workloads, in both orders.
	nw, err := New(shape, DefaultParams(), mkSrcs(256), countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	run(nw)
	for i, want := range []struct {
		size int64
		t    int64
		st   *Stats
	}{{128, tB, stB}, {256, tA, stA}, {128, tB, stB}} {
		if err := nw.Reset(mkSrcs(int32(want.size)), countOnly{}); err != nil {
			t.Fatal(err)
		}
		gotT, gotSt := run(nw)
		if gotT != want.t {
			t.Errorf("reset run %d (size %d): finish %d, fresh %d", i, want.size, gotT, want.t)
		}
		if !reflect.DeepEqual(gotSt, want.st) {
			t.Errorf("reset run %d (size %d): stats diverged\nreset: %+v\nfresh: %+v",
				i, want.size, gotSt, want.st)
		}
	}
}

// TestResetRejectsWrongSourceCount: Reset validates like New.
func TestResetRejectsWrongSourceCount(t *testing.T) {
	shape := torus.New(4, 2, 1)
	p := shape.P()
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = &listSource{}
	}
	nw, err := New(shape, DefaultParams(), srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Reset(srcs[:p-1], countOnly{}); err == nil {
		t.Error("short source slice accepted")
	}
	if err := nw.Reset(srcs, nil); err == nil {
		t.Error("nil handler accepted")
	}
}
