package network

import (
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// allRun drives one small deterministic all-to-all on a 4x4x2 torus.
func allRun(t *testing.T, nw *Network) int64 {
	t.Helper()
	fin, err := nw.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	return fin
}

func smallAllToAll(t *testing.T) *Network {
	t.Helper()
	shape := torus.New(4, 4, 2)
	p := shape.P()
	src := make([]Source, p)
	for n := 0; n < p; n++ {
		specs := make([]PacketSpec, 0, p-1)
		for d := 0; d < p; d++ {
			if d != n {
				specs = append(specs, PacketSpec{Dst: int32(d), Size: 256, Payload: 240})
			}
		}
		src[n] = &listSource{specs: specs}
	}
	return buildNet(t, shape, DefaultParams(), src, newCountHandler(p))
}

// TestStatsSnapshot pins the Stats contract: the returned snapshot must be
// detached from live engine state. Returning the internal struct used to
// let Reset (a sweep's next point) silently zero a previously captured
// result - the VMesh strategy's phase-1 capture read phase-2 numbers.
func TestStatsSnapshot(t *testing.T) {
	nw := smallAllToAll(t)
	allRun(t, nw)
	st := nw.Stats()
	saved := *st
	savedLinkBusy := append([]int64(nil), st.LinkBusy...)

	// Mutating the snapshot must not reach the engine...
	st.PacketsInjected = -1
	st.LinkBusy[0] = -1
	if again := nw.Stats(); again.PacketsInjected == -1 || again.LinkBusy[0] == -1 {
		t.Fatalf("Stats returned live state: snapshot mutation visible in a later call")
	}

	// ...and a Reset + rerun must not reach the snapshot.
	st.PacketsInjected = saved.PacketsInjected
	st.LinkBusy[0] = savedLinkBusy[0]
	nw2 := smallAllToAll(t)
	allRun(t, nw2)
	if st.PacketsInjected != saved.PacketsInjected || !reflect.DeepEqual(st.LinkBusy, savedLinkBusy) {
		t.Fatalf("captured snapshot changed after another run")
	}
}

// countSink counts every observer callback (the simplest useful Sink).
type countSink struct {
	grants, blocked, inj, recv, cpu int64
	bytes                           int64
}

type countObserver struct {
	begun, ended int
	sinks        []*countSink
}

func (o *countObserver) BeginRun(shape torus.Shape, par Params) { o.begun++ }
func (o *countObserver) Sink(shard, shards int, lo, hi int32) Sink {
	for len(o.sinks) <= shard {
		o.sinks = append(o.sinks, &countSink{})
	}
	return o.sinks[shard]
}
func (o *countObserver) EndRun(finish int64) { o.ended++ }

func (s *countSink) total() countSink {
	return countSink{grants: s.grants, blocked: s.blocked, inj: s.inj, recv: s.recv, cpu: s.cpu, bytes: s.bytes}
}

func (s *countSink) OnGrant(now int64, node int32, dir int, vc int8, size int32) {
	s.grants++
	s.bytes += int64(size)
}
func (s *countSink) OnBlocked(now int64, node int32, inDir, vc int8, want uint8, since int64, qCount, win int32) {
	s.blocked++
}
func (s *countSink) OnInjFIFO(node int32, fifo int, bytes int32) { s.inj++ }
func (s *countSink) OnRecvFIFO(node int32, bytes int32)          { s.recv++ }
func (s *countSink) OnCPU(now int64, node int32, cost int64)     { s.cpu++ }

// TestObserverHooksFire sanity-checks every hook against run statistics:
// grants and granted bytes must match GrantsByVC and the LinkBusy total.
func TestObserverHooksFire(t *testing.T) {
	obs := &countObserver{}
	nw := smallAllToAll(t)
	nw.SetObserver(obs)
	allRun(t, nw)
	if obs.begun != 1 || obs.ended != 1 {
		t.Fatalf("BeginRun/EndRun = %d/%d, want 1/1", obs.begun, obs.ended)
	}
	s := obs.sinks[0]
	st := nw.Stats()
	var grants, busy int64
	for _, g := range st.GrantsByVC {
		grants += g
	}
	for _, b := range st.LinkBusy {
		busy += b
	}
	if s.grants != grants {
		t.Errorf("OnGrant fired %d times, stats count %d grants", s.grants, grants)
	}
	if s.bytes != busy {
		t.Errorf("OnGrant bytes %d, LinkBusy total %d", s.bytes, busy)
	}
	if s.recv == 0 || s.inj == 0 || s.cpu == 0 {
		t.Errorf("hooks silent: inj=%d recv=%d cpu=%d", s.inj, s.recv, s.cpu)
	}
}

// TestObserverSerialShardedCounts: the same observer totals at any shard
// count (per-shard sinks summed), and identical simulation results.
func TestObserverSerialShardedCounts(t *testing.T) {
	sum := func(o *countObserver) countSink {
		var tot countSink
		for _, s := range o.sinks {
			tot.grants += s.grants
			tot.blocked += s.blocked
			tot.inj += s.inj
			tot.recv += s.recv
			tot.cpu += s.cpu
			tot.bytes += s.bytes
		}
		return tot
	}
	serial := &countObserver{}
	nw := smallAllToAll(t)
	nw.SetObserver(serial)
	finSerial := allRun(t, nw)

	sharded := &countObserver{}
	nw2 := smallAllToAll(t)
	nw2.SetObserver(sharded)
	finSharded, err := nw2.RunSharded(1<<30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if finSerial != finSharded {
		t.Fatalf("finish diverged: %d vs %d", finSerial, finSharded)
	}
	if sum(serial) != sum(sharded) {
		t.Errorf("observer totals diverged:\nserial:  %+v\nsharded: %+v", sum(serial), sum(sharded))
	}
}
