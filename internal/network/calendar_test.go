package network

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"alltoall/internal/torus"
)

// drainCompare pops both queues dry, requiring the identical event sequence
// (and agreeing top()/len() at every step).
func drainCompare(t *testing.T, cal *calendarQueue, ref *eventHeap, ctx string) {
	t.Helper()
	step := 0
	for ref.len() > 0 {
		if cal.len() != ref.len() {
			t.Fatalf("%s step %d: len %d, reference %d", ctx, step, cal.len(), ref.len())
		}
		if got, want := cal.top(), ref.top(); got != want {
			t.Fatalf("%s step %d: top %+v, reference %+v", ctx, step, got, want)
		}
		if got, want := cal.pop(), ref.pop(); got != want {
			t.Fatalf("%s step %d: pop %+v, reference %+v", ctx, step, got, want)
		}
		step++
	}
	if cal.len() != 0 {
		t.Fatalf("%s: reference drained but calendar holds %d events", ctx, cal.len())
	}
}

// TestCalendarQueueMatchesHeap is the differential property test: random
// event multisets - same-tick key ties, exact duplicates, beyond-horizon
// pushes - interleaved with pops must produce exactly the reference heap's
// pop sequence. Pushes respect the engine's contract (never behind the last
// popped time), which is the only discipline the calendar queue assumes.
func TestCalendarQueueMatchesHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var cal calendarQueue
		var ref eventHeap
		horizon := int64(64) << rng.Intn(6) // 64..2048
		cal.init(horizon)
		low := int64(0) // engine clock: max popped time so far
		ops := 200 + rng.Intn(800)
		for i := 0; i < ops; i++ {
			if rng.Intn(3) != 0 || ref.len() == 0 { // push-biased mix
				delta := int64(rng.Intn(64)) // mostly near-now, dense ties
				switch rng.Intn(10) {
				case 0: // just inside / straddling the horizon edge
					delta = horizon - 2 + int64(rng.Intn(5))
				case 1: // far beyond the horizon (overflow path)
					delta = horizon * int64(1+rng.Intn(20))
				}
				ev := mkEvent(low+delta, int32(rng.Intn(8)), int32(rng.Intn(4)), uint8(rng.Intn(4)))
				cal.push(ev)
				ref.push(ev)
				if rng.Intn(8) == 0 { // exact duplicate (legal: identical events)
					cal.push(ev)
					ref.push(ev)
				}
			} else {
				if got, want := cal.top(), ref.top(); got != want {
					t.Fatalf("trial %d op %d: top %+v, reference %+v", trial, i, got, want)
				}
				got, want := cal.pop(), ref.pop()
				if got != want {
					t.Fatalf("trial %d op %d: pop %+v, reference %+v", trial, i, got, want)
				}
				low = want.t
			}
		}
		drainCompare(t, &cal, &ref, fmt.Sprintf("trial %d", trial))
	}
}

// TestCalendarQueueOverflowResurfaces pins the subtle overflow interaction:
// an event pushed beyond the horizon must win the pop race the moment the
// clock advances to it, even though it never migrates into the ring and
// later ring pushes carry larger times.
func TestCalendarQueueOverflowResurfaces(t *testing.T) {
	var cal calendarQueue
	var ref eventHeap
	cal.init(64)
	push := func(e event) { cal.push(e); ref.push(e) }
	push(mkEvent(1000, 3, 0, evService)) // beyond horizon: overflow
	push(mkEvent(10, 1, 0, evArrive))
	// Drain to t=10, then schedule ring events past the overflow event's
	// time: the overflow event must still pop first at t=1000.
	if got, want := cal.pop(), ref.pop(); got != want {
		t.Fatalf("pop %+v, want %+v", got, want)
	}
	push(mkEvent(1001, 0, 0, evArrive)) // still beyond horizon from base=10
	if got, want := cal.pop(), ref.pop(); got.t != 1000 || got != want {
		t.Fatalf("overflow event did not resurface: got %+v, want %+v", got, want)
	}
	// base is now 1000; 1001 is within the ring horizon, and a same-tick tie
	// against a fresh ring push must still order by key.
	push(mkEvent(1001, 0, 0, evService))
	drainCompare(t, &cal, &ref, "overflow tail")
}

// FuzzEventQueue drives the calendar queue and the reference heap from raw
// fuzz bytes: two bytes per operation (op selector + time delta), with the
// engine's monotone-push discipline enforced by construction.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x40, 0xff, 0x80, 0x00, 0xc1, 0x7f})
	f.Add([]byte{0x13, 0x00, 0x13, 0x00, 0x23, 0x00, 0x33, 0x00}) // dense ties
	f.Add([]byte{0x07, 0xff, 0x07, 0xff, 0x47, 0xff, 0x87, 0xff}) // far pushes
	f.Fuzz(func(t *testing.T, data []byte) {
		var cal calendarQueue
		var ref eventHeap
		cal.init(256)
		low := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			op, d := data[i], int64(data[i+1])
			if op&0x3 == 3 && ref.len() > 0 {
				if got, want := cal.top(), ref.top(); got != want {
					t.Fatalf("op %d: top %+v, reference %+v", i, got, want)
				}
				got, want := cal.pop(), ref.pop()
				if got != want {
					t.Fatalf("op %d: pop %+v, reference %+v", i, got, want)
				}
				low = want.t
				continue
			}
			delta := d
			if op&0x40 != 0 {
				delta *= 31 // reach past the 256-tick horizon
			}
			ev := mkEvent(low+delta, int32(op>>4), int32(op>>2&3), op&3)
			cal.push(ev)
			ref.push(ev)
		}
		for ref.len() > 0 {
			if got, want := cal.pop(), ref.pop(); got != want {
				t.Fatalf("drain: pop %+v, reference %+v", got, want)
			}
		}
		if cal.len() != 0 {
			t.Fatalf("calendar holds %d events after reference drained", cal.len())
		}
	})
}

// TestCalendarQueueReset pins reset-and-reuse: a drained-or-abandoned queue
// must come back empty with a zeroed clock floor.
func TestCalendarQueueReset(t *testing.T) {
	var cal calendarQueue
	cal.init(128)
	for i := 0; i < 100; i++ {
		cal.push(mkEvent(int64(i*7), int32(i&3), 0, evArrive))
	}
	for i := 0; i < 40; i++ {
		cal.pop()
	}
	cal.reset()
	if cal.len() != 0 {
		t.Fatalf("len %d after reset", cal.len())
	}
	// Reuse from t=0: the ring must accept fresh events in every bucket.
	var ref eventHeap
	for i := 0; i < 100; i++ {
		ev := mkEvent(int64(i%130), int32(i&3), 0, evService)
		cal.push(ev)
		ref.push(ev)
	}
	drainCompare(t, &cal, &ref, "post-reset")
}

func TestCalendarHorizon(t *testing.T) {
	h := calendarHorizon(DefaultParams())
	if h&(h-1) != 0 {
		t.Fatalf("horizon %d is not a power of two", h)
	}
	if h < 64 || h > 1<<16 {
		t.Fatalf("horizon %d outside clamp bounds", h)
	}
	// Must comfortably exceed every routine scheduling delta.
	par := DefaultParams()
	for _, delta := range []int64{
		MaxPacketBytes + par.RouterDelay, par.CreditDelay, par.EscapeDelay, par.CPUCost(MaxPacketBytes),
	} {
		if h <= delta {
			t.Fatalf("horizon %d does not cover routine delta %d", h, delta)
		}
	}
	// The clamp must hold under absurd parameter sweeps.
	par.EscapeDelay = 1 << 40
	if h := calendarHorizon(par); h > 1<<16 {
		t.Fatalf("horizon %d escaped the upper clamp", h)
	}
}

// TestEventQueueHeapIdentical runs the same simulation under the calendar
// queue (default) and the Params.EventQueue="heap" escape hatch: finish time
// and the full statistics snapshot must be byte-identical, serial and
// sharded. This is the acceptance oracle for the pop sequence being a pure
// function of the pushed multiset in both structures.
func TestEventQueueHeapIdentical(t *testing.T) {
	shape := torus.New(8, 4, 2)
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 192}
		}
		return srcs
	}
	run := func(queue string, shards int) (int64, *Stats) {
		par := DefaultParams()
		par.EventQueue = queue
		nw, err := New(shape, par, mkSrcs(), countOnly{})
		if err != nil {
			t.Fatal(err)
		}
		ft, err := nw.RunSharded(1<<40, shards)
		if err != nil {
			t.Fatalf("queue=%q shards=%d: %v", queue, shards, err)
		}
		return ft, nw.Stats()
	}
	ftCal, stCal := run("", 1)
	queuedByShards := map[int]int64{1: stCal.QueuedEvents}
	for _, tc := range []struct {
		queue  string
		shards int
	}{
		{EventQueueCalendar, 1}, {EventQueueHeap, 1}, {EventQueueHeap, 3}, {EventQueueCalendar, 3},
	} {
		ft, st := run(tc.queue, tc.shards)
		if ft != ftCal {
			t.Errorf("queue=%q shards=%d finish %d, want %d", tc.queue, tc.shards, ft, ftCal)
		}
		// QueuedEvents is queue-structure invariant (both structures remove
		// and pop the same multiset) but only shard-count invariant up to
		// boundary-credit elision decisions (coalesce.go): pin it exactly
		// across queues at each shard count, normalize across shard counts.
		if q, ok := queuedByShards[tc.shards]; ok {
			if st.QueuedEvents != q {
				t.Errorf("queue=%q shards=%d QueuedEvents %d, want %d (structure changed the pop multiset)",
					tc.queue, tc.shards, st.QueuedEvents, q)
			}
		} else {
			queuedByShards[tc.shards] = st.QueuedEvents
		}
		st.QueuedEvents = stCal.QueuedEvents
		if !reflect.DeepEqual(st, stCal) {
			t.Errorf("queue=%q shards=%d stats diverge from calendar serial run", tc.queue, tc.shards)
		}
	}
}

func TestEventQueueParamValidated(t *testing.T) {
	par := DefaultParams()
	par.EventQueue = "splay-tree"
	if _, err := New(torus.New(2, 2, 1), par, nil, countOnly{}); err == nil {
		t.Fatal("bogus EventQueue accepted")
	}
}

// benchEventQueue is the classic hold-model queue benchmark with the
// engine's real event mix: a warm backlog sized like a large partition's,
// then pop-one/push-one at realistic scheduling deltas (granule arrivals,
// credit returns, full-packet arrivals, link frees, CPU completions, and a
// rare far-future pacing kick that exercises the calendar's overflow path).
func benchEventQueue(b *testing.B, queue string) {
	b.ReportAllocs()
	par := DefaultParams()
	par.EventQueue = queue
	var q eventQueue
	q.init(par)
	deltas := [16]int64{47, 47, 47, 47, 15, 15, 15, 271, 271, 256, 192, 64, 79, 32, 128, 5000}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1<<16; i++ {
		q.push(mkEvent(int64(rng.Intn(1<<12)), int32(rng.Intn(1<<10)), int32(rng.Intn(4)), uint8(rng.Intn(4))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		e.t += deltas[i&15]
		q.push(e)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkEventQueueHeap(b *testing.B)     { benchEventQueue(b, EventQueueHeap) }
func BenchmarkEventQueueCalendar(b *testing.B) { benchEventQueue(b, EventQueueCalendar) }

// BenchmarkNetworkRunLarge is the engine-level before/after for the event
// queue and for event coalescing on a table2-shaped (asymmetric,
// Y-dominant) partition - the regime where the event backlog is deepest.
// The queue=heap and queue=calendar sub-benchmarks pin the two queue
// structures (coalescing on, the default); queue=calendar/coalesce=off is
// the uncoalesced reference. All simulations are byte-identical, so the
// events/s ratios isolate pure engine cost, and events/pkt (queued-event
// pops per injected packet) is the machine-independent volume metric the
// CI ceiling check guards.
func BenchmarkNetworkRunLarge(b *testing.B) {
	shape := torus.New(8, 16, 8)
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 256}
		}
		return srcs
	}
	cases := []struct {
		name     string
		queue    string
		coalesce string
		sync     string
		shards   int
	}{
		{"queue=" + EventQueueHeap, EventQueueHeap, "", "", 1},
		{"queue=" + EventQueueCalendar, EventQueueCalendar, "", "", 1},
		{"queue=" + EventQueueCalendar + "/coalesce=" + CoalesceOff, EventQueueCalendar, CoalesceOff, "", 1},
	}
	// Shard-scaling matrix: the BSP barrier protocol against the async
	// conservative engine at 2 and 4 shards, plus single-shard rows of both
	// so the intra-run speedup and the 1-core overhead are read off the same
	// benchmark. All rows simulate the identical byte-exact run.
	for _, sync := range []string{SyncBSP, SyncAsync} {
		for _, shards := range []int{1, 2, 4} {
			cases = append(cases, struct {
				name     string
				queue    string
				coalesce string
				sync     string
				shards   int
			}{fmt.Sprintf("sync=%s/shards=%d", sync, shards), "", "", sync, shards})
		}
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			par := DefaultParams()
			par.EventQueue = c.queue
			par.Coalesce = c.coalesce
			par.Sync = c.sync
			nw, err := New(shape, par, mkSrcs(), countOnly{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := nw.RunSharded(1<<42, c.shards); err != nil {
				b.Fatal(err)
			}
			var events, queued, packets, advances, waits int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nw.Reset(mkSrcs(), countOnly{}); err != nil {
					b.Fatal(err)
				}
				if _, err := nw.RunSharded(1<<42, c.shards); err != nil {
					b.Fatal(err)
				}
				st := nw.Stats()
				events += st.Events()
				queued += st.QueuedEvents
				packets += st.PacketsInjected
				ss := nw.SyncStats()
				advances += ss.HorizonAdvances
				waits += ss.BlockedWaits
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(queued)/float64(packets), "events/pkt")
			if c.shards > 1 && advances > 0 {
				// Synchronization overhead per unit of progress: blocked
				// waits (barrier crossings or backoff episodes) per horizon
				// advance. The CI regression gate bounds this ratio.
				b.ReportMetric(float64(waits)/float64(advances), "waits/adv")
			}
		})
	}
}
