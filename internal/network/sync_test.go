package network

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"alltoall/internal/torus"
)

// TestSyncDifferentialMatrix is the cross-engine byte-identity oracle for
// the synchronization protocols: every combination of sync {bsp, async} x
// event queue {calendar, heap} x coalescing {on, off} x faults {off, on} at
// shard counts {1, 4} must reproduce the serial reference run of the same
// workload field for field. QueuedEvents is the one deliberate exemption:
// boundary credits decide elision at different horizons per protocol (see
// Stats.QueuedEvents), so it is bounded, then normalized before the
// DeepEqual.
func TestSyncDifferentialMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	shape := torus.New(8, 4, 2)
	p := shape.P()
	faultSpecs := []string{"", "0:5:+x:kill;800:9:-y:down;6000:9:-y:up"}
	for _, spec := range faultSpecs {
		var ref *Stats
		var refFin int64
		// QueuedEvents is coalesce-dependent by design (coalescing folds
		// same-tick pops into markers), so its drift bound is tracked per
		// coalesce mode, not against the one global reference.
		refQueued := map[string]int64{}
		for _, sync := range []string{SyncBSP, SyncAsync} {
			for _, queue := range []string{EventQueueCalendar, EventQueueHeap} {
				for _, coal := range []string{CoalesceOn, CoalesceOff} {
					for _, shards := range []int{1, 4} {
						name := fmt.Sprintf("faults=%t/sync=%s/queue=%s/coalesce=%s/shards=%d",
							spec != "", sync, queue, coal, shards)
						par := DefaultParams()
						par.Sync = sync
						par.EventQueue = queue
						par.Coalesce = coal
						par.Check = true
						if spec != "" {
							fs, err := ParseFaults(spec)
							if err != nil {
								t.Fatal(err)
							}
							par.Faults = fs
						}
						h := newShardCountHandler(p)
						nw, err := New(shape, par, shardTraffic(p, 42), h)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						fin, err := nw.RunSharded(1<<40, shards)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						st := nw.Stats()
						if q, ok := refQueued[coal]; !ok {
							refQueued[coal] = st.QueuedEvents
						} else if d := st.QueuedEvents - q; d < -64 || d > 64 {
							t.Errorf("%s: QueuedEvents drifted by %d (got %d, reference %d)",
								name, d, st.QueuedEvents, q)
						}
						if ref == nil {
							ref, refFin = st, fin
							continue
						}
						if fin != refFin {
							t.Errorf("%s: finish %d, reference %d", name, fin, refFin)
						}
						norm := *st
						norm.QueuedEvents = ref.QueuedEvents
						if !reflect.DeepEqual(&norm, ref) {
							t.Errorf("%s: stats diverge from reference\nref: %+v\ngot: %+v", name, ref, st)
						}
						mode := sync
						if shards == 1 {
							mode = "serial"
						}
						if ss := nw.SyncStats(); ss.Mode != mode || ss.Shards != shards {
							t.Errorf("%s: SyncStats mode %q shards %d, want %q %d",
								name, ss.Mode, ss.Shards, mode, shards)
						}
					}
				}
			}
		}
	}
}

// TestSyncCounters pins the observability satellite at the engine level: a
// sharded run must report horizon advances and cross-shard traffic, the
// async run must publish its lookahead bounds from the distance matrix, and
// serial runs must stay all-zero with Mode "serial".
func TestSyncCounters(t *testing.T) {
	shape := torus.New(8, 4, 2)
	p := shape.P()
	run := func(sync string, shards int) SyncStats {
		par := DefaultParams()
		par.Sync = sync
		nw, err := New(shape, par, shardTraffic(p, 42), newShardCountHandler(p))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.RunSharded(1<<40, shards); err != nil {
			t.Fatalf("sync=%q shards=%d: %v", sync, shards, err)
		}
		return nw.SyncStats()
	}
	serial := run("", 1)
	if serial.Mode != "serial" || serial.HorizonAdvances != 0 || serial.CrossShardEvents != 0 {
		t.Errorf("serial SyncStats not quiescent: %+v", serial)
	}
	w := shardSafeWindow(DefaultParams())
	for _, sync := range []string{SyncAsync, SyncBSP} {
		ss := run(sync, 4)
		if ss.Mode != sync || ss.Shards != 4 {
			t.Errorf("sync=%q: mode %q shards %d", sync, ss.Mode, ss.Shards)
		}
		if ss.HorizonAdvances == 0 {
			t.Errorf("sync=%q: no horizon advances recorded", sync)
		}
		if ss.CrossShardEvents == 0 || ss.CrossShardBytes == 0 {
			t.Errorf("sync=%q: no cross-shard traffic recorded: %+v", sync, ss)
		}
		if ss.LookaheadMin < w {
			t.Errorf("sync=%q: LookaheadMin %d below the safe window %d", sync, ss.LookaheadMin, w)
		}
		if ss.LookaheadMax < ss.LookaheadMin {
			t.Errorf("sync=%q: LookaheadMax %d < LookaheadMin %d", sync, ss.LookaheadMax, ss.LookaheadMin)
		}
	}
	// 4 contiguous slabs on 8x4x2: opposite slabs sit two boundary hops
	// apart, so the async lookahead matrix must spread beyond one window.
	if ss := run(SyncAsync, 4); ss.LookaheadMax <= ss.LookaheadMin {
		t.Errorf("async lookahead matrix is flat (%d..%d); distance scaling lost",
			ss.LookaheadMin, ss.LookaheadMax)
	}
}

// TestAsyncSoakShards4 hammers the default (async) protocol at the CI race
// matrix's shard count: many repeated runs over recycled engines, each
// compared byte-for-byte against the serial reference. Iterations scale with
// SOAK_ITERS for the dedicated CI soak step; the default stays fast enough
// for `go test ./...`.
func TestAsyncSoakShards4(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	iters := 8
	if s := os.Getenv("SOAK_ITERS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SOAK_ITERS=%q: %v", s, err)
		}
		iters = v
	}
	shape := torus.New(8, 4, 2)
	p := shape.P()
	par := DefaultParams()
	hSerial := newShardCountHandler(p)
	ref, err := New(shape, par, shardTraffic(p, 99), hSerial)
	if err != nil {
		t.Fatal(err)
	}
	refFin, err := ref.Run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	h := newShardCountHandler(p)
	nw, err := New(shape, par, shardTraffic(p, 99), h)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		if i > 0 {
			h.reset()
			if err := nw.Reset(shardTraffic(p, 99), h); err != nil {
				t.Fatal(err)
			}
		}
		fin, err := nw.RunSharded(1<<40, 4)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if fin != refFin {
			t.Fatalf("iter %d: finish %d, serial %d", i, fin, refFin)
		}
		if !reflect.DeepEqual(nw.Stats(), ref.Stats()) {
			t.Fatalf("iter %d: stats diverge from serial", i)
		}
		if !reflect.DeepEqual(h, hSerial) {
			t.Fatalf("iter %d: handler observations diverge from serial", i)
		}
	}
}

// FuzzLookahead checks the async engine's lookahead-matrix derivation on
// arbitrary small shapes (wraparound and mesh edges, degenerate dimensions)
// and shard counts against an independent Floyd-Warshall oracle built
// directly from the machine's link table, and pins the algebra layered on
// top of the distances: look = dist x window, unreachable and self entries
// saturated, and the published min/max bounds.
func FuzzLookahead(f *testing.F) {
	f.Add(uint8(4), uint8(4), uint8(2), uint8(0b111), uint8(4))
	f.Add(uint8(5), uint8(3), uint8(4), uint8(0b010), uint8(7)) // odd mesh/torus mix
	f.Add(uint8(16), uint8(1), uint8(1), uint8(0b001), uint8(3))
	f.Add(uint8(3), uint8(3), uint8(3), uint8(0), uint8(2)) // full mesh
	f.Fuzz(func(t *testing.T, sx, sy, sz, wrap, shards uint8) {
		dims := [3]int{int(sx%6) + 1, int(sy%6) + 1, int(sz%6) + 1}
		var w [3]bool
		for d := 0; d < 3; d++ {
			w[d] = wrap&(1<<d) != 0 && dims[d] >= 3
		}
		shape := torus.NewMesh(dims[0], dims[1], dims[2], w[0], w[1], w[2])
		if shape.Validate() != nil {
			t.Skip()
		}
		p := shape.P()
		s := int(shards%8) + 1
		if s > p {
			s = p
		}
		nw, err := New(shape, DefaultParams(), nil, countOnly{})
		if err != nil {
			t.Skip()
		}
		nw.ensureShards(s)

		// Independent oracle: shard adjacency straight from the link table,
		// then all-pairs distances by Floyd-Warshall (a different algorithm
		// than the BFS under test).
		const inf = int32(1 << 30)
		dist := make([]int32, s*s)
		for i := range dist {
			dist[i] = inf
		}
		for i := 0; i < s; i++ {
			dist[i*s+i] = 0
		}
		for n := int32(0); n < int32(p); n++ {
			for d := 0; d < numDirs; d++ {
				nb := nw.nbrs[linkIdx(n, d)]
				if nb < 0 {
					continue
				}
				i, j := int(nw.shardOf[n]), int(nw.shardOf[nb])
				if i != j {
					dist[i*s+j] = 1
					dist[j*s+i] = 1
				}
			}
		}
		for k := 0; k < s; k++ {
			for i := 0; i < s; i++ {
				for j := 0; j < s; j++ {
					if dist[i*s+k] < inf && dist[k*s+j] < inf && dist[i*s+k]+dist[k*s+j] < dist[i*s+j] {
						dist[i*s+j] = dist[i*s+k] + dist[k*s+j]
					}
				}
			}
		}
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				want := dist[i*s+j]
				if want == inf {
					want = -1
				}
				if got := nw.shardDist[i*s+j]; got != want {
					t.Fatalf("shape %v shards=%d: shardDist[%d][%d] = %d, oracle %d",
						shape, s, i, j, got, want)
				}
			}
		}

		window := shardSafeWindow(nw.Par)
		nw.prepareAsync(s, window)
		st := &nw.async
		minL, maxL := int64(maxInt64), int64(0)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				d := nw.shardDist[i*s+j]
				want := int64(maxInt64)
				if i != j && d > 0 {
					want = int64(d) * window
					if want < minL {
						minL = want
					}
					if want > maxL {
						maxL = want
					}
				}
				if got := st.look[i*s+j]; got != want {
					t.Fatalf("shape %v shards=%d: look[%d][%d] = %d, want %d", shape, s, i, j, got, want)
				}
			}
		}
		if s > 1 && minL != int64(maxInt64) {
			if st.lookMin != minL || st.lookMax != maxL {
				t.Fatalf("shape %v shards=%d: lookMin/Max %d/%d, want %d/%d",
					shape, s, st.lookMin, st.lookMax, minL, maxL)
			}
		}
		// Rings must exist exactly for ordered boundary-adjacent pairs.
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				hasRing := i != j && st.outbox[i][j] != nil
				wantRing := i != j && nw.shardDist[i*s+j] == 1
				if hasRing != wantRing {
					t.Fatalf("shape %v shards=%d: ring(%d->%d) = %t, want %t", shape, s, i, j, hasRing, wantRing)
				}
			}
		}
	})
}
