package network

// event is a scheduled simulator action. Kept small (24 bytes) for heap
// throughput; the binary heap is hand-rolled to avoid container/heap
// interface dispatch in the hot loop.
type event struct {
	t    int64
	node int32
	a    int32
	kind uint8
}

const (
	evArrive  = iota // packet a finishes traversing a link into node
	evService        // run router arbitration at node
	evCPUKick        // re-poll the node's CPU (throttle wait expiry)
)

type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ev[parent].t <= h.ev[i].t {
			break
		}
		h.ev[parent], h.ev[i] = h.ev[i], h.ev[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.ev[l].t < h.ev[smallest].t {
			smallest = l
		}
		if r < last && h.ev[r].t < h.ev[smallest].t {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
	return top
}
