package network

// event is a scheduled simulator action, packed to 16 bytes for heap
// throughput: the heap moves events by value, so smaller structs mean fewer
// copied bytes per sift level. key packs (node, kind, arg) into one word
// (node in the high 29 bits, kind in the next 3, arg in the low 32), which
// also makes the tie-break comparison a single machine compare.
type event struct {
	t   int64
	key uint64
}

const (
	evArrive  = iota // packet arg finishes traversing a link into node
	evService        // run router arbitration at node
	evCPUKick        // re-poll the node's CPU (throttle wait expiry)
	evCredit         // apply a token return (arg packs dir, vc, cost) at node
	evFault          // apply fault-schedule transition arg (index) at node
)

func mkEvent(t int64, node, a int32, kind uint8) event {
	return event{t: t, key: uint64(uint32(node))<<35 | uint64(kind)<<32 | uint64(uint32(a))}
}

func (e event) node() int32 { return int32(e.key >> 35) }
func (e event) kind() uint8 { return uint8(e.key>>32) & 7 }
func (e event) arg() int32  { return int32(uint32(e.key)) }

// Arrival args put the input direction in the high bits and the packet-pool
// index in the low 28. Simultaneous arrivals at one node always come from
// distinct input directions (a link serializes: successive grants yield
// strictly increasing ETAs), so the tie-break never reaches the pid bits.
// That makes the event order independent of pool-slot assignment, which is
// what lets the sharded engine - whose per-shard pools hand out different
// pids than the serial free list - reproduce the serial run byte for byte.
const arrivePidBits = 28

func arriveArg(inDir int8, pid int32) int32 {
	return int32(inDir)<<arrivePidBits | pid
}

func arrivePid(a int32) int32 { return a & (1<<arrivePidBits - 1) }

// Credit args pack (output direction, vc, token cost); cost is at most
// MaxPacketBytes so 12 bits suffice.
func creditArg(dir int, vc int8, cost int32) int32 {
	return int32(dir)<<16 | int32(vc)<<12 | cost
}

func creditUnpack(a int32) (dir int, vc int8, cost int32) {
	return int(a >> 16), int8(a >> 12 & 0xf), a & 0xfff
}

// less orders events by time, breaking ties on (node, kind, arg) via the
// packed key. The strict total order makes the pop sequence a pure function
// of the pushed multiset - every pop returns the unique minimum of the
// current contents - so simulation results cannot shift when the heap's
// internal structure (e.g. its arity) changes, and two events that compare
// equal are byte-identical and interchangeable.
func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.key < b.key
}

// eventHeap is a 4-ary min-heap of events, hand-rolled to avoid
// container/heap interface dispatch in the hot loop. The wider fan-out
// halves the sift depth versus a binary heap; with the multi-million-event
// queues of large partitions the extra sibling comparisons per level are
// cheaper than the deeper (cache-missing) traversal.
type eventHeap struct {
	ev []event
}

const heapArity = 4

func (h *eventHeap) len() int { return len(h.ev) }

// top returns the minimum event without removing it. Must not be called on
// an empty heap.
func (h *eventHeap) top() event { return h.ev[0] }

// reset discards all pending events, keeping the backing array.
func (h *eventHeap) reset() { h.ev = h.ev[:0] }

// push sifts the hole up (one copy per level, not a swap).
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		pe := h.ev[parent]
		if !less(e, pe) {
			break
		}
		h.ev[i] = pe
		i = parent
	}
	h.ev[i] = e
}

// remove deletes the queued event at time t whose key lies in [keyLo, keyHi],
// if present (callers target keys that are unique per (t, node, kind) by
// construction: the svcPend slot, a coalescing marker, or the dup-elided
// link-free wakeup). The scan is linear; removal targets provable no-op
// events (coalesce.go) whose queue traffic is worth the walk.
func (h *eventHeap) remove(t int64, keyLo, keyHi uint64) bool {
	for i, ev := range h.ev {
		if ev.t == t && ev.key >= keyLo && ev.key <= keyHi {
			last := len(h.ev) - 1
			le := h.ev[last]
			h.ev = h.ev[:last]
			if i < last {
				h.siftAt(i, le)
			}
			return true
		}
	}
	return false
}

// siftAt re-inserts e into the hole a removal left at i: sift down first,
// and if the hole never moves, sift up (the displaced tail can beat the
// hole's ancestors when they came from a different subtree).
func (h *eventHeap) siftAt(i int, e event) {
	n := len(h.ev)
	j := i
	for {
		first := heapArity*j + 1
		if first >= n {
			break
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		smallest, se := first, h.ev[first]
		for c := first + 1; c < end; c++ {
			if ce := h.ev[c]; less(ce, se) {
				smallest, se = c, ce
			}
		}
		if !less(se, e) {
			break
		}
		h.ev[j] = se
		j = smallest
	}
	if j == i {
		for j > 0 {
			parent := (j - 1) / heapArity
			pe := h.ev[parent]
			if !less(e, pe) {
				break
			}
			h.ev[j] = pe
			j = parent
		}
	}
	h.ev[j] = e
}

// pop sifts the displaced tail element down as a hole (one copy per level).
func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	e := h.ev[last]
	h.ev = h.ev[:last]
	if last == 0 {
		return top
	}
	i := 0
	for {
		first := heapArity*i + 1
		if first >= last {
			break
		}
		end := first + heapArity
		if end > last {
			end = last
		}
		smallest, se := first, h.ev[first]
		for c := first + 1; c < end; c++ {
			if ce := h.ev[c]; less(ce, se) {
				smallest, se = c, ce
			}
		}
		if !less(se, e) {
			break
		}
		h.ev[i] = se
		i = smallest
	}
	h.ev[i] = e
	return top
}
