package network

import (
	"fmt"
	"math/bits"

	"alltoall/internal/torus"
)

// Directions: 2*dim + 0 is the + direction, 2*dim + 1 is the - direction.
const numDirs = 6

func dirOf(dim torus.Dim, sign int) int {
	if sign > 0 {
		return 2 * int(dim)
	}
	return 2*int(dim) + 1
}

func dimOfDir(dir int) torus.Dim { return torus.Dim(dir / 2) }

func signOfDir(dir int) int {
	if dir%2 == 0 {
		return 1
	}
	return -1
}

func oppositeDir(dir int) int { return dir ^ 1 }

// vcCost returns the buffer/token cost of a packet on a virtual channel.
// Dynamic VCs use byte accounting with flit-credit streaming (grants may
// overshoot, modelling cut-through into a draining buffer). The bubble
// escape VC accounts whole max-packet slots with no overshoot: Puente's
// bubble invariant (one free packet slot always remains on each ring) needs
// local free space to lower-bound ring free space, which overshoot or
// sub-packet fragmentation would break and deadlock the escape path.
func vcCost(vc int8, size int32) int32 {
	if vc == VCBubble {
		return MaxPacketBytes
	}
	return size
}

// PacketSpec describes a packet to inject.
type PacketSpec struct {
	Dst      int32 // destination rank
	Size     int32 // wire bytes, MinPacketBytes..MaxPacketBytes
	Payload  int32 // application payload bytes carried (bookkeeping only)
	Aux      int32 // strategy cookie (e.g. final destination for TPS phase 1)
	ExtraCPU int64 // additional CPU time to charge on injection (alpha, copies)
	Det      bool  // deterministic dimension-ordered routing (no adaptivity)
	Class    int8  // injection FIFO class; mapped onto FIFOs modulo Params.InjFIFOs
	Kind     uint8 // strategy-defined packet kind
}

// SrcStatus is the result of polling a Source.
type SrcStatus uint8

const (
	// SrcReady means the returned spec should be injected now.
	SrcReady SrcStatus = iota
	// SrcWait means nothing to inject until the returned time (throttling).
	SrcWait
	// SrcDone means the source has no further packets, ever.
	SrcDone
)

// Source produces the injection schedule for one node. The network polls it
// whenever the node's CPU is free and the relevant injection FIFO has room.
type Source interface {
	Next(now int64) (PacketSpec, SrcStatus, int64)
}

// Delivered describes a packet handed to the CPU at its destination.
type Delivered struct {
	Node    int32 // node at which the packet was received
	Src     int32 // original injecting node
	Aux     int32
	Size    int32
	Payload int32
	Enq     int64 // injection timestamp
	Kind    uint8
}

// Handler observes deliveries and implements software forwarding: the
// specs appended to fw are re-injected from the receiving node (charging the
// CPU for each). extraCPU is added to the CPU receive cost (e.g. the VMesh
// sort/copy gamma term). final marks packets that complete the collective
// (they count toward FinishTime).
type Handler interface {
	OnDeliver(d Delivered, fw []PacketSpec) (fwOut []PacketSpec, extraCPU int64, final bool)
}

// packet is the in-flight representation. Slots are pooled.
type packet struct {
	dst     int32
	src     int32
	size    int32
	payload int32
	aux     int32
	enq     int64
	blocked int64 // time this packet first failed arbitration here (0 = never)
	hops    [3]int8
	vc      int8  // VC occupied at the current node's input; -1 if in an injection FIFO
	inDir   int8  // input direction at the current node; -1 if in an injection FIFO
	want    uint8 // bitmask of output directions this packet can use next
	det     bool
	kind    uint8
}

// wantMask computes the output directions a packet can take given its
// remaining hops: every profitable direction for adaptive packets, only the
// first dimension-order direction for deterministic ones.
func wantMask(hops [3]int8, det bool) uint8 {
	var m uint8
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		if h := hops[d]; h != 0 {
			m |= 1 << dirOf(d, int(h))
			if det {
				break
			}
		}
	}
	return m
}

type cpuOp uint8

const (
	opNone cpuOp = iota
	opRecv
	opInject
)

type router struct {
	in   [numDirs][NumVC]pktQueue
	tok  [numDirs][NumVC]int32 // credits for the neighbour's input VC reached via this output
	nbr  [numDirs]int32        // neighbour rank per output direction, -1 at mesh edges
	out  [numDirs]int64        // outBusyUntil per output direction
	inj  []pktQueue
	recv pktQueue

	pendingFw []PacketSpec // software forwards awaiting CPU injection
	pendSrc   PacketSpec   // one-slot buffer for a polled-but-unplaced source spec
	pendValid bool

	cpuBusy   bool
	cpuEnd    int64
	cpuToggle bool // alternate reception and injection service fairly
	curOp     cpuOp
	curPkt    int32
	curSpec   PacketSpec
	curFw     []PacketSpec
	curFinal  bool

	srcDone    bool
	svcPending bool
	svcAt      int64
	svcMask    uint8
	occMask    uint32 // bit per queue (18 input VCs, then injection FIFOs) that is non-empty
	rrCursor   uint32
}

// Network is a simulated torus machine.
type Network struct {
	Shape torus.Shape
	P     int
	Par   Params

	routers []router
	coords  []torus.Coord
	pkts    []packet
	freePkt int32 // head of free list threaded through pkts[i].dst
	evq     eventHeap
	now     int64

	sources   []Source
	handler   Handler
	activeSrc int
	inFlight  int64

	traceNode int32
	traceDir  int
	traceLog  *[]GrantEvent

	linkCount int
	stats     Stats
}

// New builds a network for the given shape with per-node sources and a
// delivery handler. sources may contain nil entries (nodes that inject
// nothing). handler must not be nil.
func New(shape torus.Shape, par Params, sources []Source, handler Handler) (*Network, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, fmt.Errorf("network: nil handler")
	}
	p := shape.P()
	if sources != nil && len(sources) != p {
		return nil, fmt.Errorf("network: %d sources for %d nodes", len(sources), p)
	}
	// VCBytes must admit a joining packet under the bubble rule
	// (size + one full-packet bubble), or the escape channel deadlocks.
	if par.InjFIFOs < 1 || par.VCBytes < 2*MaxPacketBytes || par.CPUDen <= 0 || par.VCLookahead < 1 {
		return nil, fmt.Errorf("network: invalid params %+v", par)
	}
	nw := &Network{
		Shape:   shape,
		P:       p,
		Par:     par,
		routers: make([]router, p),
		coords:  make([]torus.Coord, p),
		sources: sources,
		handler: handler,
		freePkt: -1,
	}
	nw.stats.LinkBusy = make([]int64, p*numDirs)
	nw.stats.CPUBusy = make([]int64, p)
	nw.linkCount = shape.LinkCount()
	for n := 0; n < p; n++ {
		nw.coords[n] = shape.Coords(n)
	}
	for n := 0; n < p; n++ {
		r := &nw.routers[n]
		for d := 0; d < numDirs; d++ {
			nc, ok := shape.Neighbor(nw.coords[n], dimOfDir(d), signOfDir(d))
			if !ok {
				r.nbr[d] = -1
				continue
			}
			r.nbr[d] = int32(shape.Rank(nc))
			for vc := 0; vc < NumVC; vc++ {
				// Every VC can overshoot capacity by one max packet
				// (flit-credit streaming grants); size the queue for it.
				r.in[d][vc] = newPktQueue(par.VCBytes + MaxPacketBytes)
				r.tok[d][vc] = par.VCBytes
			}
		}
		r.inj = make([]pktQueue, par.InjFIFOs)
		for i := range r.inj {
			r.inj[i] = newPktQueue(par.InjFIFOBytes)
		}
		r.recv = newPktQueue(par.RecvFIFOBytes)
		if sources != nil && sources[n] != nil {
			nw.activeSrc++
		} else {
			r.srcDone = true
		}
	}
	return nw, nil
}

// Reset returns the network to its initial state for a fresh run on the same
// shape and parameters, reusing the router, queue, packet-pool, and event-
// heap allocations of the previous run. Sweeps that revisit one shape at
// many message sizes avoid rebuilding the whole machine at every point.
// sources and handler follow the same rules as New.
func (nw *Network) Reset(sources []Source, handler Handler) error {
	if handler == nil {
		return fmt.Errorf("network: nil handler")
	}
	if sources != nil && len(sources) != nw.P {
		return fmt.Errorf("network: %d sources for %d nodes", len(sources), nw.P)
	}
	nw.sources = sources
	nw.handler = handler
	nw.activeSrc = 0
	nw.inFlight = 0
	nw.now = 0
	nw.pkts = nw.pkts[:0]
	nw.freePkt = -1
	nw.evq.reset()
	nw.stats.reset()
	for n := 0; n < nw.P; n++ {
		r := &nw.routers[n]
		for d := 0; d < numDirs; d++ {
			r.out[d] = 0
			if r.nbr[d] < 0 {
				continue
			}
			for vc := 0; vc < NumVC; vc++ {
				r.in[d][vc].reset()
				r.tok[d][vc] = nw.Par.VCBytes
			}
		}
		for i := range r.inj {
			r.inj[i].reset()
		}
		r.recv.reset()
		r.pendingFw = r.pendingFw[:0]
		r.pendSrc = PacketSpec{}
		r.pendValid = false
		r.cpuBusy = false
		r.cpuEnd = 0
		r.cpuToggle = false
		r.curOp = opNone
		r.curPkt = 0
		r.curSpec = PacketSpec{}
		r.curFw = r.curFw[:0]
		r.curFinal = false
		r.svcPending = false
		r.svcAt = 0
		r.svcMask = 0
		r.occMask = 0
		r.rrCursor = 0
		if sources != nil && sources[n] != nil {
			r.srcDone = false
			nw.activeSrc++
		} else {
			r.srcDone = true
		}
	}
	return nil
}

// Now returns the current simulation time.
func (nw *Network) Now() int64 { return nw.now }

// Stats returns the collected statistics.
func (nw *Network) Stats() *Stats { return &nw.stats }

func (nw *Network) allocPkt() int32 {
	if nw.freePkt >= 0 {
		pid := nw.freePkt
		nw.freePkt = nw.pkts[pid].dst
		return pid
	}
	nw.pkts = append(nw.pkts, packet{})
	return int32(len(nw.pkts) - 1)
}

func (nw *Network) freePacket(pid int32) {
	nw.pkts[pid].dst = nw.freePkt
	nw.freePkt = pid
}

// routeHops computes the signed per-dimension hop vector for a packet from
// src to dst. Exact half-ring ties on even torus dimensions are split by
// (src+dst) parity so that the all-to-all load is balanced across both
// directions.
func (nw *Network) routeHops(src, dst int32) [3]int8 {
	a, b := nw.coords[src], nw.coords[dst]
	var h [3]int8
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		delta := nw.Shape.Delta(d, a[d], b[d])
		k := nw.Shape.Size[d]
		if nw.Shape.Wrap[d] && k%2 == 0 && (delta == k/2 || delta == -k/2) {
			// Half-ring ties: split by source parity so the aggregate
			// all-to-all load lands evenly on both ring directions.
			if src%2 == 1 {
				delta = -k / 2
			} else {
				delta = k / 2
			}
		}
		h[d] = int8(delta)
	}
	return h
}

// Run drives the simulation until all sources are done and all packets are
// delivered, or until maxTime is exceeded. It returns the completion time.
func (nw *Network) Run(maxTime int64) (int64, error) {
	for n := 0; n < nw.P; n++ {
		nw.maybeRunCPU(int32(n))
	}
	for nw.evq.len() > 0 {
		e := nw.evq.pop()
		if e.t < nw.now {
			return 0, fmt.Errorf("network: time went backwards (%d < %d)", e.t, nw.now)
		}
		nw.now = e.t
		if nw.now > maxTime {
			return 0, fmt.Errorf("network: exceeded max time %d (in flight %d, active sources %d)",
				maxTime, nw.inFlight, nw.activeSrc)
		}
		kind := e.kind()
		node := e.node()
		nw.stats.EventsByKind[kind]++
		switch kind {
		case evArrive:
			nw.arrive(node, e.arg())
		case evService:
			r := &nw.routers[node]
			mask := uint8(e.arg())
			if r.svcPending && r.svcAt <= e.t {
				mask |= r.svcMask
				r.svcPending = false
				r.svcMask = 0
			}
			if mask != 0 {
				nw.service(node, mask)
			}
		case evCPUKick:
			nw.cpuDoneOrKick(node)
		}
	}
	if nw.inFlight != 0 || nw.activeSrc != 0 {
		return 0, fmt.Errorf("network: stalled at t=%d with %d packets in flight, %d active sources (deadlock?)",
			nw.now, nw.inFlight, nw.activeSrc)
	}
	nw.stats.flushWindows(nw.Par.UtilSampleWindow, nw.linkCount)
	return nw.stats.FinishTime, nil
}

func (nw *Network) arrive(node, pid int32) {
	p := &nw.pkts[pid]
	r := &nw.routers[node]
	qIdx := int(p.inDir)*NumVC + int(p.vc)
	q := &r.in[p.inDir][p.vc]
	q.push(pid, vcCost(p.vc, p.size))
	r.occMask |= 1 << qIdx
	// A push frees no resources, so the only new candidate move is the
	// arrived packet itself; a targeted attempt on this queue suffices.
	if q.count <= nw.window(p.vc) {
		freeMask := nw.freeOutputs(r)
		nw.tryQueue(node, r, q, qIdx, nw.window(p.vc), &freeMask, maskAll)
	}
}

// Service wake masks: one bit per output direction, plus a bit meaning
// "reception FIFO drained".
const (
	maskRecv uint8 = 1 << 6
	maskAll  uint8 = 0x7f
)

// window returns the arbitration lookahead for a VC index (-1 = injection
// FIFO).
func (nw *Network) window(vc int8) int32 {
	if vc == VCDyn0 || vc == VCDyn1 {
		return nw.Par.VCLookahead
	}
	return 1
}

func (nw *Network) freeOutputs(r *router) uint8 {
	var m uint8
	now := nw.now
	for d := 0; d < numDirs; d++ {
		if r.nbr[d] >= 0 && r.out[d] <= now {
			m |= 1 << d
		}
	}
	return m
}

// tryQueue attempts to move packets from the first `win` entries of q.
// Returns true if at least one packet moved. freeMask is updated as links
// are claimed. Only packets whose desires intersect mask are considered;
// once a packet is popped, the mask widens for the rest of this queue (the
// pop is itself the wakeup for the packets behind it).
func (nw *Network) tryQueue(node int32, r *router, q *pktQueue, qIdx int, win int32, freeMask *uint8, mask uint8) bool {
	moved := false
	for i := int32(0); i < q.count && i < win; {
		pid := q.at(i)
		p := &nw.pkts[pid]
		if p.dst == node {
			if !r.recv.fits(p.size) {
				i++
				continue
			}
			inDir, vc := p.inDir, p.vc
			cost := p.size
			if inDir >= 0 {
				cost = vcCost(vc, p.size)
			}
			q.removeAt(i, cost)
			if inDir >= 0 {
				nw.creditUpstream(node, inDir, vc, cost)
			} else {
				nw.maybeRunCPU(node)
			}
			r.recv.push(pid, p.size)
			nw.maybeRunCPU(node)
			moved = true
			mask = maskAll
			continue // entry i replaced by the next packet
		}
		if p.want&mask == 0 {
			i++
			continue
		}
		if p.want&*freeMask == 0 {
			nw.noteBlocked(node, p)
			i++
			continue
		}
		inDir, vc := p.inDir, p.vc
		cost := p.size
		if inDir >= 0 {
			cost = vcCost(vc, p.size)
		}
		if granted := nw.tryRoute(node, r, pid, p, *freeMask); granted >= 0 {
			*freeMask &^= 1 << granted
			q.removeAt(i, cost)
			if inDir >= 0 {
				nw.creditUpstream(node, inDir, vc, cost)
			} else {
				nw.maybeRunCPU(node)
			}
			moved = true
			mask = maskAll
			continue
		}
		nw.noteBlocked(node, p)
		i++
	}
	if q.count == 0 {
		r.occMask &^= 1 << qIdx
	}
	return moved
}

// noteBlocked starts the escape-eligibility clock for a packet that failed
// arbitration, and guarantees a retry once the clock expires.
func (nw *Network) noteBlocked(node int32, p *packet) {
	if p.blocked == 0 {
		p.blocked = nw.now
	}
	// Re-arm the escape-maturity wakeup on every failed pass: a coalesced
	// earlier wakeup will land here again and reschedule, so the chain
	// always reaches the maturity time even when individual events are
	// dropped by coalescing.
	if mature := p.blocked + nw.Par.EscapeDelay; mature > nw.now {
		nw.scheduleService(node, mature, p.want)
	}
}

// scheduleService enqueues a coalesced arbitration pass for node at time t,
// for the wake reasons in mask. Token visibility is immediate (only the
// wakeup is delayed), so merging a later nudge into an earlier pending one
// is safe. Deadline wakeups that an earlier pass cannot discover (a link's
// busyUntil, escape maturity) are pushed with their mask in the event.
func (nw *Network) scheduleService(node int32, t int64, mask uint8) {
	r := &nw.routers[node]
	if r.svcPending && r.svcAt <= t {
		r.svcMask |= mask
		return
	}
	r.svcPending = true
	r.svcAt = t
	r.svcMask |= mask
	nw.evq.push(mkEvent(t, node, 0, evService))
}

// service runs router arbitration at a node until no packet can move,
// considering packets whose desires intersect mask.
func (nw *Network) service(node int32, mask uint8) {
	r := &nw.routers[node]
	nQ := numDirs*NumVC + len(r.inj)
	for {
		freeMask := nw.freeOutputs(r)
		if freeMask&mask == 0 && mask&maskRecv == 0 {
			return
		}
		progress := false
		r.rrCursor++
		rot := int(r.rrCursor) % nQ
		// Visit only non-empty queues, starting the rotation at rot for
		// fairness: bits >= rot first, then the wrap-around remainder.
		occ := r.occMask
		high := occ & (^uint32(0) << rot)
		for _, part := range [2]uint32{high, occ &^ (^uint32(0) << rot)} {
			for part != 0 {
				idx := bits.TrailingZeros32(part)
				part &^= 1 << idx
				var q *pktQueue
				var win int32 = 1
				if idx < numDirs*NumVC {
					vc := idx % NumVC
					q = &r.in[idx/NumVC][vc]
					if vc != VCBubble {
						win = nw.Par.VCLookahead
					}
				} else {
					q = &r.inj[idx-numDirs*NumVC]
				}
				if q.count == 0 {
					continue
				}
				if nw.tryQueue(node, r, q, idx, win, &freeMask, mask) {
					progress = true
				}
			}
		}
		if !progress {
			return
		}
		mask = maskAll // any move may have enabled further moves
	}
}

// creditUpstream returns the token for the input VC slot that a departing
// packet occupied at node (cost = vcCost of the packet), and wakes the
// upstream router. inDir is the direction of the input port, i.e. the
// direction from this node toward the upstream sender.
func (nw *Network) creditUpstream(node int32, inDir, vc int8, cost int32) {
	r := &nw.routers[node]
	up := r.nbr[int(inDir)]
	if up < 0 {
		panic("network: credit for nonexistent upstream link")
	}
	ur := &nw.routers[up]
	ur.tok[oppositeDir(int(inDir))][vc] += cost
	nw.scheduleService(up, nw.now+nw.Par.CreditDelay, 1<<oppositeDir(int(inDir)))
}

// tryRoute attempts to start pid on an output link of node whose bit is set
// in freeMask. On success the packet is committed to the wire (arrival
// event scheduled) and the granted direction is returned; the caller pops
// it from its queue. Returns -1 on failure.
func (nw *Network) tryRoute(node int32, r *router, pid int32, p *packet, freeMask uint8) int {
	// Adaptive candidates on the dynamic VCs (JSQ on tokens). A grant only
	// requires one flit-credit (32 bytes) free: with virtual cut-through
	// and flit-granular flow control a packet may stream into a buffer
	// that is draining concurrently, so occupancy can overshoot by up to
	// one packet (the overshoot models stalled bytes held on the upstream
	// wire). Tokens go negative to bound the overshoot.
	// Candidate outputs on the dynamic VCs. Adaptive packets may take any
	// profitable direction (JSQ across the dynamic VCs); deterministic
	// packets are restricted to strict dimension order (first unfinished
	// dimension only) but still use the dynamic channels - a packet-atomic
	// simulation of the pure bubble-VC deterministic mode degenerates into
	// slot-conveyor throughput that flit-level hardware does not exhibit.
	bestDir, bestVC, bestTok := -1, -1, int32(-1<<30)
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		h := p.hops[d]
		if h == 0 {
			continue
		}
		o := dirOf(d, int(h))
		if freeMask&(1<<o) != 0 {
			// Packets continuing along the same dimension stream on a
			// single flit-credit; packets entering a dimension (turns and
			// injections) need InjectTokens free. Giving dimension-
			// continuing traffic priority keeps free slack circulating
			// along each dimension chain instead of being swallowed by
			// entrants, which would collapse saturated chains into a
			// one-hole conveyor.
			need := int32(PacketGranule)
			if (p.inDir < 0 || dimOfDir(int(p.inDir)) != d) && nw.Par.InjectTokens > need {
				need = nw.Par.InjectTokens
			}
			for vc := 0; vc < 2; vc++ {
				if t := r.tok[o][vc]; t >= need && t > bestTok {
					bestDir, bestVC, bestTok = o, vc, t
				}
			}
		}
		if p.det {
			break // dimension order: only the first unfinished dimension
		}
	}
	if bestDir < 0 {
		// Bubble escape: a last resort for packets that have been blocked
		// here longer than EscapeDelay.
		if p.blocked == 0 || nw.now-p.blocked < nw.Par.EscapeDelay {
			return -1
		}
		// Strict dimension order (X, then Y, then Z).
		var o = -1
		for d := torus.Dim(0); d < torus.NumDims; d++ {
			if p.hops[d] != 0 {
				o = dirOf(d, int(p.hops[d]))
				break
			}
		}
		if o < 0 || freeMask&(1<<o) == 0 {
			return -1
		}
		// The bubble rule, slot-quantized: a packet continuing around the
		// same ring needs one free slot; a packet joining the ring (from an
		// injection FIFO, a dynamic VC, or another dimension) must leave a
		// free full-packet bubble, i.e. needs two.
		need := int32(MaxPacketBytes)
		joining := p.vc != VCBubble || p.inDir < 0 || dimOfDir(int(p.inDir)) != dimOfDir(o)
		if joining {
			need += MaxPacketBytes
		}
		if r.tok[o][VCBubble] < need {
			return -1
		}
		bestDir, bestVC = o, VCBubble
	}

	o, vc := bestDir, bestVC
	r.tok[o][vc] -= vcCost(int8(vc), p.size)
	r.out[o] = nw.now + int64(p.size)
	nw.stats.LinkBusy[int(node)*numDirs+o] += int64(p.size)
	nw.stats.GrantsByVC[vc]++
	if w := nw.Par.UtilSampleWindow; w > 0 {
		nw.stats.noteWindowBusy(nw.now, w, nw.linkCount, p.size)
	}
	if nw.traceLog != nil && node == nw.traceNode && o == nw.traceDir {
		*nw.traceLog = append(*nw.traceLog, GrantEvent{T: nw.now, Size: p.size, VC: int8(vc), Src: p.src, Dst: p.dst})
	}
	d := dimOfDir(o)
	if p.hops[d] > 0 {
		p.hops[d]--
	} else {
		p.hops[d]++
	}
	p.vc = int8(vc)
	p.inDir = int8(oppositeDir(o))
	p.blocked = 0
	p.want = wantMask(p.hops, p.det)
	// Virtual cut-through: a transit packet is eligible for its next hop as
	// soon as its 32-byte header chunk lands; only at its final hop (where
	// it is consumed) must the tail arrive first. The outgoing link can
	// start re-serializing immediately because all links run at the same
	// rate, so bytes arrive exactly as they are needed.
	eta := nw.now + int64(p.size) + nw.Par.RouterDelay
	if p.want != 0 && !nw.Par.StoreForward {
		eta = nw.now + PacketGranule + nw.Par.RouterDelay
	}
	nw.evq.push(mkEvent(eta, r.nbr[o], pid, evArrive))
	// The link-free wakeup is a hard deadline: an earlier coalesced pass
	// would find the link still busy and discover nothing, so push it
	// unconditionally with its direction bit.
	nw.evq.push(mkEvent(r.out[o], node, 1<<o, evService))
	return o
}

// maybeRunCPU starts a CPU operation at node if the CPU is idle and work is
// available. Reception and injection (software forwards, then fresh source
// packets) are serviced in alternation - a strict receive-first policy
// would starve the forwarding half of indirect strategies and serialize
// their phases - except that a half-full reception FIFO always takes
// priority so the network keeps draining.
func (nw *Network) maybeRunCPU(node int32) {
	r := &nw.routers[node]
	if r.cpuBusy {
		return
	}
	preferRecv := !r.cpuToggle || 2*r.recv.bytes >= nw.Par.RecvFIFOBytes
	if preferRecv && nw.tryRecvOp(node, r) {
		return
	}
	if nw.tryInjectOp(node, r) {
		return
	}
	if !preferRecv {
		nw.tryRecvOp(node, r)
	}
}

// tryRecvOp starts a reception CPU operation if one is pending.
func (nw *Network) tryRecvOp(node int32, r *router) bool {
	if r.recv.empty() {
		return false
	}
	pid := r.recv.peek()
	p := &nw.pkts[pid]
	r.recv.pop(p.size)
	fw, extra, final := nw.handler.OnDeliver(Delivered{
		Node: node, Src: p.src, Aux: p.aux, Size: p.size,
		Payload: p.payload, Enq: p.enq, Kind: p.kind,
	}, r.curFw[:0])
	r.curFw = fw
	r.curOp = opRecv
	r.curPkt = pid
	r.curFinal = final
	nw.startCPUOp(node, r, nw.Par.CPUCost(p.size)+extra)
	// Reception FIFO space freed: blocked VC heads may now sink.
	nw.scheduleService(node, nw.now, maskRecv)
	return true
}

// tryInjectOp starts an injection CPU operation: a pending software forward
// first, else the next packet from the source.
func (nw *Network) tryInjectOp(node int32, r *router) bool {
	if len(r.pendingFw) > 0 {
		spec := r.pendingFw[0]
		fifo := int(spec.Class) % len(r.inj)
		if !r.inj[fifo].fits(spec.Size) {
			// The CPU waits for this FIFO; it is re-kicked when the FIFO
			// drains (see tryQueue). Fresh injections stay queued behind
			// the forward, preserving ordering.
			return false
		}
		copy(r.pendingFw, r.pendingFw[1:])
		r.pendingFw = r.pendingFw[:len(r.pendingFw)-1]
		r.curOp = opInject
		r.curSpec = spec
		nw.startCPUOp(node, r, nw.Par.CPUCost(spec.Size)+spec.ExtraCPU)
		return true
	}
	if r.srcDone {
		return false
	}
	if !r.pendValid {
		spec, status, when := nw.sources[node].Next(nw.now)
		switch status {
		case SrcDone:
			r.srcDone = true
			nw.activeSrc--
			return false
		case SrcWait:
			nw.evq.push(mkEvent(when, node, 0, evCPUKick))
			return false
		case SrcReady:
			r.pendSrc = spec
			r.pendValid = true
		}
	}
	spec := r.pendSrc
	fifo := int(spec.Class) % len(r.inj)
	if !r.inj[fifo].fits(spec.Size) {
		return false // re-kicked when the FIFO drains
	}
	r.pendValid = false
	r.curOp = opInject
	r.curSpec = spec
	nw.startCPUOp(node, r, nw.Par.CPUCost(spec.Size)+spec.ExtraCPU)
	return true
}

func (nw *Network) startCPUOp(node int32, r *router, cost int64) {
	if cost < 1 {
		cost = 1
	}
	r.cpuBusy = true
	r.cpuToggle = !r.cpuToggle
	r.cpuEnd = nw.now + cost
	nw.stats.CPUBusy[node] += cost
	nw.evq.push(mkEvent(r.cpuEnd, node, 0, evCPUKick))
}

// cpuDoneOrKick completes the current CPU operation (if one is running and
// due) and then tries to start the next one.
func (nw *Network) cpuDoneOrKick(node int32) {
	r := &nw.routers[node]
	if r.cpuBusy {
		if nw.now < r.cpuEnd {
			// A stale wait-kick (e.g. a throttle expiry scheduled before the
			// current op started); the op's own completion kick will follow.
			return
		}
		nw.finishCPUOp(node, r)
	}
	nw.maybeRunCPU(node)
}

func (nw *Network) finishCPUOp(node int32, r *router) {
	switch r.curOp {
	case opRecv:
		pid := r.curPkt
		p := &nw.pkts[pid]
		nw.stats.noteDelivery(nw.now, p, r.curFinal)
		nw.inFlight--
		nw.freePacket(pid)
		if len(r.curFw) > 0 {
			r.pendingFw = append(r.pendingFw, r.curFw...)
			r.curFw = r.curFw[:0]
			if len(r.pendingFw) > nw.stats.MaxPendingFw {
				nw.stats.MaxPendingFw = len(r.pendingFw)
			}
		}
	case opInject:
		spec := r.curSpec
		pid := nw.allocPkt()
		p := &nw.pkts[pid]
		*p = packet{
			dst: spec.Dst, src: node, size: spec.Size, payload: spec.Payload,
			aux: spec.Aux, enq: nw.now, hops: nw.routeHops(node, spec.Dst),
			vc: -1, inDir: -1, det: spec.Det, kind: spec.Kind,
		}
		p.want = wantMask(p.hops, p.det)
		if spec.Dst == node {
			panic("network: self-addressed packet")
		}
		nw.inFlight++
		nw.stats.PacketsInjected++
		nw.stats.WireBytesInjected += int64(spec.Size)
		nw.stats.LastInject = nw.now
		fifo := int(spec.Class) % len(r.inj)
		q := &r.inj[fifo]
		q.push(pid, spec.Size)
		r.occMask |= 1 << (numDirs*NumVC + fifo)
		// Only the freshly injected packet is a new candidate; a targeted
		// attempt on its FIFO suffices (it only helps if it reached the
		// FIFO head).
		if q.count == 1 {
			freeMask := nw.freeOutputs(r)
			nw.tryQueue(node, r, q, numDirs*NumVC+fifo, 1, &freeMask, maskAll)
		}
	}
	r.cpuBusy = false
	r.curOp = opNone
}
