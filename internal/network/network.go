package network

import (
	"errors"
	"fmt"

	"alltoall/internal/parallel"
	"alltoall/internal/torus"
)

// ErrCanceled is wrapped by the error a run aborted through SetCancel
// returns; test with errors.Is.
var ErrCanceled = errors.New("network: run canceled")

// ErrMaxTime is wrapped by the error a run returns when simulated time
// exceeds the caller's MaxTime bound before the workload completes (a stall,
// a collapsed configuration, or simply too small a bound); test with
// errors.Is. Both the serial and the sharded engine return it through the
// same chokepoint.
var ErrMaxTime = errors.New("network: exceeded max time")

// Directions: 2*dim + 0 is the + direction, 2*dim + 1 is the - direction.
const numDirs = 6

func dirOf(dim torus.Dim, sign int) int {
	if sign > 0 {
		return 2 * int(dim)
	}
	return 2*int(dim) + 1
}

func dimOfDir(dir int) torus.Dim { return torus.Dim(dir / 2) }

func signOfDir(dir int) int {
	if dir%2 == 0 {
		return 1
	}
	return -1
}

func oppositeDir(dir int) int { return dir ^ 1 }

// vcCost returns the buffer/token cost of a packet on a virtual channel.
// Dynamic VCs use byte accounting with flit-credit streaming (grants may
// overshoot, modelling cut-through into a draining buffer). The bubble
// escape VC accounts whole max-packet slots with no overshoot: Puente's
// bubble invariant (one free packet slot always remains on each ring) needs
// local free space to lower-bound ring free space, which overshoot or
// sub-packet fragmentation would break and deadlock the escape path.
func vcCost(vc int8, size int32) int32 {
	if vc == VCBubble {
		return MaxPacketBytes
	}
	return size
}

// PacketSpec describes a packet to inject.
type PacketSpec struct {
	Dst      int32 // destination rank
	Size     int32 // wire bytes, MinPacketBytes..MaxPacketBytes
	Payload  int32 // application payload bytes carried (bookkeeping only)
	Aux      int32 // strategy cookie (e.g. final destination for TPS phase 1)
	ExtraCPU int64 // additional CPU time to charge on injection (alpha, copies)
	Det      bool  // deterministic dimension-ordered routing (no adaptivity)
	Class    int8  // injection FIFO class; mapped onto FIFOs modulo Params.InjFIFOs
	Kind     uint8 // strategy-defined packet kind
}

// SrcStatus is the result of polling a Source.
type SrcStatus uint8

const (
	// SrcReady means the returned spec should be injected now.
	SrcReady SrcStatus = iota
	// SrcWait means nothing to inject until the returned time (throttling).
	SrcWait
	// SrcDone means the source has no further packets, ever.
	SrcDone
)

// Source produces the injection schedule for one node. The network polls it
// whenever the node's CPU is free and the relevant injection FIFO has room.
//
// Sharded runs poll each node's source from the worker that owns the node,
// so a Source must only touch state private to its node (per-node value
// copies are fine; a structure shared across nodes is not, unless it is
// immutable after construction).
type Source interface {
	Next(now int64) (PacketSpec, SrcStatus, int64)
}

// Delivered describes a packet handed to the CPU at its destination.
type Delivered struct {
	Node    int32 // node at which the packet was received
	Src     int32 // original injecting node
	Aux     int32
	Size    int32
	Payload int32
	Enq     int64 // injection timestamp
	Kind    uint8
}

// Handler observes deliveries and implements software forwarding: the
// specs appended to fw are re-injected from the receiving node (charging the
// CPU for each). extraCPU is added to the CPU receive cost (e.g. the VMesh
// sort/copy gamma term). final marks packets that complete the collective
// (they count toward FinishTime).
//
// OnDeliver for node n runs on the worker that owns n in a sharded run, so
// handler state must be partitioned by node (e.g. per-node slices indexed by
// d.Node); cross-node shared counters would race.
type Handler interface {
	OnDeliver(d Delivered, fw []PacketSpec) (fwOut []PacketSpec, extraCPU int64, final bool)
}

// packet is the in-flight representation. Slots are pooled per engine.
type packet struct {
	dst     int32
	src     int32
	size    int32
	payload int32
	aux     int32
	enq     int64
	blocked int64 // time this packet first failed arbitration here (0 = never)
	hops    [3]int8
	vc      int8  // VC occupied at the current node's input; -1 if in an injection FIFO
	inDir   int8  // input direction at the current node; -1 if in an injection FIFO
	want    uint8 // bitmask of output directions this packet can use next
	det     bool
	kind    uint8
}

// wantMask computes the output directions a packet can take given its
// remaining hops: every profitable direction for adaptive packets, only the
// first dimension-order direction for deterministic ones.
func wantMask(hops [3]int8, det bool) uint8 {
	var m uint8
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		if h := hops[d]; h != 0 {
			m |= 1 << dirOf(d, int(h))
			if det {
				break
			}
		}
	}
	return m
}

type cpuOp uint8

const (
	opNone cpuOp = iota
	opRecv
	opInject
)

type router struct {
	in   [numDirs][NumVC]pktQueue
	inj  []pktQueue
	recv pktQueue

	pendingFw []PacketSpec // software forwards awaiting CPU injection
	pendSrc   PacketSpec   // one-slot buffer for a polled-but-unplaced source spec
	pendValid bool

	cpuBusy   bool
	cpuEnd    int64
	cpuToggle bool // alternate reception and injection service fairly
	curOp     cpuOp
	curPkt    int32
	curSpec   PacketSpec
	curFw     []PacketSpec
	curFinal  bool

	srcDone  bool
	rrCursor uint32
}

// Hot per-node router state lives outside the router struct in flat
// structure-of-arrays layout: the arbitration loop touches the output busy
// times, credit counters, neighbour table, and occupancy mask on every
// event, and packing each field contiguously by node keeps those accesses
// on a handful of cache lines instead of striding through ~200-byte router
// structs. The arrays are indexed with linkIdx/tokIdx and are naturally
// shard-partitioned: engines own contiguous rank slabs, so two shards only
// ever share the cache line straddling a slab boundary (the same discipline
// as Stats.LinkBusy).

// linkIdx indexes per-(node, direction) arrays (outBusy, nbrs).
func linkIdx(node int32, d int) int { return int(node)*numDirs + d }

// tokIdx indexes the per-(node, direction, VC) credit array.
func tokIdx(node int32, d, vc int) int { return (int(node)*numDirs+d)*NumVC + vc }

// Network is a simulated torus machine. Event processing lives in engine;
// the serial path runs one engine owning every node, RunSharded partitions
// the nodes across several (see shard.go).
type Network struct {
	Shape torus.Shape
	P     int
	Par   Params

	routers []router
	coords  []torus.Coord

	// SoA router state (see the comment above linkIdx).
	outBusy []int64  // [linkIdx] output-link busy-until time
	tok     []int32  // [tokIdx] credits for the neighbour's input VC via this output
	nbrs    []int32  // [linkIdx] neighbour rank per output direction, -1 at mesh edges
	occ     []uint32 // [node] bit per non-empty queue (18 input VCs, then injection FIFOs)
	svcAt   []int64  // [node] time of the pending coalesced service pass, if any
	svcMask []uint8  // [node] wake-reason bits of that pass; bit 7 (svcPendBit) = pending

	// Credit/arrival accumulator slots (see coalesce.go): tick (0 = empty),
	// inline arg count, and sorted args (flat, stride coalArgsCap) per
	// [node*coalWays+way], plus a per-node armed-credit-batch counter that
	// lets the grant path skip the slot tables entirely. Node-partitioned
	// like the arrays above, so each sharded engine touches only its own
	// slots; flat inline storage keeps the accumulators off the heap so
	// they do not evict the router rings.
	credAt   []int64
	arrAt    []int64
	credCnt  []uint8
	arrCnt   []uint8
	credArgs []int32
	arrArgs  []int32
	credPend []uint8

	// lazyCred[node] holds elided no-op credits awaiting maturity (tokens
	// whose wakeup was provably useless; see coalesce.go). Node-partitioned.
	lazyCred [][]lazyCredit

	// Fault-injection state (see fault.go): the canonical (sorted, validated)
	// schedule derived from Par.Faults, per-event revival times, and the
	// node-partitioned link SoA the engines mutate as transitions apply. The
	// arrays are nil until a schedule is first installed; a healthy network
	// never allocates or touches them.
	fsched    []FaultEvent
	frevive   []int64
	deadMask  []uint8
	killMask  []uint8
	stretch   []int32
	downSince []int64
	reviveAt  []int64

	sources   []Source
	handler   Handler
	activeSrc int // nodes with a non-nil source (static per Reset)

	traceNode int32
	traceDir  int
	traceLog  *[]GrantEvent

	observer Observer        // instrumentation taps (see observer.go); nil = off
	cancel   <-chan struct{} // run abort signal (see SetCancel); nil = never

	linkCount int
	stats     Stats

	eng     engine   // serial engine, owns [0, P)
	shards  []engine // sharded engines; built on first RunSharded, recycled after
	shardOf []int16  // node -> owning shard, valid when len(shards) > 0
	barrier *parallel.Barrier
	sharded bool // whether the last run used the sharded engines

	// Async conservative engine state (shard_async.go): the shared
	// coordination block, the structural shard-graph distance matrix
	// (rebuilt with the shards), and the last successful run's
	// synchronization counters.
	async     asyncState
	shardDist []int32 // [src*s+dst] boundary hop distance, -1 unreachable
	syncStats SyncStats
}

// New builds a network for the given shape with per-node sources and a
// delivery handler. sources may contain nil entries (nodes that inject
// nothing). handler must not be nil.
func New(shape torus.Shape, par Params, sources []Source, handler Handler) (*Network, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, fmt.Errorf("network: nil handler")
	}
	p := shape.P()
	if sources != nil && len(sources) != p {
		return nil, fmt.Errorf("network: %d sources for %d nodes", len(sources), p)
	}
	if err := par.validate(); err != nil {
		return nil, err
	}
	nw := &Network{
		Shape:   shape,
		P:       p,
		Par:     par,
		routers: make([]router, p),
		coords:  make([]torus.Coord, p),
		sources: sources,
		handler: handler,
	}
	nw.stats.LinkBusy = make([]int64, p*numDirs)
	nw.stats.CPUBusy = make([]int64, p)
	nw.outBusy = make([]int64, p*numDirs)
	nw.tok = make([]int32, p*numDirs*NumVC)
	nw.nbrs = make([]int32, p*numDirs)
	nw.occ = make([]uint32, p)
	nw.svcAt = make([]int64, p)
	nw.svcMask = make([]uint8, p)
	nw.credAt = make([]int64, p*coalWays)
	nw.arrAt = make([]int64, p*coalWays)
	nw.credCnt = make([]uint8, p*coalWays)
	nw.arrCnt = make([]uint8, p*coalWays)
	nw.credArgs = make([]int32, p*coalWays*coalArgsCap)
	nw.arrArgs = make([]int32, p*coalWays*coalArgsCap)
	nw.credPend = make([]uint8, p)
	nw.lazyCred = make([][]lazyCredit, p)
	nw.linkCount = shape.LinkCount()
	for n := 0; n < p; n++ {
		nw.coords[n] = shape.Coords(n)
	}
	// Pass 1: resolve the neighbour table and count live links, so every
	// ring of the machine can be carved from one contiguous arena in node
	// order (see newPktQueueIn).
	links := 0
	for n := 0; n < p; n++ {
		for d := 0; d < numDirs; d++ {
			nc, ok := shape.Neighbor(nw.coords[n], dimOfDir(d), signOfDir(d))
			if !ok {
				nw.nbrs[linkIdx(int32(n), d)] = -1
				continue
			}
			nw.nbrs[linkIdx(int32(n), d)] = int32(shape.Rank(nc))
			links++
		}
	}
	// Every VC can overshoot capacity by one max packet (flit-credit
	// streaming grants); size those queues for it.
	vcCap := par.VCBytes + MaxPacketBytes
	slots := int(pktSlots(vcCap))*links*NumVC +
		p*(int(pktSlots(par.InjFIFOBytes))*par.InjFIFOs+int(pktSlots(par.RecvFIFOBytes)))
	arena := make([]pktRef, slots)
	idArena := make([]int32, slots)
	for n := 0; n < p; n++ {
		r := &nw.routers[n]
		for d := 0; d < numDirs; d++ {
			if nw.nbrs[linkIdx(int32(n), d)] < 0 {
				continue
			}
			for vc := 0; vc < NumVC; vc++ {
				r.in[d][vc], arena, idArena = newPktQueueIn(arena, idArena, vcCap)
				nw.tok[tokIdx(int32(n), d, vc)] = par.VCBytes
			}
		}
		r.inj = make([]pktQueue, par.InjFIFOs)
		for i := range r.inj {
			r.inj[i], arena, idArena = newPktQueueIn(arena, idArena, par.InjFIFOBytes)
		}
		r.recv, arena, idArena = newPktQueueIn(arena, idArena, par.RecvFIFOBytes)
		if sources != nil && sources[n] != nil {
			nw.activeSrc++
		} else {
			r.srcDone = true
		}
	}
	// Fault validation needs the resolved neighbour table (a schedule may
	// only name links that exist), so it runs after pass 1.
	if err := nw.deriveFaults(); err != nil {
		return nil, err
	}
	nw.eng.init(nw, 0, 0, int32(p), &nw.stats)
	return nw, nil
}

// Reset returns the network to its initial state for a fresh run on the same
// shape and parameters, reusing the router, queue, packet-pool, and event-
// heap allocations of the previous run (including any sharded engines built
// by RunSharded). Sweeps that revisit one shape at many message sizes avoid
// rebuilding the whole machine at every point. sources and handler follow
// the same rules as New.
func (nw *Network) Reset(sources []Source, handler Handler) error {
	if handler == nil {
		return fmt.Errorf("network: nil handler")
	}
	if sources != nil && len(sources) != nw.P {
		return fmt.Errorf("network: %d sources for %d nodes", len(sources), nw.P)
	}
	nw.sources = sources
	nw.handler = handler
	nw.activeSrc = 0
	// Grant tracing is per-run diagnostics: a recycled network must not
	// keep appending to the previous run's trace.
	nw.traceLog = nil
	nw.eng.resetRunState()
	for i := range nw.shards {
		nw.shards[i].resetRunState()
	}
	nw.sharded = false
	nw.stats.reset()
	nw.resetFaultState()
	for n := 0; n < nw.P; n++ {
		r := &nw.routers[n]
		for d := 0; d < numDirs; d++ {
			nw.outBusy[linkIdx(int32(n), d)] = 0
			if nw.nbrs[linkIdx(int32(n), d)] < 0 {
				continue
			}
			for vc := 0; vc < NumVC; vc++ {
				r.in[d][vc].reset()
				nw.tok[tokIdx(int32(n), d, vc)] = nw.Par.VCBytes
			}
		}
		for i := range r.inj {
			r.inj[i].reset()
		}
		r.recv.reset()
		r.pendingFw = r.pendingFw[:0]
		r.pendSrc = PacketSpec{}
		r.pendValid = false
		r.cpuBusy = false
		r.cpuEnd = 0
		r.cpuToggle = false
		r.curOp = opNone
		r.curPkt = 0
		r.curSpec = PacketSpec{}
		r.curFw = r.curFw[:0]
		r.curFinal = false
		nw.svcAt[n] = 0
		nw.svcMask[n] = 0
		nw.occ[n] = 0
		for w := 0; w < coalWays; w++ {
			nw.credAt[n*coalWays+w] = 0
			nw.arrAt[n*coalWays+w] = 0
			nw.credCnt[n*coalWays+w] = 0
			nw.arrCnt[n*coalWays+w] = 0
		}
		nw.credPend[n] = 0
		nw.lazyCred[n] = nw.lazyCred[n][:0]
		r.rrCursor = 0
		if sources != nil && sources[n] != nil {
			r.srcDone = false
			nw.activeSrc++
		} else {
			r.srcDone = true
		}
	}
	return nil
}

// ResetParams is Reset for sweeps that also vary the runtime parameters: it
// installs par on the recycled network and re-derives everything the engines
// cache from it - the bounded-horizon calendar ring (whose span depends on
// CreditDelay/RouterDelay/EscapeDelay, see calendarHorizon), the coalescing
// gate and side tables, the event-queue structure choice, and the per-VC
// token refill. Only parameters with the same buffer structure can recycle
// (Params.SameStructure); anything else needs New. Results are byte-identical
// to a freshly built network (the cross-params regression tests in
// reset_test.go and collective/cache_test.go hold it to that).
func (nw *Network) ResetParams(par Params, sources []Source, handler Handler) error {
	if err := par.validate(); err != nil {
		return err
	}
	if !nw.Par.SameStructure(par) {
		return fmt.Errorf("network: ResetParams with different buffer structure (have VCBytes=%d InjFIFOs=%d InjFIFOBytes=%d RecvFIFOBytes=%d); build a new network",
			nw.Par.VCBytes, nw.Par.InjFIFOs, nw.Par.InjFIFOBytes, nw.Par.RecvFIFOBytes)
	}
	nw.Par = par
	if err := nw.deriveFaults(); err != nil {
		return err
	}
	nw.eng.setParams(par)
	for i := range nw.shards {
		nw.shards[i].setParams(par)
	}
	return nw.Reset(sources, handler)
}

// Now returns the current simulation time (the furthest shard's clock in a
// sharded run).
func (nw *Network) Now() int64 {
	if !nw.sharded {
		return nw.eng.now
	}
	var t int64
	for i := range nw.shards {
		if nw.shards[i].now > t {
			t = nw.shards[i].now
		}
	}
	return t
}

// Stats returns a snapshot of the collected statistics. The snapshot is the
// caller's to keep: it does not alias live engine state, so it stays valid
// (and harmless to mutate) across a later Reset or run on the same network.
func (nw *Network) Stats() *Stats { return nw.stats.clone() }

// SetCancel installs an abort signal for subsequent runs: when ch becomes
// readable the run stops at the next cancellation point - every window
// barrier on the sharded engine, every few thousand events on the serial one
// - and returns an error wrapping ErrCanceled. nil removes the signal. The
// signal persists across Reset; it is the caller's per-run (or per-sweep)
// responsibility to install a fresh one.
func (nw *Network) SetCancel(ch <-chan struct{}) { nw.cancel = ch }

// engineFor returns the engine owning a node's packets in the most recent
// (or ongoing) run.
func (nw *Network) engineFor(node int32) *engine {
	if nw.sharded {
		return &nw.shards[nw.shardOf[node]]
	}
	return &nw.eng
}

// routeHops computes the signed per-dimension hop vector for a packet from
// src to dst. Exact half-ring ties on even torus dimensions are split by
// (src+dst) parity so that the all-to-all load is balanced across both
// directions.
func (nw *Network) routeHops(src, dst int32) [3]int8 {
	a, b := nw.coords[src], nw.coords[dst]
	var h [3]int8
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		delta := nw.Shape.Delta(d, a[d], b[d])
		k := nw.Shape.Size[d]
		if nw.Shape.Wrap[d] && k%2 == 0 && (delta == k/2 || delta == -k/2) {
			// Half-ring ties: split by source parity so the aggregate
			// all-to-all load lands evenly on both ring directions.
			if src%2 == 1 {
				delta = -k / 2
			} else {
				delta = k / 2
			}
		}
		h[d] = int8(delta)
	}
	return h
}

// Run drives the simulation until all sources are done and all packets are
// delivered, or until maxTime is exceeded. It returns the completion time.
func (nw *Network) Run(maxTime int64) (int64, error) {
	return nw.RunSharded(maxTime, 1)
}

// RunSharded is Run on the parallel engine: the torus is partitioned into
// shards contiguous node subdomains, each advanced by its own worker -
// asynchronously against published per-shard clocks by default
// (shard_async.go), or in lockstep barrier windows under the SyncBSP escape
// hatch (shard.go). Output - completion time, statistics, handler
// observations - is byte-identical to the serial engine at any shard count
// under either protocol. shards <= 1 (or a degenerate configuration where
// the safe window would be empty) selects the serial engine.
func (nw *Network) RunSharded(maxTime int64, shards int) (int64, error) {
	if shards > nw.P {
		shards = nw.P
	}
	if nw.observer != nil {
		nw.observer.BeginRun(nw.Shape, nw.Par)
	}
	if shards <= 1 || shardSafeWindow(nw.Par) <= 0 {
		return nw.runSerial(maxTime)
	}
	return nw.runSharded(maxTime, shards)
}

func (nw *Network) runSerial(maxTime int64) (int64, error) {
	nw.sharded = false
	e := &nw.eng
	e.obs = nil
	if nw.observer != nil {
		e.obs = nw.observer.Sink(0, 1, e.lo, e.hi)
	}
	e.cancel = nw.cancel
	e.activeSrc = nw.activeSrc
	e.armFaults(maxTime)
	for n := e.lo; n < e.hi; n++ {
		e.maybeRunCPU(n)
	}
	if err := e.processUntil(maxInt64, maxTime); err != nil {
		return 0, err
	}
	if e.inFlight != 0 || e.activeSrc != 0 {
		return 0, fmt.Errorf("network: stalled at t=%d with %d packets in flight, %d active sources (deadlock?)",
			e.now, e.inFlight, e.activeSrc)
	}
	e.forceFlushLazy()
	nw.closeFaultStats()
	if nw.Par.Check {
		if err := nw.checkQuiescence(); err != nil {
			return 0, err
		}
	}
	nw.stats.closeWindows()
	nw.stats.renderUtil(nw.Par.UtilSampleWindow, nw.linkCount)
	nw.syncStats = SyncStats{Mode: "serial", Shards: 1}
	if nw.observer != nil {
		nw.observer.EndRun(nw.stats.FinishTime)
	}
	return nw.stats.FinishTime, nil
}
