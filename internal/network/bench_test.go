package network

import (
	"fmt"
	"math/rand"
	"testing"

	"alltoall/internal/torus"
)

// BenchmarkSimulatorHops measures raw simulation throughput in packet-hops
// per second on a saturated 8x8x4 all-to-all-like workload.
func BenchmarkSimulatorHops(b *testing.B) {
	b.ReportAllocs()
	var totalHops int64
	for i := 0; i < b.N; i++ {
		shape := torus.New(8, 8, 4)
		p := shape.P()
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 256}
		}
		nw, err := New(shape, DefaultParams(), srcs, countOnly{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Run(1 << 42); err != nil {
			b.Fatal(err)
		}
		// Approximate hops: grants are one per link traversal.
		st := nw.Stats()
		totalHops += st.GrantsByVC[0] + st.GrantsByVC[1] + st.GrantsByVC[2]
	}
	b.ReportMetric(float64(totalHops)/b.Elapsed().Seconds(), "hops/s")
}

// BenchmarkNetworkRun measures end-to-end run throughput when the network
// is recycled with Reset between runs (the sweep engine's hot path): one
// allocation-free simulation per iteration.
func BenchmarkNetworkRun(b *testing.B) {
	benchNetworkRun(b, DefaultParams())
}

// BenchmarkNetworkRunChecked is the same workload with the runtime invariant
// checker on; the ratio to BenchmarkNetworkRun is the checker's cost
// (measured ~1.4x - every event re-audits the dispatched node's router).
func BenchmarkNetworkRunChecked(b *testing.B) {
	par := DefaultParams()
	par.Check = true
	benchNetworkRun(b, par)
}

func benchNetworkRun(b *testing.B, par Params) {
	b.ReportAllocs()
	shape := torus.New(8, 8, 4)
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 256}
		}
		return srcs
	}
	nw, err := New(shape, par, mkSrcs(), countOnly{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := nw.Run(1 << 42); err != nil {
		b.Fatal(err)
	}
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.Reset(mkSrcs(), countOnly{}); err != nil {
			b.Fatal(err)
		}
		if _, err := nw.Run(1 << 42); err != nil {
			b.Fatal(err)
		}
		events += nw.Stats().Events()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkNetworkRunSharded measures the same recycled run on the
// window-parallel engine at several shard counts (shards=1 is the serial
// baseline). Speedup requires as many free cores as shards; on a single
// core the barrier overhead makes sharding a net loss.
func BenchmarkNetworkRunSharded(b *testing.B) {
	shape := torus.New(8, 8, 8)
	p := shape.P()
	mkSrcs := func() []Source {
		srcs := make([]Source, p)
		for n := 0; n < p; n++ {
			srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 256}
		}
		return srcs
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			nw, err := New(shape, DefaultParams(), mkSrcs(), countOnly{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := nw.RunSharded(1<<42, shards); err != nil {
				b.Fatal(err)
			}
			var events int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nw.Reset(mkSrcs(), countOnly{}); err != nil {
					b.Fatal(err)
				}
				if _, err := nw.RunSharded(1<<42, shards); err != nil {
					b.Fatal(err)
				}
				events += nw.Stats().Events()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkEventHeap measures the raw event queue.
func BenchmarkEventHeap(b *testing.B) {
	b.ReportAllocs()
	var h eventHeap
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		h.push(event{t: rng.Int63n(1 << 20)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := h.pop()
		e.t += int64(i % 4096)
		h.push(e)
	}
}

// TestRandomTrafficConservation is a property test: arbitrary small shapes
// with arbitrary random point-to-point traffic always complete and deliver
// every packet exactly once.
func TestRandomTrafficConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		dims := [3]int{1 + rng.Intn(6), 1 + rng.Intn(6), 1 + rng.Intn(4)}
		shape := torus.NewMesh(dims[0], dims[1], dims[2],
			rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0)
		if shape.Validate() != nil {
			continue
		}
		p := shape.P()
		srcs := make([]Source, p)
		want := make([]int64, p)
		for n := 0; n < p; n++ {
			count := rng.Intn(20)
			specs := make([]PacketSpec, 0, count)
			for i := 0; i < count; i++ {
				d := rng.Intn(p)
				if d == n {
					continue
				}
				size := int32(64 + 32*rng.Intn(7))
				det := rng.Intn(2) == 0
				specs = append(specs, PacketSpec{Dst: int32(d), Size: size, Det: det, Class: int8(rng.Intn(60))})
				want[d]++
			}
			srcs[n] = &listSource{specs: specs}
		}
		h := newCountHandler(p)
		nw, err := New(shape, DefaultParams(), srcs, h)
		if err != nil {
			t.Fatalf("trial %d shape %v: %v", trial, shape, err)
		}
		if _, err := nw.Run(1 << 40); err != nil {
			t.Fatalf("trial %d shape %v: %v", trial, shape, err)
		}
		for n := 0; n < p; n++ {
			if h.perNode[n] != want[n] {
				t.Fatalf("trial %d shape %v node %d: got %d packets, want %d",
					trial, shape, n, h.perNode[n], want[n])
			}
		}
	}
}
