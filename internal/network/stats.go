package network

import "math/bits"

// LatencyBuckets is the number of power-of-two latency histogram buckets.
const LatencyBuckets = 40

// Stats aggregates simulation measurements.
type Stats struct {
	// LinkBusy[node*6+dir] is the total time (units) the output link was
	// occupied by packet transfers.
	LinkBusy []int64
	// CPUBusy[node] is the total CPU time consumed by packet handling.
	CPUBusy []int64

	PacketsInjected   int64
	WireBytesInjected int64

	// EventsByKind counts processed events (arrive, service, cpu).
	EventsByKind [3]int64

	// GrantsByVC counts link grants per virtual channel (dyn0, dyn1,
	// bubble): a high bubble share indicates dynamic-VC exhaustion.
	GrantsByVC [NumVC]int64

	// LastInject is the completion time of the last injection CPU op
	// (source or software forward); FinishTime - LastInject is the drain
	// tail.
	LastInject int64

	// MaxPendingFw is the largest software-forward backlog observed at any
	// node: the intermediate-memory requirement of indirect strategies
	// (packets awaiting CPU re-injection).
	MaxPendingFw int

	// UtilSeries is the mean link utilization per UtilSampleWindow window
	// (only recorded when the parameter is set). Grants are attributed to
	// the window in which they start.
	UtilSeries []float64

	windowBusy int64
	windowIdx  int64

	// Final deliveries (packets whose handler marked them final).
	FinalPackets int64
	FinalPayload int64
	FinishTime   int64

	// All deliveries including intermediate (forwarded) hops.
	TotalDelivered int64

	// LatencyHist[i] counts final packets with injection-to-delivery
	// latency in [2^i, 2^(i+1)).
	LatencyHist [LatencyBuckets]int64
	LatencySum  int64
	LatencyMax  int64
}

// Events returns the total number of processed simulator events.
func (s *Stats) Events() int64 {
	var n int64
	for _, c := range s.EventsByKind {
		n += c
	}
	return n
}

// reset zeroes all measurements in place, keeping the per-node slice
// allocations for reuse by Network.Reset.
func (s *Stats) reset() {
	linkBusy, cpuBusy := s.LinkBusy, s.CPUBusy
	for i := range linkBusy {
		linkBusy[i] = 0
	}
	for i := range cpuBusy {
		cpuBusy[i] = 0
	}
	util := s.UtilSeries[:0]
	*s = Stats{LinkBusy: linkBusy, CPUBusy: cpuBusy, UtilSeries: util}
}

// noteWindowBusy accumulates per-window link busy time; window is the
// sample window size, links the number of unidirectional links.
func (s *Stats) noteWindowBusy(now, window int64, links int, size int32) {
	idx := now / window
	for s.windowIdx < idx {
		s.UtilSeries = append(s.UtilSeries, float64(s.windowBusy)/float64(window*int64(links)))
		s.windowBusy = 0
		s.windowIdx++
	}
	s.windowBusy += int64(size)
}

// flushWindows closes the utilization series at the end of a run.
func (s *Stats) flushWindows(window int64, links int) {
	if window > 0 && s.windowBusy > 0 {
		s.UtilSeries = append(s.UtilSeries, float64(s.windowBusy)/float64(window*int64(links)))
		s.windowBusy = 0
	}
}

func (s *Stats) noteDelivery(now int64, p *packet, final bool) {
	s.TotalDelivered++
	if !final {
		return
	}
	s.FinalPackets++
	s.FinalPayload += int64(p.payload)
	if now > s.FinishTime {
		s.FinishTime = now
	}
	lat := now - p.enq
	s.LatencySum += lat
	if lat > s.LatencyMax {
		s.LatencyMax = lat
	}
	b := bits.Len64(uint64(lat))
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	s.LatencyHist[b]++
}

// MeanLatency returns the mean injection-to-delivery latency of final
// packets, in time units.
func (s *Stats) MeanLatency() float64 {
	if s.FinalPackets == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.FinalPackets)
}

// MaxLinkUtilization returns the highest per-link occupancy fraction given
// the run duration.
func (s *Stats) MaxLinkUtilization(duration int64) float64 {
	if duration <= 0 {
		return 0
	}
	var m int64
	for _, b := range s.LinkBusy {
		if b > m {
			m = b
		}
	}
	return float64(m) / float64(duration)
}

// MeanLinkUtilization returns the mean occupancy fraction over links that
// exist (nonzero capacity is assumed for all counted slots; slots for mesh
// edges stay zero and are excluded by counting only nonzero-busy links when
// totalLinks is passed as 0).
func (s *Stats) MeanLinkUtilization(duration int64, totalLinks int) float64 {
	if duration <= 0 || totalLinks <= 0 {
		return 0
	}
	var sum int64
	for _, b := range s.LinkBusy {
		sum += b
	}
	return float64(sum) / (float64(duration) * float64(totalLinks))
}
