package network

import "math/bits"

// LatencyBuckets is the number of power-of-two latency histogram buckets.
const LatencyBuckets = 40

// NumEventKinds is the number of distinct simulator event kinds.
const NumEventKinds = 5

// Stats aggregates simulation measurements. In a sharded run each shard
// accumulates its own Stats over the disjoint node range it owns; the
// per-shard instances are merged (see merge) when the run completes.
type Stats struct {
	// LinkBusy[node*6+dir] is the total time (units) the output link was
	// occupied by packet transfers.
	LinkBusy []int64
	// CPUBusy[node] is the total CPU time consumed by packet handling.
	CPUBusy []int64

	PacketsInjected   int64
	WireBytesInjected int64

	// EventsByKind counts logical simulator actions (arrive, service, cpu,
	// credit, fault). With coalescing (Params.Coalesce) each credit/arrival
	// a marker replays counts individually, so these totals - and Events() -
	// are identical with coalescing on or off.
	EventsByKind [NumEventKinds]int64

	// QueuedEvents counts events actually popped from the pending-event
	// queue. Without coalescing it equals Events(); with coalescing many
	// logical credits/arrivals share one queued marker or are elided
	// entirely (coalesce.go), so it is smaller -
	// QueuedEvents/PacketsInjected is the event-volume metric the bench
	// regression gate watches. Deterministic for a fixed (params, shards,
	// sync) configuration and invariant across event-queue structures; in
	// coalesced mode it can differ by a few counts across shard counts and
	// sync protocols (boundary credits make their elision decision at the
	// receiving shard's commit point — the safe-horizon insertion under
	// async, the window barrier under bsp), while every other statistic
	// stays byte-identical.
	QueuedEvents int64

	// GrantsByVC counts link grants per virtual channel (dyn0, dyn1,
	// bubble): a high bubble share indicates dynamic-VC exhaustion.
	GrantsByVC [NumVC]int64

	// LastInject is the completion time of the last injection CPU op
	// (source or software forward); FinishTime - LastInject is the drain
	// tail.
	LastInject int64

	// MaxPendingFw is the largest software-forward backlog observed at any
	// node: the intermediate-memory requirement of indirect strategies
	// (packets awaiting CPU re-injection).
	MaxPendingFw int

	// UtilSeries is the mean link utilization per UtilSampleWindow window
	// (only recorded when the parameter is set). Grants are attributed to
	// the window in which they start. Rendered from busyWin at the end of a
	// run; the integer per-window accumulation is kept exact so per-shard
	// series merge by addition without floating-point drift.
	UtilSeries []float64

	busyWin    []int64 // completed windows' busy time, in order
	windowBusy int64   // busy time of the currently open window
	windowIdx  int64

	// Final deliveries (packets whose handler marked them final).
	FinalPackets int64
	FinalPayload int64
	FinishTime   int64

	// All deliveries including intermediate (forwarded) hops.
	TotalDelivered int64

	// DeadLinkTicks is the summed outage time of faulted links (one link down
	// for T units contributes T): each Up transition accrues its outage, and
	// links still down at finish accrue [down, FinishTime) (closeFaultStats).
	// Engine-invariant: identical at any shard count and with coalescing or
	// either event queue on or off.
	DeadLinkTicks int64

	// Reroutes counts packets redirected around a dead link (flipped to the
	// long way around a ring), at fault application, arrival, or injection.
	// Engine-invariant, like DeadLinkTicks.
	Reroutes int64

	// ForcedCreditReturns counts credits force-returned from the lazy ledger
	// at end of run because their link was killed (no free-time dispatch ever
	// flushes them). Like QueuedEvents this is a coalesced-mode bookkeeping
	// count (the uncoalesced engine pops those credits as ordinary no-op
	// events instead); it is zero with Coalesce off.
	ForcedCreditReturns int64

	// LatencyHist[i] counts final packets with injection-to-delivery
	// latency in [2^i, 2^(i+1)).
	LatencyHist [LatencyBuckets]int64
	LatencySum  int64
	LatencyMax  int64
}

// Events returns the total number of processed simulator events.
func (s *Stats) Events() int64 {
	var n int64
	for _, c := range s.EventsByKind {
		n += c
	}
	return n
}

// reset zeroes all measurements in place, keeping the per-node slice
// allocations for reuse by Network.Reset.
func (s *Stats) reset() {
	linkBusy, cpuBusy := s.LinkBusy, s.CPUBusy
	for i := range linkBusy {
		linkBusy[i] = 0
	}
	for i := range cpuBusy {
		cpuBusy[i] = 0
	}
	util := s.UtilSeries[:0]
	busyWin := s.busyWin[:0]
	*s = Stats{LinkBusy: linkBusy, CPUBusy: cpuBusy, UtilSeries: util, busyWin: busyWin}
}

// clone returns a deep copy: the per-node and per-window slices are
// duplicated so the copy shares no memory with live engine state. Backing
// Network.Stats with a clone is what lets callers keep (or mutate) a
// snapshot across a later Reset - returning the live struct used to let a
// sweep's next run silently zero a caller's captured counters.
func (s *Stats) clone() *Stats {
	c := *s
	c.LinkBusy = append([]int64(nil), s.LinkBusy...)
	c.CPUBusy = append([]int64(nil), s.CPUBusy...)
	c.UtilSeries = append([]float64(nil), s.UtilSeries...)
	c.busyWin = append([]int64(nil), s.busyWin...)
	return &c
}

// noteWindowBusy accumulates per-window link busy time; window is the
// sample window size.
func (s *Stats) noteWindowBusy(now, window int64, size int32) {
	idx := now / window
	for s.windowIdx < idx {
		s.busyWin = append(s.busyWin, s.windowBusy)
		s.windowBusy = 0
		s.windowIdx++
	}
	s.windowBusy += int64(size)
}

// closeWindows flushes the open utilization window at the end of a run.
func (s *Stats) closeWindows() {
	if s.windowBusy > 0 {
		s.busyWin = append(s.busyWin, s.windowBusy)
		s.windowBusy = 0
	}
	s.windowIdx = 0
}

// renderUtil converts the exact per-window busy counts into the utilization
// series. Called once per run, after closeWindows (and, for sharded runs,
// after merging the per-shard counts).
func (s *Stats) renderUtil(window int64, links int) {
	if window <= 0 {
		return
	}
	for _, b := range s.busyWin {
		s.UtilSeries = append(s.UtilSeries, float64(b)/float64(window*int64(links)))
	}
}

// merge folds one shard's statistics into s. Counters add; watermarks take
// the max; the utilization windows add elementwise in the integer domain
// (renderUtil then produces floats identical to a serial run's). Shards own
// disjoint node ranges, so the per-node slices add without overlap.
func (s *Stats) merge(o *Stats) {
	for i, v := range o.LinkBusy {
		s.LinkBusy[i] += v
	}
	for i, v := range o.CPUBusy {
		s.CPUBusy[i] += v
	}
	s.PacketsInjected += o.PacketsInjected
	s.WireBytesInjected += o.WireBytesInjected
	for i, v := range o.EventsByKind {
		s.EventsByKind[i] += v
	}
	s.QueuedEvents += o.QueuedEvents
	for i, v := range o.GrantsByVC {
		s.GrantsByVC[i] += v
	}
	if o.LastInject > s.LastInject {
		s.LastInject = o.LastInject
	}
	if o.MaxPendingFw > s.MaxPendingFw {
		s.MaxPendingFw = o.MaxPendingFw
	}
	for len(s.busyWin) < len(o.busyWin) {
		s.busyWin = append(s.busyWin, 0)
	}
	for i, v := range o.busyWin {
		s.busyWin[i] += v
	}
	s.FinalPackets += o.FinalPackets
	s.FinalPayload += o.FinalPayload
	if o.FinishTime > s.FinishTime {
		s.FinishTime = o.FinishTime
	}
	s.TotalDelivered += o.TotalDelivered
	s.DeadLinkTicks += o.DeadLinkTicks
	s.Reroutes += o.Reroutes
	s.ForcedCreditReturns += o.ForcedCreditReturns
	for i, v := range o.LatencyHist {
		s.LatencyHist[i] += v
	}
	s.LatencySum += o.LatencySum
	if o.LatencyMax > s.LatencyMax {
		s.LatencyMax = o.LatencyMax
	}
}

func (s *Stats) noteDelivery(now int64, p *packet, final bool) {
	s.TotalDelivered++
	if !final {
		return
	}
	s.FinalPackets++
	s.FinalPayload += int64(p.payload)
	if now > s.FinishTime {
		s.FinishTime = now
	}
	lat := now - p.enq
	s.LatencySum += lat
	if lat > s.LatencyMax {
		s.LatencyMax = lat
	}
	b := bits.Len64(uint64(lat))
	if b >= LatencyBuckets {
		b = LatencyBuckets - 1
	}
	s.LatencyHist[b]++
}

// MeanLatency returns the mean injection-to-delivery latency of final
// packets, in time units.
func (s *Stats) MeanLatency() float64 {
	if s.FinalPackets == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.FinalPackets)
}

// MaxLinkUtilization returns the highest per-link occupancy fraction given
// the run duration.
func (s *Stats) MaxLinkUtilization(duration int64) float64 {
	if duration <= 0 {
		return 0
	}
	var m int64
	for _, b := range s.LinkBusy {
		if b > m {
			m = b
		}
	}
	return float64(m) / float64(duration)
}

// MeanLinkUtilization returns the mean occupancy fraction over links that
// exist (nonzero capacity is assumed for all counted slots; slots for mesh
// edges stay zero and are excluded by counting only nonzero-busy links when
// totalLinks is passed as 0).
func (s *Stats) MeanLinkUtilization(duration int64, totalLinks int) float64 {
	if duration <= 0 || totalLinks <= 0 {
		return 0
	}
	var sum int64
	for _, b := range s.LinkBusy {
		sum += b
	}
	return float64(sum) / (float64(duration) * float64(totalLinks))
}
