package network

import (
	"testing"

	"alltoall/internal/torus"
)

// listSource injects a fixed list of specs, one per CPU poll.
type listSource struct {
	specs []PacketSpec
	i     int
}

func (s *listSource) Next(now int64) (PacketSpec, SrcStatus, int64) {
	if s.i >= len(s.specs) {
		return PacketSpec{}, SrcDone, 0
	}
	sp := s.specs[s.i]
	s.i++
	return sp, SrcReady, 0
}

// pacedSource injects count packets spaced gap units apart.
type pacedSource struct {
	spec     PacketSpec
	count    int
	gap      int64
	nextTime int64
}

func (s *pacedSource) Next(now int64) (PacketSpec, SrcStatus, int64) {
	if s.count <= 0 {
		return PacketSpec{}, SrcDone, 0
	}
	if now < s.nextTime {
		return PacketSpec{}, SrcWait, s.nextTime
	}
	s.count--
	s.nextTime = now + s.gap
	return s.spec, SrcReady, 0
}

// countHandler counts deliveries; every delivery is final.
type countHandler struct {
	perNode []int64
	bySrc   map[[2]int32]int64
}

func newCountHandler(p int) *countHandler {
	return &countHandler{perNode: make([]int64, p), bySrc: map[[2]int32]int64{}}
}

func (h *countHandler) OnDeliver(d Delivered, fw []PacketSpec) ([]PacketSpec, int64, bool) {
	h.perNode[d.Node]++
	h.bySrc[[2]int32{d.Src, d.Node}]++
	return fw, 0, true
}

func buildNet(t *testing.T, shape torus.Shape, par Params, sources []Source, h Handler) *Network {
	t.Helper()
	nw, err := New(shape, par, sources, h)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return nw
}

func line2() torus.Shape { return torus.NewMesh(2, 1, 1, false, false, false) }

func TestTwoNodeSinglePacket(t *testing.T) {
	par := DefaultParams()
	h := newCountHandler(2)
	src := make([]Source, 2)
	src[0] = &listSource{specs: []PacketSpec{{Dst: 1, Size: 256, Payload: 200}}}
	nw := buildNet(t, line2(), par, src, h)
	fin, err := nw.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	// Injection CPU: 256/4 = 64 units, packet enters FIFO at t=64.
	// Wire: 64..320. Router delay: arrive 335. Reception CPU: 335..399.
	if fin != 399 {
		t.Errorf("finish time = %d, want 399", fin)
	}
	if h.perNode[1] != 1 || h.perNode[0] != 0 {
		t.Errorf("deliveries = %v", h.perNode)
	}
	st := nw.Stats()
	if st.FinalPayload != 200 {
		t.Errorf("payload = %d, want 200", st.FinalPayload)
	}
	if st.PacketsInjected != 1 {
		t.Errorf("injected = %d", st.PacketsInjected)
	}
}

func TestLinkSerializesBackToBackPackets(t *testing.T) {
	par := DefaultParams()
	h := newCountHandler(2)
	n := 10
	specs := make([]PacketSpec, n)
	for i := range specs {
		specs[i] = PacketSpec{Dst: 1, Size: 256}
	}
	src := make([]Source, 2)
	src[0] = &listSource{specs: specs}
	nw := buildNet(t, line2(), par, src, h)
	fin, err := nw.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	// CPU readies packets every 64 units; the link is the bottleneck and
	// stays saturated: transmissions run 64..64+2560, last arrival at
	// +15, reception CPU +64.
	want := int64(64 + 10*256 + 15 + 64)
	if fin != want {
		t.Errorf("finish = %d, want %d (link-serialized)", fin, want)
	}
	if h.perNode[1] != int64(n) {
		t.Errorf("deliveries = %d, want %d", h.perNode[1], n)
	}
	// The 0->1 link must have been busy for exactly 10*256 units.
	if got := nw.Stats().LinkBusy[0*numDirs+dirOf(torus.X, 1)]; got != 2560 {
		t.Errorf("link busy = %d, want 2560", got)
	}
}

func TestWaitPacing(t *testing.T) {
	par := DefaultParams()
	h := newCountHandler(2)
	src := make([]Source, 2)
	src[0] = &pacedSource{spec: PacketSpec{Dst: 1, Size: 64}, count: 5, gap: 1000}
	nw := buildNet(t, line2(), par, src, h)
	fin, err := nw.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	// Injections at 0, 1000+, 2000+, ...; the last at >= 4000 plus
	// CPU 16 + wire 64 + delay 15 + recv 16.
	if fin < 4000+16+64+15+16 {
		t.Errorf("finish = %d, too early for paced source", fin)
	}
	if h.perNode[1] != 5 {
		t.Errorf("deliveries = %d, want 5", h.perNode[1])
	}
}

// allToAllSource sends one packet to every other node.
type allToAllSource struct {
	self int32
	p    int32
	next int32
	size int32
	det  bool
}

func (s *allToAllSource) Next(now int64) (PacketSpec, SrcStatus, int64) {
	if s.next >= s.p {
		return PacketSpec{}, SrcDone, 0
	}
	d := s.next
	s.next++
	if d == s.self {
		if s.next >= s.p {
			return PacketSpec{}, SrcDone, 0
		}
		d = s.next
		s.next++
	}
	return PacketSpec{Dst: d, Size: s.size, Payload: s.size, Det: s.det}, SrcReady, 0
}

func runAllToAll(t *testing.T, shape torus.Shape, par Params, size int32, det bool) (*Network, *countHandler) {
	t.Helper()
	p := shape.P()
	h := newCountHandler(p)
	src := make([]Source, p)
	for i := 0; i < p; i++ {
		src[i] = &allToAllSource{self: int32(i), p: int32(p), size: size, det: det}
	}
	nw := buildNet(t, shape, par, src, h)
	if _, err := nw.Run(1 << 40); err != nil {
		t.Fatalf("Run(%v det=%v): %v", shape, det, err)
	}
	return nw, h
}

func checkConservation(t *testing.T, shape torus.Shape, h *countHandler) {
	t.Helper()
	p := shape.P()
	for n := 0; n < p; n++ {
		if h.perNode[n] != int64(p-1) {
			t.Errorf("%v node %d received %d packets, want %d", shape, n, h.perNode[n], p-1)
		}
	}
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s == d {
				continue
			}
			if h.bySrc[[2]int32{int32(s), int32(d)}] != 1 {
				t.Fatalf("%v pair (%d,%d) delivered %d times, want 1",
					shape, s, d, h.bySrc[[2]int32{int32(s), int32(d)}])
			}
		}
	}
}

func TestAllToAllConservationAdaptive(t *testing.T) {
	shapes := []torus.Shape{
		torus.New(4, 4, 4),
		torus.New(8, 4, 1),
		torus.New(5, 3, 4),
		torus.NewMesh(4, 4, 4, false, true, false),
		torus.New(16, 1, 1),
	}
	for _, s := range shapes {
		_, h := runAllToAll(t, s, DefaultParams(), 256, false)
		checkConservation(t, s, h)
	}
}

func TestAllToAllConservationDeterministic(t *testing.T) {
	shapes := []torus.Shape{
		torus.New(4, 4, 4),
		torus.New(8, 4, 2),
		torus.NewMesh(6, 3, 2, false, false, false),
	}
	for _, s := range shapes {
		_, h := runAllToAll(t, s, DefaultParams(), 256, true)
		checkConservation(t, s, h)
	}
}

func TestAllToAllTinyBuffersNoDeadlock(t *testing.T) {
	par := DefaultParams()
	par.VCBytes = 2 * MaxPacketBytes // minimum legal: bubble join needs size+256
	par.InjFIFOBytes = 256
	par.RecvFIFOBytes = 256
	for _, det := range []bool{false, true} {
		shape := torus.New(4, 4, 4)
		p := shape.P()
		h := newCountHandler(p)
		src := make([]Source, p)
		for i := 0; i < p; i++ {
			src[i] = &allToAllSource{self: int32(i), p: int32(p), size: 256, det: det}
		}
		nw := buildNet(t, shape, par, src, h)
		if _, err := nw.Run(1 << 40); err != nil {
			t.Fatalf("det=%v: %v", det, err)
		}
		checkConservation(t, shape, h)
	}
}

func TestSmallPackets(t *testing.T) {
	_, h := runAllToAll(t, torus.New(4, 4, 1), DefaultParams(), 64, false)
	checkConservation(t, torus.New(4, 4, 1), h)
}

// fwHandler implements a one-hop software forward: packets of kind 1 are
// re-injected to their Aux destination as kind 2.
type fwHandler struct {
	finals []int64
	inter  []int64
}

func (h *fwHandler) OnDeliver(d Delivered, fw []PacketSpec) ([]PacketSpec, int64, bool) {
	if d.Kind == 1 {
		h.inter[d.Node]++
		fw = append(fw, PacketSpec{
			Dst: d.Aux, Size: d.Size, Payload: d.Payload, Kind: 2, Class: 1,
		})
		return fw, 0, false
	}
	h.finals[d.Node]++
	return fw, 0, true
}

func TestSoftwareForwarding(t *testing.T) {
	// 4-node line: node 0 sends via intermediate 1 (kind 1, Aux=3) to 3.
	shape := torus.NewMesh(4, 1, 1, false, false, false)
	h := &fwHandler{finals: make([]int64, 4), inter: make([]int64, 4)}
	src := make([]Source, 4)
	src[0] = &listSource{specs: []PacketSpec{{Dst: 1, Aux: 3, Size: 128, Payload: 100, Kind: 1}}}
	nw := buildNet(t, shape, DefaultParams(), src, h)
	fin, err := nw.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if h.inter[1] != 1 {
		t.Errorf("intermediate deliveries at node 1 = %d, want 1", h.inter[1])
	}
	if h.finals[3] != 1 {
		t.Errorf("final deliveries at node 3 = %d, want 1", h.finals[3])
	}
	if nw.Stats().FinalPayload != 100 {
		t.Errorf("final payload = %d", nw.Stats().FinalPayload)
	}
	// Path with virtual cut-through: inject(32); first leg 0->1 is a final
	// hop, so the tail must arrive: wire(128)+delay(15); recv(32);
	// fw-inject(32); second leg 1->3: the transit hop 1->2 forwards at
	// head arrival (granule 32 + delay 15), the final hop 2->3 waits for
	// the tail (wire 128 + delay 15); recv(32).
	want := int64(32 + (128 + 15) + 32 + 32 + (32 + 15) + (128 + 15) + 32)
	if fin != want {
		t.Errorf("finish = %d, want %d", fin, want)
	}
}

func TestLatencyStats(t *testing.T) {
	par := DefaultParams()
	h := newCountHandler(2)
	src := make([]Source, 2)
	src[0] = &listSource{specs: []PacketSpec{{Dst: 1, Size: 256}}}
	nw := buildNet(t, line2(), par, src, h)
	if _, err := nw.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	// Latency = finish - enq = 399 - 64 = 335.
	if st.LatencyMax != 335 || st.MeanLatency() != 335 {
		t.Errorf("latency max=%d mean=%v, want 335", st.LatencyMax, st.MeanLatency())
	}
	var histSum int64
	for _, c := range st.LatencyHist {
		histSum += c
	}
	if histSum != 1 {
		t.Errorf("hist sum = %d", histSum)
	}
}

func TestInvalidConfigs(t *testing.T) {
	h := newCountHandler(2)
	if _, err := New(line2(), DefaultParams(), nil, nil); err == nil {
		t.Error("nil handler accepted")
	}
	bad := DefaultParams()
	bad.VCBytes = 128
	if _, err := New(line2(), bad, nil, h); err == nil {
		t.Error("tiny VCBytes accepted")
	}
	if _, err := New(line2(), DefaultParams(), make([]Source, 5), h); err == nil {
		t.Error("mismatched sources accepted")
	}
	if _, err := New(torus.Shape{Size: [3]int{0, 1, 1}}, DefaultParams(), nil, h); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestSelfPacketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self-addressed packet did not panic")
		}
	}()
	h := newCountHandler(2)
	src := make([]Source, 2)
	src[0] = &listSource{specs: []PacketSpec{{Dst: 0, Size: 64}}}
	nw, _ := New(line2(), DefaultParams(), src, h)
	_, _ = nw.Run(1 << 30)
}

func TestMaxTimeExceeded(t *testing.T) {
	h := newCountHandler(2)
	src := make([]Source, 2)
	src[0] = &listSource{specs: []PacketSpec{{Dst: 1, Size: 256}}}
	nw := buildNet(t, line2(), DefaultParams(), src, h)
	if _, err := nw.Run(10); err == nil {
		t.Error("expected max-time error")
	}
}

func TestMeshCornerToCorner(t *testing.T) {
	shape := torus.NewMesh(4, 1, 1, false, false, false)
	h := newCountHandler(4)
	src := make([]Source, 4)
	src[0] = &listSource{specs: []PacketSpec{{Dst: 3, Size: 256}}}
	src[3] = &listSource{specs: []PacketSpec{{Dst: 0, Size: 256}}}
	nw := buildNet(t, shape, DefaultParams(), src, h)
	if _, err := nw.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if h.perNode[0] != 1 || h.perNode[3] != 1 {
		t.Errorf("deliveries = %v", h.perNode)
	}
}

func TestDirHelpers(t *testing.T) {
	if dirOf(torus.X, 1) != 0 || dirOf(torus.X, -1) != 1 || dirOf(torus.Z, -1) != 5 {
		t.Error("dirOf mapping wrong")
	}
	for d := 0; d < numDirs; d++ {
		if oppositeDir(oppositeDir(d)) != d {
			t.Error("oppositeDir not involutive")
		}
		if dimOfDir(d) != torus.Dim(d/2) {
			t.Error("dimOfDir wrong")
		}
		if signOfDir(d)*signOfDir(oppositeDir(d)) != -1 {
			t.Error("signs of opposite dirs must differ")
		}
	}
}

func TestRouteHopsTieSplitting(t *testing.T) {
	shape := torus.New(8, 1, 1)
	h := newCountHandler(8)
	nw := buildNet(t, shape, DefaultParams(), nil, h)
	plus, minus := 0, 0
	for src := int32(0); src < 8; src++ {
		dst := (src + 4) % 8
		hops := nw.routeHops(src, dst)
		switch hops[0] {
		case 4:
			plus++
		case -4:
			minus++
		default:
			t.Fatalf("tie hop = %d", hops[0])
		}
	}
	if plus != 4 || minus != 4 {
		t.Errorf("tie split %d+/%d-, want 4/4", plus, minus)
	}
}
