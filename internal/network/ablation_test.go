package network

import (
	"strings"
	"testing"

	"alltoall/internal/torus"
)

// Ablation tests: each modeling mechanism in DESIGN.md section "Modeling
// decisions" must actually matter. These run a saturating shift workload
// (every node floods dist hops along a ring) and compare configurations.

func runShift(t *testing.T, par Params, dist, n int) int64 {
	t.Helper()
	shape := torus.New(8, 1, 1)
	srcs := make([]Source, 8)
	for i := 0; i < 8; i++ {
		srcs[i] = &pacedSource{spec: PacketSpec{Dst: int32((i + dist) % 8), Size: 256}, count: n}
	}
	// Spread across injection FIFOs like the collective layer does.
	for i := 0; i < 8; i++ {
		srcs[i].(*pacedSource).spec.Class = int8((i + dist) % 8 % 60)
	}
	nw, err := New(shape, par, srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := nw.Run(1 << 42)
	if err != nil {
		t.Fatalf("dist=%d: %v", dist, err)
	}
	return fin
}

type countOnly struct{}

func (countOnly) OnDeliver(d Delivered, fw []PacketSpec) ([]PacketSpec, int64, bool) {
	return fw, 0, true
}

func TestAblationTransitPriorityMatters(t *testing.T) {
	base := DefaultParams()
	noPrio := base
	noPrio.InjectTokens = 0 // entrants stream like transit
	n := 400
	with := runShift(t, base, 3, n)
	without := runShift(t, noPrio, 3, n)
	if with >= without {
		t.Errorf("transit priority should speed the saturated ring: %d (with) vs %d (without)", with, without)
	}
}

func TestAblationCutThroughMatters(t *testing.T) {
	base := DefaultParams()
	saf := base
	saf.StoreForward = true
	n := 400
	ct := runShift(t, base, 3, n)
	sf := runShift(t, saf, 3, n)
	// A saturated ring is throughput-bound, so cut-through's per-hop latency
	// advantage mostly cancels and arbitration noise (a few window-sized
	// stalls from finite credit-return latency) can tip the comparison by a
	// percent either way; only a clear loss would indicate a modeling bug.
	if ct > sf+sf/33 {
		t.Errorf("cut-through should not be clearly slower than store-and-forward: %d vs %d", ct, sf)
	}
	// Off saturation the per-hop latency advantage must show directly.
	ct1 := runShift(t, base, 3, 1)
	sf1 := runShift(t, saf, 3, 1)
	if ct1 >= sf1 {
		t.Errorf("cut-through should beat store-and-forward off saturation: %d vs %d", ct1, sf1)
	}
}

func TestAblationEscapeDelayZeroStillLive(t *testing.T) {
	par := DefaultParams()
	par.EscapeDelay = 0
	_ = runShift(t, par, 3, 300) // must complete without deadlock
}

func TestAblationLookaheadHelpsOrNeutral(t *testing.T) {
	base := DefaultParams()
	la1 := base
	la1.VCLookahead = 1
	n := 400
	deep := runShift(t, base, 2, n)
	shallow := runShift(t, la1, 2, n)
	// Lookahead must never deadlock and should not be dramatically worse.
	if deep > shallow*2 {
		t.Errorf("lookahead regressed throughput badly: %d vs %d", deep, shallow)
	}
}

func TestDumpStateRenders(t *testing.T) {
	shape := torus.New(4, 1, 1)
	srcs := make([]Source, 4)
	srcs[0] = &listSource{specs: []PacketSpec{{Dst: 2, Size: 256}}}
	nw, err := New(shape, DefaultParams(), srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	// Force a mid-flight stop (the packet is on the wire at t=70) and dump.
	if _, err := nw.Run(70); err == nil {
		t.Fatal("expected max-time stop")
	}
	var b strings.Builder
	nw.DumpState(&b)
	out := b.String()
	if !strings.Contains(out, "inFlight=1") {
		t.Errorf("dump missing in-flight packet: %q", out)
	}
}

func TestTraceGrants(t *testing.T) {
	shape := torus.New(4, 1, 1)
	srcs := make([]Source, 4)
	srcs[0] = &listSource{specs: []PacketSpec{{Dst: 1, Size: 256}, {Dst: 1, Size: 64}}}
	nw, err := New(shape, DefaultParams(), srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	log := nw.TraceGrants(0, 0) // node 0, X+ link
	if _, err := nw.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 2 {
		t.Fatalf("traced %d grants, want 2", len(*log))
	}
	if (*log)[0].Size != 256 || (*log)[1].Size != 64 {
		t.Errorf("trace contents wrong: %+v", *log)
	}
	if (*log)[1].T <= (*log)[0].T {
		t.Errorf("trace times not increasing")
	}
}

func TestStatsUtilizationHelpers(t *testing.T) {
	var s Stats
	s.LinkBusy = []int64{100, 50, 0}
	if got := s.MaxLinkUtilization(200); got != 0.5 {
		t.Errorf("max util = %v", got)
	}
	if got := s.MeanLinkUtilization(100, 3); got != 0.5 {
		t.Errorf("mean util = %v", got)
	}
	if s.MaxLinkUtilization(0) != 0 || s.MeanLinkUtilization(0, 3) != 0 {
		t.Error("zero duration must not divide")
	}
	if s.MeanLatency() != 0 {
		t.Error("latency of nothing should be 0")
	}
}

func TestUtilSeries(t *testing.T) {
	par := DefaultParams()
	par.UtilSampleWindow = 1000
	shape := torus.New(4, 4, 1)
	p := shape.P()
	srcs := make([]Source, p)
	for n := 0; n < p; n++ {
		srcs[n] = &allToAllSource{self: int32(n), p: int32(p), size: 256}
	}
	nw, err := New(shape, par, srcs, countOnly{})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := nw.Run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	st := nw.Stats()
	if len(st.UtilSeries) == 0 {
		t.Fatal("no utilization samples recorded")
	}
	wantLen := int(fin/1000) + 1
	if len(st.UtilSeries) > wantLen {
		t.Errorf("series length %d exceeds run windows %d", len(st.UtilSeries), wantLen)
	}
	var sum float64
	for _, u := range st.UtilSeries {
		if u < 0 || u > 1.01 {
			t.Fatalf("utilization sample %v out of range", u)
		}
		sum += u
	}
	if sum == 0 {
		t.Error("all samples zero")
	}
}
