package network

// Same-tick credit & arrival coalescing.
//
// The torus's flow control is per-packet: every hop costs one evArrive at the
// downstream router and one evCredit back at the upstream one, so arrivals
// and credits dominate event volume (roughly three quarters of the queue
// traffic of a saturated all-to-all). Under contention they cluster: a router
// draining several inputs on one tick emits a burst of credits that all land
// at the same upstream (node, now+CreditDelay), and the uncoalesced engine
// pays a queue push, a pop, and a dispatch for each.
//
// Coalescing generalizes the svcPend trick (engine.go) to these two stateful
// event kinds. All credits/arrivals landing at one (node, tick) accumulate in
// a per-node side table and share ONE queued marker event; the marker's
// handler replays the individual credits/arrivals in exactly the order the
// uncoalesced engine would have popped them, so the simulation - every
// arbitration pass, router mutation, observer callback, statistic, and the
// finish time - is byte-identical with coalescing on or off, serial or
// sharded (the differential suite in coalesce_test.go and the conformance
// goldens hold it to that).
//
// Replay-order argument. Events are dispatched in the strict (t, node, kind,
// arg) order of less() (heap.go). Fix a marker for (t, node, kind):
//
//  1. Everything at (t', ...) with t' < t popped before the marker, and
//     nothing can be pushed at t' < t once now = t (time is monotonic).
//  2. Everything at (t, node', ...) with node' < node popped before the
//     marker (the marker was the queue minimum when it popped, and every
//     push while now = t targets the node being dispatched - service
//     wakeups, CPU kicks - or a strictly later tick - arrivals land at
//     least PacketGranule+RouterDelay ahead, credits CreditDelay >= 1).
//  3. Within (t, node), kinds order arrive(0) < service(1) < cpuKick(2) <
//     credit(3), and same-kind events order by ascending arg. The
//     accumulated args replayed in ascending order therefore reproduce the
//     uncoalesced block - EXCEPT that dispatching one credit can push a
//     same-tick event of a smaller kind at the same node (a reception-freed
//     service wakeup, a source-wait CPU kick), which the uncoalesced engine
//     would pop between two credits. The replay loop reproduces that
//     interleaving literally: before each logical credit it drains every
//     queued event that sorts before the credit's virtual (t, node, kind,
//     arg) key. For arrivals nothing can sort between two args of the same
//     block (every same-tick push during an arrival dispatch has kind >= 1,
//     which sorts after kind 0), so the arrival drain never fires; it is
//     kept for symmetry and costs one compare per logical arrival.
//
// The gate: coalescing requires CreditDelay >= 1 (coalesceEnabled). With
// credits at least one tick out, no dispatch at tick t can append to a
// (node, t) batch - so a batch is complete when its marker pops, and a slot
// can never be claimed twice for one tick. Arrivals always land at least
// PacketGranule later and need no extra condition. The sharded engine's
// window protocol independently guarantees cross-shard effects land strictly
// after the receiver's clock (t >= gmin + window > now), so inbox-fed
// batches also complete before their markers pop.
//
// Storage. The side tables are SoA arrays on Network, indexed
// node*coalWays+way, so they are shard-partitioned exactly like the router
// state: an engine touches only its own nodes' slots. coalWays packed slots
// per node cover the common case of a few distinct in-flight ticks (one per
// upstream service burst for credits, one per incoming link for arrivals),
// and each slot stores its batch inline in a flat argument array
// (coalArgsCap entries) - no per-slot heap slice, so accumulating a credit
// touches three dense cache lines (tick, count, args) instead of chasing a
// slice header into a scattered backing array. That matters more than it
// looks: the accumulator tables are read/written once per logical credit
// and arrival, and any sprawl here evicts the router rings that the
// arbitration scan (the hottest loop in the simulator) lives on. The
// overflow - a fifth same-tick distinct tick, or a batch outgrowing its
// inline capacity - goes to a small per-engine spill list that is consulted
// on every slot miss and merged back during lookup, never dropped to plain
// events (which would break the replay order above).
//
// Lazy credit elision. Same-tick ties alone merge only a few percent of the
// queue traffic - credits land on mostly-distinct ticks. The larger win is
// that most credit events are provable no-ops: the credit for (node, dir)
// lands at t = now + CreditDelay, and when node's output link dir is still
// busy at t the event does nothing but mature the tokens - service(node,
// 1<<dir) returns before even rotating the arbitration cursor when the masked
// link is not in freeMask (engine.go), firing no observer callback and
// touching no router state. Such a credit needs no queued event at all:
//
//   - outBusy is monotone (a grant requires the link free, so busy times only
//     ever extend), so "busy through t" observed at credit-creation time still
//     holds at t.
//   - tok[node][dir] is read only by arbitration at node restricted to
//     free-at-now outputs (tryRoute's candidate loop checks freeMask before
//     reading tokens) and by the checker. The link frees at some T > t, and
//     that T carries a hard link-free service event at node (tryRoute always
//     pushes or shares one), so flushing stashed credits with tick <= now at
//     the top of every dispatch for node applies them before ANY possible
//     read: the token trajectory at every read point is identical to the
//     uncoalesced engine's, even though the adds happen late (or, within one
//     tick, early - a busy link is outside freeMask for the whole tick, so
//     same-tick arbitration never sees its tokens either way).
//
// Credits whose link is (or may be, by t) free keep their exact-time marker:
// those are the ones that can grant. The stash decision is made where the
// upstream router's outBusy is readable - at creation for in-shard credits,
// at the window barrier for batched cross-shard ones. The receiver's clock
// has advanced past the sender's by then, so a boundary credit can be elided
// in a sharded run but queued serially (or vice versa); the simulation is
// byte-identical regardless (the event was a no-op on both sides of the
// decision), but Stats.QueuedEvents can differ by a few counts across shard
// counts - the differential oracles normalize it, and it stays exactly
// deterministic for a fixed (params, shards) configuration.
//
// Event removal. Three further no-op pop classes leave the queue outright
// (eventQueue.remove), each provably side-effect-free at its removal point:
// a soft svcPend wakeup whose slot was consumed by a drain or retargeted
// earlier (drainSoft, scheduleService); a hard link-free wakeup whose tick
// stopped freeing any link because every same-tick link was re-granted
// first (tryRoute); and a pending credit marker whose whole batch a fresh
// grant turned into provable no-ops (convertCredits). A removed event still
// counts in EventsByKind - it is the same logical no-op the uncoalesced
// engine pops - so Events() stays identical on or off; only QueuedEvents
// drops.

// coalWays is the number of packed per-node accumulator slots per event kind.
const coalWays = 4

// coalArgsCap is the inline argument capacity of one packed slot. Six covers
// every arrival batch outright (simultaneous arrivals come from distinct
// input directions, of which there are six); a credit batch outgrowing it
// (one upstream service pass popping many packets on one tick) migrates to
// the spill list.
const coalArgsCap = 6

// coalSpill is one overflow accumulator: a (node, tick) batch that found all
// coalWays slots holding other ticks.
type coalSpill struct {
	t    int64
	node int32
	args []int32
}

// coalesceEnabled reports whether the engine runs with credit/arrival
// coalescing for the given parameters: on unless explicitly disabled, and
// only when CreditDelay >= 1 (the completeness condition above; CreditDelay
// 0 is a degenerate ablation configuration that also disables sharding).
func coalesceEnabled(par Params) bool {
	return par.Coalesce != CoalesceOff && par.CreditDelay >= 1
}

// insertArg appends a into b keeping ascending order (the replay order).
// Batches are short - same-tick ties at one node - so the shift is cheap.
func insertArg(b []int32, a int32) []int32 {
	b = append(b, a)
	i := len(b) - 1
	for i > 0 && b[i-1] > a {
		b[i] = b[i-1]
		i--
	}
	b[i] = a
	return b
}

// coalPut accumulates one logical event (arg) landing at (node, t) into the
// given side table: at/cnt/args are the full SoA arrays (args flat, stride
// coalArgsCap per slot), spill the engine's overflow list for that kind, and
// pend the per-node armed-packed-batch counter (nil for arrivals, which have
// no converter to gate). Returns true when this is the first entry of a new
// (node, t) batch - the caller then arms the single marker event. One
// function does locate+insert so the slot scan runs once per logical event.
func (e *engine) coalPut(at []int64, cnt []uint8, args []int32, spill *[]coalSpill, pend []uint8, node int32, t int64, arg int32) (armed bool) {
	base := int(node) * coalWays
	slots := at[base : base+coalWays : base+coalWays]
	free := -1
	for w := 0; w < coalWays; w++ {
		switch slots[w] {
		case t:
			n := int(cnt[base+w])
			if n < coalArgsCap {
				a := args[(base+w)*coalArgsCap : (base+w)*coalArgsCap+n+1]
				a[n] = arg
				for i := n; i > 0 && a[i-1] > arg; i-- {
					a[i] = a[i-1]
					a[i-1] = arg
				}
				cnt[base+w] = uint8(n + 1)
				return false
			}
			// Inline capacity exhausted: migrate the batch to the spill
			// list (marker already armed; lookups check spill on slot
			// miss, so the batch stays findable).
			var buf []int32
			if k := len(e.spillFree); k > 0 {
				buf = e.spillFree[k-1]
				e.spillFree = e.spillFree[:k-1]
			}
			buf = append(buf, args[(base+w)*coalArgsCap:(base+w)*coalArgsCap+n]...)
			buf = insertArg(buf, arg)
			*spill = append(*spill, coalSpill{t: t, node: node, args: buf})
			slots[w] = 0
			cnt[base+w] = 0
			if pend != nil {
				pend[node]--
			}
			return false
		case 0:
			if free < 0 {
				free = w
			}
		}
	}
	// A spill batch for (node, t) may exist even when a slot is free (the
	// slot freed after the spill was created), so the spill scan must come
	// before claiming.
	for i := range *spill {
		if sp := &(*spill)[i]; sp.node == node && sp.t == t {
			sp.args = insertArg(sp.args, arg)
			return false
		}
	}
	if free >= 0 {
		slots[free] = t
		args[(base+free)*coalArgsCap] = arg
		cnt[base+free] = 1
		if pend != nil {
			pend[node]++
		}
		return true
	}
	var buf []int32
	if k := len(e.spillFree); k > 0 {
		buf = e.spillFree[k-1]
		e.spillFree = e.spillFree[:k-1]
	}
	*spill = append(*spill, coalSpill{t: t, node: node, args: append(buf, arg)})
	return true
}

// coalFind locates the (node, t) batch a popped marker announces. The slot
// (way >= 0) or spill entry (way < 0, spill index in sidx) stays CLAIMED
// while the caller replays - releasing it early would let a drained dispatch
// claim the slot for a future tick and overwrite the inline args out from
// under the replay loop. coalRelease frees it afterwards. A claimed slot's
// inline args cannot move or grow mid-replay (batches complete before their
// marker pops; see the gate above), and new spill entries appended during
// the replay never move earlier ones, so both views stay valid.
func coalFind(at []int64, cnt []uint8, args []int32, spill []coalSpill, node int32, t int64) (batch []int32, way, sidx int) {
	base := int(node) * coalWays
	for w := 0; w < coalWays; w++ {
		if at[base+w] == t {
			off := (base + w) * coalArgsCap
			return args[off : off+int(cnt[base+w])], w, -1
		}
	}
	for i := range spill {
		if spill[i].node == node && spill[i].t == t {
			return spill[i].args, -1, i
		}
	}
	panic("network: coalesced marker popped with no pending batch")
}

// coalRelease frees the slot or spill entry coalFind returned, recycling the
// spill entry's args backing through spillFree so steady-state runs stay
// allocation-free. pend mirrors coalPut's counter (nil for arrivals).
func (e *engine) coalRelease(at []int64, cnt []uint8, spill *[]coalSpill, pend []uint8, node int32, way, sidx int) {
	if way >= 0 {
		at[int(node)*coalWays+way] = 0
		cnt[int(node)*coalWays+way] = 0
		if pend != nil {
			pend[node]--
		}
		return
	}
	sp := *spill
	last := len(sp) - 1
	e.spillFree = append(e.spillFree, sp[sidx].args[:0])
	sp[sidx] = sp[last]
	sp[last] = coalSpill{}
	*spill = sp[:last]
}

// scheduleCredit accumulates a token return landing at (node, t), arming the
// batch's marker event on first entry. Coalesced-mode replacement for the
// direct evCredit push in sendCredit.
func (e *engine) scheduleCredit(node int32, t int64, arg int32) {
	if e.coalPut(e.credAt, e.credCnt, e.credArgs, &e.credSpill, e.credPend, node, t, arg) {
		e.evq.push(mkEvent(t, node, 0, evCredit))
	}
	e.coalSched[0]++
}

// lazyCredit is one elided token return: tokens that mature at t but need no
// wakeup because their link is provably busy through t (see the lazy credit
// elision argument above).
type lazyCredit struct {
	t   int64
	arg int32
}

// stashCredit records a no-op credit for (node, t) without queueing anything;
// flushLazy applies it before the node's next possible token read. The caller
// has verified outBusy[node, dir] > t.
func (e *engine) stashCredit(node int32, t int64, arg int32) {
	e.lazy[node] = append(e.lazy[node], lazyCredit{t: t, arg: arg})
	e.lazyAdd++
}

// flushLazy applies every stashed credit for node that has matured (tick <=
// now), compacting the rest in place. Called at the top of dispatch whenever
// the node's stash is non-empty: every token read at node happens inside a
// dispatch for node, so application is never observably late.
func (e *engine) flushLazy(node int32) {
	l := e.lazy[node]
	keep := l[:0]
	for _, lc := range l {
		if lc.t > e.now {
			keep = append(keep, lc)
			continue
		}
		e.stats.EventsByKind[evCredit]++
		e.lazyApply++
		dir, vc, cost := creditUnpack(lc.arg)
		e.tok[tokIdx(node, dir, int(vc))] += cost
	}
	e.lazy[node] = keep
}

// convertCredits retires pending credit markers at node that a fresh grant
// just made no-op: the grant extended one link's busy time to busyUntil, and
// a batch at tick t in (now, busyUntil) whose every credit targets a link
// busy through t now satisfies the lazy-elision condition after the fact
// (busy times only extend, so the check is stable). Such a batch's credits
// move to the lazy stash, its marker event is removed from the queue, and
// the ledger is rewritten as if the credits had been elided at creation.
//
// The batch at tick == now converts too - it is the common case: a credit
// lands exactly when its link frees, and a same-tick grant (whose dispatch
// kind sorts before the kind-3 marker) re-busies the link before the marker
// pops. Its stashed credits mature at the next dispatch for node, which is
// strictly later than the marker's pop position (one credit marker per
// (node, tick), and every smaller-kind event at (now, node) sorts before a
// grant site), so no token read lands between the two application points.
// The one (node, now) batch that must NOT convert is the one replayCredits
// is walking right now - already popped, slot claimed - which rpNode/rpT
// identify. Only the packed slots are scanned: spill batches are
// pathological-parameter territory and stay event-driven. The credPend
// counter (armed packed credit batches per node) gates the whole scan: most
// grants happen at nodes with no pending credit marker, and those pay one
// dense byte load instead of touching the slot tables at all.
func (e *engine) convertCredits(node int32, lnk int, busyUntil int64) {
	if e.credPend[node] == 0 {
		return
	}
	base := int(node) * coalWays
	for w := 0; w < coalWays; w++ {
		t := e.credAt[base+w]
		if t == 0 || t < e.now || t >= busyUntil || (t == e.rpT && node == e.rpNode) {
			continue
		}
		args := e.credArgs[(base+w)*coalArgsCap : (base+w)*coalArgsCap+int(e.credCnt[base+w])]
		busy := true
		for _, a := range args {
			dir, _, _ := creditUnpack(a)
			if e.outBusy[lnk+dir] <= t {
				busy = false
				break
			}
		}
		if !busy {
			continue
		}
		k := mkEvent(0, node, 0, evCredit).key
		if !e.evq.remove(t, k, k) {
			continue // marker unexpectedly absent; leave the batch event-driven
		}
		for _, a := range args {
			e.lazy[node] = append(e.lazy[node], lazyCredit{t: t, arg: a})
		}
		n := int64(len(args))
		e.lazyAdd += n
		e.coalSched[0] -= n
		e.credAt[base+w] = 0
		e.credCnt[base+w] = 0
		e.credPend[node]--
	}
}

// scheduleArrive accumulates a packet arrival at (node, t); arg is
// arriveArg(inDir, pid) with pid already re-homed into this engine's pool.
func (e *engine) scheduleArrive(t int64, node int32, arg int32) {
	if e.coalPut(e.arrAt, e.arrCnt, e.arrArgs, &e.arrSpill, nil, node, t, arg) {
		e.evq.push(mkEvent(t, node, 0, evArrive))
	}
	e.coalSched[1]++
}

// replayCredits dispatches one credit marker: every token return accumulated
// for (node, t), in ascending arg order, each preceded by a drain of queued
// events that sort before it (see the replay-order argument above). Logical
// statistics and per-event invariant checks run per replayed credit, exactly
// as the uncoalesced engine would.
func (e *engine) replayCredits(t int64, node int32) {
	e.rpNode, e.rpT = node, t
	args, way, sidx := coalFind(e.credAt, e.credCnt, e.credArgs, e.credSpill, node, t)
	for _, a := range args {
		virt := mkEvent(t, node, a, evCredit)
		for e.evq.len() > 0 && less(e.evq.top(), virt) {
			e.dispatch(e.evq.pop())
		}
		e.stats.EventsByKind[evCredit]++
		e.coalRep[0]++
		dir, vc, cost := creditUnpack(a)
		e.tok[tokIdx(node, dir, int(vc))] += cost
		e.service(node, 1<<dir)
		if e.par.Check {
			if e.vio == nil {
				if v := e.checkNode(node); v != nil {
					e.vio = v
				}
			}
			if e.vio != nil {
				break // first violation aborts the run at the caller
			}
		}
	}
	e.coalRelease(e.credAt, e.credCnt, &e.credSpill, e.credPend, node, way, sidx)
	e.rpNode = -1
}

// replayArrivals dispatches one arrival marker: every packet that finished
// traversing a link into node on tick t, in ascending (inDir, pid) arg order
// - the same order the uncoalesced engine pops, and pid-independent because
// simultaneous arrivals always come from distinct input directions (heap.go).
func (e *engine) replayArrivals(t int64, node int32) {
	args, way, sidx := coalFind(e.arrAt, e.arrCnt, e.arrArgs, e.arrSpill, node, t)
	for _, a := range args {
		virt := mkEvent(t, node, a, evArrive)
		for e.evq.len() > 0 && less(e.evq.top(), virt) {
			e.dispatch(e.evq.pop())
		}
		e.stats.EventsByKind[evArrive]++
		e.coalRep[1]++
		e.arrive(node, arrivePid(a))
		if e.par.Check {
			if e.vio == nil {
				if v := e.checkNode(node); v != nil {
					e.vio = v
				}
			}
			if e.vio != nil {
				break
			}
		}
	}
	e.coalRelease(e.arrAt, e.arrCnt, &e.arrSpill, nil, node, way, sidx)
}

// Cross-shard credit batching. With coalescing on, credits crossing a shard
// boundary travel as a packed word stream per (shard-pair) instead of one
// 56-byte xmsg each: a [tick, count] header pair followed by count words of
// (node << 32 | arg). Generation times are nondecreasing within a window, so
// consecutive same-tick credits - the common case under contention - share
// one header and cost 8 bytes apiece. The receiver decodes the stream at the
// window barrier straight into its accumulator tables.

// creditRec is one decoded cross-shard credit.
type creditRec struct {
	t         int64
	node, arg int32
}

// creditBatch is the packed per-destination-shard credit stream. hdr indexes
// the open tick group's count word (-1 when none); the encoder only appends
// and the receiver resets, under the same barrier discipline as the xmsg
// outboxes (shard.go).
type creditBatch struct {
	words []uint64
	hdr   int
	hdrT  int64
}

func (b *creditBatch) reset() {
	b.words = b.words[:0]
	b.hdr = -1
}

// add appends one credit landing at (node, t). Callers within one window
// present nondecreasing t; a new tick (or a fresh window) opens a new group.
func (b *creditBatch) add(t int64, node, arg int32) {
	if b.hdr < 0 || b.hdrT != t {
		b.words = append(b.words, uint64(t), 0)
		b.hdr = len(b.words) - 1
		b.hdrT = t
	}
	b.words[b.hdr]++
	b.words = append(b.words, uint64(uint32(node))<<32|uint64(uint32(arg)))
}

// decodeInto appends the stream's credits to dst in stream order, reusing
// dst's capacity (the drain path passes a per-engine scratch slice). The
// round-trip with add is fuzzed by FuzzCreditBatch.
func (b *creditBatch) decodeInto(dst []creditRec) []creditRec {
	w := b.words
	for i := 0; i < len(w); {
		t := int64(w[i])
		n := int(w[i+1])
		i += 2
		for j := 0; j < n; j++ {
			word := w[i]
			i++
			dst = append(dst, creditRec{t: t, node: int32(word >> 32), arg: int32(uint32(word))})
		}
	}
	return dst
}

// Params.Coalesce values (see Params).
const (
	// CoalesceOn selects same-tick credit/arrival coalescing (the default;
	// "" means the same).
	CoalesceOn = "on"
	// CoalesceOff disables coalescing: every credit and arrival is its own
	// queued event. Escape hatch and differential oracle; output is
	// byte-identical either way.
	CoalesceOff = "off"
)
