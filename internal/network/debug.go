package network

import (
	"fmt"
	"io"
)

// TraceGrants enables grant-time logging for one output link (debugging).
func (nw *Network) TraceGrants(node int32, dir int) *[]GrantEvent {
	nw.traceNode, nw.traceDir = node, dir
	nw.traceLog = &[]GrantEvent{}
	return nw.traceLog
}

// GrantEvent records one traced link grant.
type GrantEvent struct {
	T    int64
	Size int32
	VC   int8
	Src  int32
	Dst  int32
}

// DumpState writes a human-readable snapshot of every non-empty queue, for
// diagnosing stalls. Intended for tests and debugging tools.
func (nw *Network) DumpState(w io.Writer) {
	inFlight, activeSrc := nw.eng.inFlight, nw.eng.activeSrc
	if nw.sharded {
		inFlight, activeSrc = 0, 0
		for i := range nw.shards {
			inFlight += nw.shards[i].inFlight
			activeSrc += nw.shards[i].activeSrc
		}
	}
	fmt.Fprintf(w, "t=%d inFlight=%d activeSrc=%d\n", nw.Now(), inFlight, activeSrc)
	for n := range nw.routers {
		r := &nw.routers[n]
		hdr := false
		head := func() {
			if !hdr {
				fmt.Fprintf(w, "node %d %v cpuBusy=%v pendValid=%v pendingFw=%d srcDone=%v\n",
					n, nw.coords[n], r.cpuBusy, r.pendValid, len(r.pendingFw), r.srcDone)
				fmt.Fprintf(w, "  tok:")
				for d := 0; d < numDirs; d++ {
					if nw.nbrs[linkIdx(int32(n), d)] >= 0 {
						fmt.Fprintf(w, " d%d=[%d %d %d]", d,
							nw.tok[tokIdx(int32(n), d, 0)], nw.tok[tokIdx(int32(n), d, 1)], nw.tok[tokIdx(int32(n), d, 2)])
					}
				}
				fmt.Fprintf(w, "\n  outBusy:")
				for d := 0; d < numDirs; d++ {
					fmt.Fprintf(w, " %d", nw.outBusy[linkIdx(int32(n), d)])
				}
				fmt.Fprintln(w)
				hdr = true
			}
		}
		dumpQ := func(name string, q *pktQueue) {
			if q.empty() {
				return
			}
			head()
			pid := q.peek()
			p := &nw.engineFor(int32(n)).pkts[pid]
			fmt.Fprintf(w, "  %s: %d pkts %dB, head {dst=%d src=%d size=%d hops=%v vc=%d inDir=%d det=%v kind=%d}\n",
				name, q.count, q.bytes, p.dst, p.src, p.size, p.hops, p.vc, p.inDir, p.det, p.kind)
		}
		for d := 0; d < numDirs; d++ {
			for vc := 0; vc < NumVC; vc++ {
				dumpQ(fmt.Sprintf("in[%d][%d]", d, vc), &r.in[d][vc])
			}
		}
		for i := range r.inj {
			dumpQ(fmt.Sprintf("inj[%d]", i), &r.inj[i])
		}
		dumpQ("recv", &r.recv)
	}
}
