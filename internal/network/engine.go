package network

import (
	"fmt"
	"math/bits"

	"alltoall/internal/torus"
)

const maxInt64 = int64(1<<63 - 1)

// engine is the event-processing context for a contiguous range of nodes.
// The serial path runs one engine owning every node; RunSharded runs one per
// shard, each with its own event heap, packet pool, clock, and statistics,
// so workers share no mutable state except the window-barrier mailboxes.
// Routers are shard-private by construction: every router mutation happens
// at the owning node (token returns, which the serial engine used to apply
// directly at the upstream router, are carried by evCredit events instead).
type engine struct {
	nw      *Network
	routers []router // shared backing array; this engine touches [lo,hi) only
	par     Params
	id      int32
	lo, hi  int32 // owned node range [lo, hi)

	evq     eventQueue
	now     int64
	pkts    []packet
	freePkt int32 // head of free list threaded through pkts[i].dst
	stats   *Stats

	// Cached headers of the Network's SoA router state (see network.go):
	// the hot loop reads these through the engine to skip the nw pointer
	// chase. All engines share the same backing arrays; each touches only
	// its own nodes' entries.
	outBusy []int64
	tok     []int32
	nbrs    []int32
	occ     []uint32
	svcAt   []int64
	svcMask []uint8

	// Credit/arrival coalescing state (see coalesce.go). coal caches
	// coalesceEnabled(par); the SoA slot tables are shared Network arrays
	// (node-partitioned, like the router SoA above); the spill lists and the
	// cross-shard credit streams are engine-private.
	coal      bool
	credAt    []int64
	arrAt     []int64
	credCnt   []uint8 // inline arg count per slot (args flat, stride coalArgsCap)
	arrCnt    []uint8
	credArgs  []int32
	arrArgs   []int32
	credPend  []uint8 // [node] armed packed credit batches; gates convertCredits
	credSpill []coalSpill
	arrSpill  []coalSpill
	spillFree [][]int32
	credOut   []creditBatch  // per destination shard; drained at window barriers
	credRecs  []creditRec    // decode scratch for inbound credit streams
	coalSched [2]int64       // ledger: logical credits/arrivals accumulated
	coalRep   [2]int64       // ledger: logical credits/arrivals replayed
	lazy      [][]lazyCredit // per-node elided no-op credits (shared Network array)
	lazyAdd   int64          // ledger: credits elided (stashed without an event)
	lazyApply int64          // ledger: elided credits matured and applied

	// Fault-injection state (see fault.go). faulty caches whether the run has
	// a non-empty fault schedule; off, none of the arrays below is touched
	// and every fault branch on the hot path is a predicted-false check. The
	// arrays are shared Network SoA, node-partitioned like the router state.
	faulty    bool
	deadMask  []uint8 // [node] output directions currently down
	killMask  []uint8 // [node] output directions permanently killed
	stretch   []int32 // [linkIdx] wire-occupancy multiplier (1 = healthy)
	downSince []int64 // [linkIdx] outage start, -1 while up
	reviveAt  []int64 // [linkIdx] scheduled Up time of the current outage

	// contTok/entTok summarize dynamic-VC token availability per output
	// direction for the arbitration pass in flight (see tokMasks); they are
	// recomputed wherever freeOutputs is and after every grant, the only
	// mid-pass token mutation.
	contTok uint8
	entTok  uint8

	// sgNode/sgT identify the serviceGroup dispatch currently on the stack
	// (sgNode -1 when none): its own hard wakeup is mid-dispatch rather than
	// queued, so the re-grant elision in tryRoute skips the removal scan.
	// rpNode/rpT likewise identify the credit batch replayCredits is walking
	// (rpNode -1 when none): its slot stays claimed mid-replay, and
	// convertCredits must not retire it out from under the walk.
	sgNode int32
	sgT    int64
	rpNode int32
	rpT    int64

	inFlight  int64
	activeSrc int

	// obs taps the hot path for instrumentation (nil = off: one predicted
	// branch per hook site). cancel aborts the run when readable; the
	// serial engine polls it every few thousand events, the sharded engine
	// once per window barrier.
	obs    Sink
	cancel <-chan struct{}

	// Sharded-mode state; shardOf is nil for the serial engine, which makes
	// every destination local.
	shardOf []int16
	out     [][]xmsg // outbox per destination shard, drained at window barriers
	inMin   int64    // published heap minimum for the window-size vote
	err     error

	// Async conservative engine state (shard_async.go): async caches whether
	// this run uses the published-clock protocol; ax is the engine-side
	// machinery. The sync* counters feed SyncStats under both protocols
	// (advances = horizons or windows, waits = blocked episodes or barrier
	// crossings, xEv/xBytes = boundary traffic).
	async        bool
	ax           engineAsync
	syncAdvances int64
	syncWaits    int64
	syncWaitNs   int64
	syncXEv      int64
	syncXBytes   int64

	// vio holds the first invariant violation caught inside a dispatch
	// (sites that cannot return an error directly); processUntil surfaces
	// it at the end of the offending event. Only written when par.Check.
	vio error

	// pad keeps adjacent engines in Network.shards off each other's cache
	// lines; the clock and heap header above are written every event.
	pad [64]byte //nolint:unused
}

func (e *engine) init(nw *Network, id, lo, hi int32, stats *Stats) {
	e.nw = nw
	e.routers = nw.routers
	e.par = nw.Par
	e.id = id
	e.lo, e.hi = lo, hi
	e.stats = stats
	e.freePkt = -1
	e.outBusy = nw.outBusy
	e.tok = nw.tok
	e.nbrs = nw.nbrs
	e.occ = nw.occ
	e.svcAt = nw.svcAt
	e.svcMask = nw.svcMask
	e.coal = coalesceEnabled(nw.Par)
	e.credAt = nw.credAt
	e.arrAt = nw.arrAt
	e.credCnt = nw.credCnt
	e.arrCnt = nw.arrCnt
	e.credArgs = nw.credArgs
	e.arrArgs = nw.arrArgs
	e.credPend = nw.credPend
	e.lazy = nw.lazyCred
	e.sgNode = -1
	e.rpNode = -1
	e.evq.init(nw.Par)
}

// setParams installs new runtime parameters on a recycled engine (see
// Network.ResetParams): the cached Params copy, the coalescing gate, and the
// event-queue structure (whose calendar horizon is parameter-derived) must
// all re-derive. The queue is drained first so a structure switch cannot
// strand stale events in the inactive implementation.
func (e *engine) setParams(par Params) {
	e.par = par
	e.coal = coalesceEnabled(par)
	e.evq.reset()
	e.evq.init(par)
}

// resetRunState clears everything a run accumulates, keeping allocations
// (heap array, packet pool, outboxes) for the next run.
func (e *engine) resetRunState() {
	if e.nw == nil {
		return
	}
	e.evq.reset()
	e.now = 0
	e.pkts = e.pkts[:0]
	e.freePkt = -1
	e.inFlight = 0
	e.activeSrc = 0
	for i := range e.out {
		e.out[i] = e.out[i][:0]
	}
	for i := range e.credOut {
		e.credOut[i].reset()
	}
	for i := range e.credSpill {
		e.spillFree = append(e.spillFree, e.credSpill[i].args[:0])
		e.credSpill[i] = coalSpill{}
	}
	e.credSpill = e.credSpill[:0]
	for i := range e.arrSpill {
		e.spillFree = append(e.spillFree, e.arrSpill[i].args[:0])
		e.arrSpill[i] = coalSpill{}
	}
	e.arrSpill = e.arrSpill[:0]
	e.coalSched = [2]int64{}
	e.coalRep = [2]int64{}
	e.lazyAdd, e.lazyApply = 0, 0
	e.sgNode, e.sgT = -1, 0
	e.rpNode, e.rpT = -1, 0
	e.faulty = false
	e.inMin = 0
	e.err = nil
	e.vio = nil
	e.async = false
	e.ax.reset()
	e.syncAdvances, e.syncWaits, e.syncWaitNs = 0, 0, 0
	e.syncXEv, e.syncXBytes = 0, 0
	e.obs = nil
	e.cancel = nil
	if e.stats != nil && e.stats != &e.nw.stats {
		e.stats.reset()
	}
}

func (e *engine) allocPkt() int32 {
	if e.freePkt >= 0 {
		pid := e.freePkt
		e.freePkt = e.pkts[pid].dst
		return pid
	}
	e.pkts = append(e.pkts, packet{})
	return int32(len(e.pkts) - 1)
}

func (e *engine) freePacket(pid int32) {
	e.pkts[pid].dst = e.freePkt
	e.freePkt = pid
}

// processUntil pops and dispatches events with t < tend in the strict
// (t, node, kind, arg) order. It is the whole engine for a serial run
// (tend = maxInt64) and one window's worth of work for a sharded one.
func (e *engine) processUntil(tend, maxTime int64) error {
	poll := 0
	for e.evq.len() > 0 {
		if e.cancel != nil {
			if poll++; poll&8191 == 0 {
				select {
				case <-e.cancel:
					return fmt.Errorf("%w at t=%d (%d events in queue)", ErrCanceled, e.now, e.evq.len())
				default:
				}
			}
		}
		if tend != maxInt64 && e.evq.top().t >= tend {
			return nil
		}
		ev := e.evq.pop()
		if ev.t < e.now {
			return fmt.Errorf("network: time went backwards (%d < %d)", ev.t, e.now)
		}
		e.now = ev.t
		if e.now > maxTime {
			return fmt.Errorf("%w %d (in flight %d, active sources %d)",
				ErrMaxTime, maxTime, e.inFlight, e.activeSrc)
		}
		e.dispatch(ev)
		if e.par.Check && e.vio != nil {
			return e.vio
		}
	}
	return nil
}

// dispatch executes one popped event. Split from processUntil so the
// coalesced replay loops (coalesce.go) can drain queued events that sort
// before a logical credit through the identical code path; the recursion is
// bounded at depth one because drained events at a replaying (t, node) are
// always plain service/CPU kinds, never another marker. With coalescing on,
// evArrive/evCredit events are per-(node, tick) markers whose handlers count
// the logical events they replay; EventsByKind therefore always counts
// logical simulator actions (identical with coalescing on or off) while
// QueuedEvents counts actual queue pops.
func (e *engine) dispatch(ev event) {
	kind := ev.kind()
	node := ev.node()
	e.stats.QueuedEvents++
	// Elided no-op credits mature before any possible token read at node
	// (every read happens inside a dispatch for node; see coalesce.go).
	if e.coal && len(e.lazy[node]) != 0 {
		e.flushLazy(node)
	}
	switch kind {
	case evArrive:
		if e.coal {
			e.replayArrivals(ev.t, node)
			return
		}
		e.stats.EventsByKind[evArrive]++
		e.arrive(node, arrivePid(ev.arg()))
	case evService:
		e.stats.EventsByKind[evService]++
		if ev.arg() != 0 {
			// A link-free wakeup, possibly standing in for several links
			// of this node that freed on the same tick (tryRoute pushes
			// at most one such event per (node, t)); the freed set is
			// re-derived from the busy times at dispatch.
			e.serviceGroup(ev.t, node)
		} else {
			// A soft coalesced wakeup: consume the pending-service slot.
			if e.svcMask[node]&svcPendBit != 0 && e.svcAt[node] <= ev.t {
				mask := e.svcMask[node] & maskAll
				e.svcMask[node] = 0
				if mask != 0 {
					e.service(node, mask)
				}
			}
		}
	case evCPUKick:
		e.stats.EventsByKind[evCPUKick]++
		e.cpuDoneOrKick(node)
	case evCredit:
		if e.coal {
			e.replayCredits(ev.t, node)
			return
		}
		e.stats.EventsByKind[evCredit]++
		dir, vc, cost := creditUnpack(ev.arg())
		e.tok[tokIdx(node, dir, int(vc))] += cost
		e.service(node, 1<<dir)
	case evFault:
		e.stats.EventsByKind[evFault]++
		e.applyFault(node, ev.arg())
	}
	if e.par.Check && e.vio == nil {
		// Events mutate only the dispatched node's router, so a node-local
		// audit after each event covers every mutation.
		if v := e.checkNode(node); v != nil {
			e.vio = v
		}
	}
}

// sendArrive delivers a routed packet to its next node: straight onto the
// local heap when this engine owns dst, else into the mailbox for dst's
// shard (the packet body travels by value; the destination engine assigns a
// slot from its own pool when it drains the mailbox at the window barrier).
func (e *engine) sendArrive(eta int64, dst, pid int32, p *packet) {
	if e.shardOf != nil {
		if s := e.shardOf[dst]; int32(s) != e.id {
			e.syncXEv++
			e.syncXBytes += xmsgBytes
			if e.async {
				m := xmsg{t: eta, node: dst, kind: evArrive, pkt: *p}
				e.ax.st.send(e.id, int32(s), &m)
			} else {
				e.out[s] = append(e.out[s], xmsg{t: eta, node: dst, kind: evArrive, pkt: *p})
			}
			e.inFlight--
			e.freePacket(pid)
			return
		}
	}
	if e.coal {
		e.scheduleArrive(eta, dst, arriveArg(p.inDir, pid))
		return
	}
	e.evq.push(mkEvent(eta, dst, arriveArg(p.inDir, pid), evArrive))
}

// sendCredit schedules a token return at the upstream router. Unlike the
// wakeup-only scheduleService path this must not coalesce into an earlier
// pending event: the tokens become visible exactly at t, in both engines,
// which is what gives the sharded engine its CreditDelay of lookahead.
func (e *engine) sendCredit(up int32, dir int, vc int8, cost int32) {
	t := e.now + e.par.CreditDelay
	arg := creditArg(dir, vc, cost)
	if e.shardOf != nil {
		if s := e.shardOf[up]; int32(s) != e.id {
			e.syncXEv++
			if e.async {
				// Async credits travel as individual messages: the batched
				// word stream below needs nondecreasing generation times
				// within one drain span, which barrierless draining cannot
				// promise. A full xmsg per credit instead of 8 bytes is the
				// price of never waiting; SyncStats.CrossShardBytes makes
				// the tradeoff visible.
				e.syncXBytes += xmsgBytes
				m := xmsg{t: t, node: up, arg: arg, kind: evCredit}
				e.ax.st.send(e.id, int32(s), &m)
				return
			}
			if e.coal {
				// Batched word stream: tick-grouped (generation times are
				// nondecreasing within a window), 8 bytes per credit instead
				// of a full xmsg; decoded into the receiver's accumulator
				// tables at the window barrier (drainInboxes).
				e.syncXBytes += creditWordBytes
				e.credOut[s].add(t, up, arg)
				return
			}
			e.syncXBytes += xmsgBytes
			e.out[s] = append(e.out[s], xmsg{t: t, node: up, arg: arg, kind: evCredit})
			return
		}
	}
	if e.coal {
		// A credit whose link is still transmitting at t cannot grant there:
		// its event would be a pure no-op (service early-returns on a busy
		// masked link), so it needs no event at all - just a lazy token add
		// before the link's own free-time service pass. A link down through t
		// is a no-op for the same reason (a dead direction is outside
		// freeMask for its whole outage; see deadThrough).
		if e.outBusy[linkIdx(up, dir)] > t || e.deadThrough(up, dir, t) {
			e.stashCredit(up, t, arg)
			return
		}
		e.scheduleCredit(up, t, arg)
		return
	}
	e.evq.push(mkEvent(t, up, arg, evCredit))
}

func (e *engine) arrive(node, pid int32) {
	p := &e.pkts[pid]
	if e.faulty {
		// Stranding check before the queue-slot header is built: a packet
		// whose every minimal direction is down at this node flips to the
		// long way around the ring (fault.go).
		e.rerouteFresh(node, p)
	}
	r := &e.routers[node]
	qIdx := int(p.inDir)*NumVC + int(p.vc)
	q := &r.in[p.inDir][p.vc]
	q.push(pktRef{size: int16(p.size), hops: p.hops, vcIn: packVCIn(p.vc, p.inDir),
		want: p.want, det: p.det}, pid, vcCost(p.vc, p.size))
	e.occ[node] |= 1 << qIdx
	// A push frees no resources, so the only new candidate move is the
	// arrived packet itself; a targeted attempt on this queue suffices.
	if win := e.window(p.vc); q.count <= win {
		freeMask := e.freeOutputs(node)
		e.contTok, e.entTok = e.tokMasks(node)
		e.tryQueue(node, r, q, qIdx, win, &freeMask, maskAll)
	}
}

// Service wake masks: one bit per output direction, plus a bit meaning
// "reception FIFO drained".
const (
	maskRecv uint8 = 1 << 6
	maskAll  uint8 = 0x7f

	// svcPendBit marks, in the svcMask SoA byte, that a coalesced service
	// pass is pending at svcAt. Packing the flag into the mask byte keeps
	// the scheduleService fast path (called from noteBlocked on every
	// failed arbitration pass) to two small flat-array loads instead of a
	// dependent load into the ~200-byte router struct.
	svcPendBit uint8 = 1 << 7
)

// window returns the arbitration lookahead for a VC index (-1 = injection
// FIFO).
func (e *engine) window(vc int8) int32 {
	if vc == VCDyn0 || vc == VCDyn1 {
		return e.par.VCLookahead
	}
	return 1
}

func (e *engine) freeOutputs(node int32) uint8 {
	var m uint8
	now := e.now
	base := linkIdx(node, 0)
	nbrs := e.nbrs[base : base+numDirs]
	out := e.outBusy[base : base+numDirs]
	for d := 0; d < numDirs; d++ {
		if nbrs[d] >= 0 && out[d] <= now {
			m |= 1 << d
		}
	}
	if e.faulty {
		// A down link never grants: masking it here starves every arbitration
		// path at once (tryQueue, tryRoute, and the escape fallback all gate
		// on freeMask), which is the single chokepoint that makes graceful
		// degradation a routing property instead of scattered special cases.
		m &^= e.deadMask[node]
	}
	return m
}

// tokMasks summarizes the node's dynamic-VC token state per output
// direction: contTok has bit o set when some dynamic VC of output o holds at
// least one flit-credit (the threshold for traffic continuing along its
// input dimension), entTok the same at the dimension-entry threshold
// max(PacketGranule, InjectTokens) (turns and injections). Together with
// freeMask they decide candidate EXISTENCE exactly as tryRoute's scan does,
// so a packet whose wanted outputs all fail both masks - and whose escape
// clock has not expired - can skip tryRoute outright: ~95% of arbitration
// visits fail, and this keeps those failures off the token array's cache
// lines, paying the 12 loads once per pass instead of per queued packet.
func (e *engine) tokMasks(node int32) (contTok, entTok uint8) {
	base := linkIdx(node, 0) * NumVC
	toks := e.tok[base : base+numDirs*NumVC]
	entNeed := e.par.InjectTokens
	if entNeed < PacketGranule {
		entNeed = PacketGranule
	}
	for o := 0; o < numDirs; o++ {
		hi := toks[o*NumVC]
		if t := toks[o*NumVC+1]; t > hi {
			hi = t
		}
		if hi >= PacketGranule {
			contTok |= 1 << o
		}
		if hi >= entNeed {
			entTok |= 1 << o
		}
	}
	return
}

// tryQueue attempts to move packets from the first `win` entries of q.
// Returns true if at least one packet moved. freeMask is updated as links
// are claimed. Only packets whose desires intersect mask are considered;
// once a packet is popped, the mask widens for the rest of this queue (the
// pop is itself the wakeup for the packets behind it).
func (e *engine) tryQueue(node int32, r *router, q *pktQueue, qIdx int, win int32, freeMask *uint8, mask uint8) bool {
	moved := false
	for i := int32(0); i < q.count && i < win; {
		rf := q.at(i)
		if rf.want == 0 { // no hops remain: the packet is at its destination
			size := int32(rf.size)
			if !r.recv.fits(size) {
				i++
				continue
			}
			ref := *rf // rf aliases the ring slot removeAt is about to shuffle
			vc, inDir := rf.vc(), rf.inDir()
			cost := size
			if inDir >= 0 {
				cost = vcCost(vc, size)
			}
			pid := q.idAt(i)
			q.removeAt(i, cost)
			if inDir >= 0 {
				e.creditUpstream(node, inDir, vc, cost)
			} else {
				e.maybeRunCPU(node)
			}
			r.recv.push(ref, pid, size)
			if e.obs != nil {
				e.obs.OnRecvFIFO(node, r.recv.bytes)
			}
			e.maybeRunCPU(node)
			moved = true
			mask = maskAll
			continue // entry i replaced by the next packet
		}
		if rf.want&mask == 0 {
			i++
			continue
		}
		if rf.want&*freeMask == 0 {
			e.noteBlocked(node, rf, q.count, win)
			i++
			continue
		}
		// Certain-failure gate: a grant needs a wanted free output whose
		// dynamic VCs pass the token threshold (entry level, or flit level
		// for the packet's own input dimension) - or the bubble escape,
		// which needs an expired escape clock. tryRoute fails without side
		// effects when none holds, so skipping the call is byte-identical;
		// the masks mirror its candidate conditions exactly (see tokMasks).
		if cand := rf.want & *freeMask; cand&e.entTok == 0 {
			cont := false
			if inDir := rf.inDir(); inDir >= 0 {
				cont = cand&e.contTok&(uint8(3)<<(uint8(inDir)&^1)) != 0
			}
			if !cont && (rf.blocked == 0 || e.now-rf.blocked < e.par.EscapeDelay) {
				e.noteBlocked(node, rf, q.count, win)
				i++
				continue
			}
		}
		if granted := e.tryRoute(node, rf, q, i, *freeMask); granted >= 0 {
			*freeMask &^= 1 << granted
			e.contTok, e.entTok = e.tokMasks(node)
			vc, inDir := rf.vc(), rf.inDir()
			cost := int32(rf.size)
			if inDir >= 0 {
				cost = vcCost(vc, cost)
			}
			q.removeAt(i, cost)
			if inDir >= 0 {
				e.creditUpstream(node, inDir, vc, cost)
			} else {
				e.maybeRunCPU(node)
			}
			moved = true
			mask = maskAll
			continue
		}
		e.noteBlocked(node, rf, q.count, win)
		i++
	}
	if q.count == 0 {
		e.occ[node] &^= 1 << qIdx
	}
	return moved
}

// noteBlocked starts the escape-eligibility clock for a packet that failed
// arbitration, and guarantees a retry once the clock expires. qCount and win
// describe the queue the packet sits in (depth and arbitration lookahead) so
// the observer can tell a lone stalled packet from true head-of-line
// blocking with victims waiting behind the window.
func (e *engine) noteBlocked(node int32, rf *pktRef, qCount, win int32) {
	if rf.blocked == 0 {
		rf.blocked = e.now
	}
	if e.obs != nil {
		e.obs.OnBlocked(e.now, node, rf.inDir(), rf.vc(), rf.want, rf.blocked, qCount, win)
	}
	// Re-arm the escape-maturity wakeup on every failed pass: a coalesced
	// earlier wakeup will land here again and reschedule, so the chain
	// always reaches the maturity time even when individual events are
	// dropped by coalescing.
	if mature := rf.blocked + e.par.EscapeDelay; mature > e.now {
		e.scheduleService(node, mature, rf.want)
	}
}

// scheduleService enqueues a coalesced arbitration pass for node at time t,
// for the wake reasons in mask. Every caller wakes a node about a condition
// of that same node (recv space freed, escape maturity), so merging a later
// nudge into an earlier pending one is safe - the earlier pass sees the
// same local state. Token returns are NOT routed through here: they carry
// state, not just a wakeup, and run at their exact time via evCredit.
func (e *engine) scheduleService(node int32, t int64, mask uint8) {
	sm := e.svcMask[node]
	if sm&svcPendBit != 0 {
		if e.svcAt[node] <= t {
			e.svcMask[node] = sm | mask
			return
		}
		if e.coal {
			// Retargeting earlier strands the later wakeup: remove its queued
			// event instead of letting it pop stale, counting the logical
			// no-op pop so EventsByKind stays independent of Coalesce. In
			// coalesced mode an armed slot always has exactly one queued
			// event at svcAt (every consume site removes; see drainSoft).
			k := mkEvent(0, node, 0, evService).key
			if e.evq.remove(e.svcAt[node], k, k) {
				e.stats.EventsByKind[evService]++
			}
		}
	}
	e.svcMask[node] = sm | mask | svcPendBit
	e.svcAt[node] = t
	e.evq.push(mkEvent(t, node, 0, evService))
}

// service runs router arbitration at a node until no packet can move,
// considering packets whose desires intersect mask.
func (e *engine) service(node int32, mask uint8) {
	r := &e.routers[node]
	nQ := numDirs*NumVC + len(r.inj)
	for {
		freeMask := e.freeOutputs(node)
		if freeMask&mask == 0 && mask&maskRecv == 0 {
			return
		}
		e.contTok, e.entTok = e.tokMasks(node)
		progress := false
		r.rrCursor++
		rot := int(r.rrCursor) % nQ
		// Visit only non-empty queues, starting the rotation at rot for
		// fairness: bits >= rot first, then the wrap-around remainder.
		occ := e.occ[node]
		high := occ & (^uint32(0) << rot)
		for _, part := range [2]uint32{high, occ &^ (^uint32(0) << rot)} {
			for part != 0 {
				idx := bits.TrailingZeros32(part)
				part &^= 1 << idx
				var q *pktQueue
				var win int32 = 1
				if idx < numDirs*NumVC {
					vc := idx % NumVC
					q = &r.in[idx/NumVC][vc]
					if vc != VCBubble {
						win = e.par.VCLookahead
					}
				} else {
					q = &r.inj[idx-numDirs*NumVC]
				}
				if q.count == 0 {
					continue
				}
				// Queue-level skip, off the ring's cache lines: when no
				// queued want intersects the wake mask and nothing is
				// deliverable here, a visit would scan every entry and
				// no-op without side effects (entries failing the mask
				// check are passed over silently - no escape clock, no
				// observer callback), so eliding it is byte-identical.
				if q.wantOR&mask == 0 && q.nDeliv == 0 {
					continue
				}
				if e.tryQueue(node, r, q, idx, win, &freeMask, mask) {
					progress = true
				}
			}
		}
		if !progress {
			return
		}
		mask = maskAll // any move may have enabled further moves
	}
}

// serviceGroup dispatches one coalesced link-free wakeup: every output link
// of node whose busy time lands exactly on tick t freed here (links freed
// earlier were announced by their own earlier events; a link re-granted
// meanwhile has moved its busy time past t and is skipped, exactly as its
// stale per-direction event would have found the link busy and returned).
// The pass sequence replays the uncoalesced engine byte for byte: separate
// events sorted by arg, i.e. one arbitration pass per direction in ascending
// order, with a soft wakeup armed at this same tick - whose arg 0 sorts
// before any direction bit - draining first as its own pass. Only the event
// count changes; every service pass, cursor rotation, and observer callback
// is identical, which is what keeps golden outputs and the serial/sharded
// identity oracle stable across the coalescing optimization.
func (e *engine) serviceGroup(t int64, node int32) {
	e.sgNode, e.sgT = node, t
	lnk := linkIdx(node, 0)
	for d := 0; d < numDirs; d++ {
		if e.outBusy[lnk+d] != t {
			continue
		}
		e.drainSoft(t, node)
		e.service(node, 1<<d)
	}
	// A soft wakeup re-armed during the final pass would have popped as its
	// own arg-0 event right after this one; drain it the same way.
	e.drainSoft(t, node)
	e.sgNode = -1
}

// drainSoft consumes every due coalesced service slot at node (svcAt <= t),
// running the pending pass exactly as the slot's own arg-0 dispatch would.
// Without coalescing, the event scheduleService pushed for a drained slot
// still pops later, finds the slot empty, and no-ops; in coalesced mode that
// stale pop is pure queue traffic, so the event is removed as the slot is
// consumed (counting the logical no-op pop to keep EventsByKind independent
// of Coalesce). The removal maintains the coalesced-mode invariant that an
// armed slot has exactly one queued arg-0 event, at svcAt - which is why the
// due slot here always has svcAt == t: an armed earlier-tick slot would mean
// its event popped without consuming it, which the invariant rules out.
func (e *engine) drainSoft(t int64, node int32) {
	for e.svcMask[node]&svcPendBit != 0 && e.svcAt[node] <= t {
		if e.coal && e.svcAt[node] == t {
			k := mkEvent(0, node, 0, evService).key
			if e.evq.remove(t, k, k) {
				e.stats.EventsByKind[evService]++
			}
		}
		mask := e.svcMask[node] & maskAll
		e.svcMask[node] = 0
		if mask != 0 {
			e.service(node, mask)
		}
	}
}

// creditUpstream returns the token for the input VC slot that a departing
// packet occupied at node (cost = vcCost of the packet). The token lands at
// the upstream router CreditDelay later as an evCredit event (which also
// runs an arbitration pass there); inDir is the direction of the input
// port, i.e. the direction from this node toward the upstream sender.
func (e *engine) creditUpstream(node int32, inDir, vc int8, cost int32) {
	up := e.nbrs[linkIdx(node, int(inDir))]
	if up < 0 {
		panic("network: credit for nonexistent upstream link")
	}
	e.sendCredit(up, oppositeDir(int(inDir)), vc, cost)
}

// tryRoute attempts to start the queued packet rf on an output link of node
// whose bit is set in freeMask. On success the packet is committed to the
// wire (arrival event scheduled) and the granted direction is returned; the
// caller pops it from its queue. Returns -1 on failure. Candidate selection
// runs entirely on the queue-slot header; the packet pool and the queue's
// id ring (rf sits at q slot qi) are loaded only to commit a grant, so
// failed attempts stay off those cache lines.
func (e *engine) tryRoute(node int32, rf *pktRef, q *pktQueue, qi int32, freeMask uint8) int {
	lnk := linkIdx(node, 0)
	inDir := rf.inDir()
	toks := e.tok[lnk*NumVC : (lnk+numDirs)*NumVC]
	injTok := e.par.InjectTokens
	// Adaptive candidates on the dynamic VCs (JSQ on tokens). A grant only
	// requires one flit-credit (32 bytes) free: with virtual cut-through
	// and flit-granular flow control a packet may stream into a buffer
	// that is draining concurrently, so occupancy can overshoot by up to
	// one packet (the overshoot models stalled bytes held on the upstream
	// wire). Tokens go negative to bound the overshoot.
	// Candidate outputs on the dynamic VCs. Adaptive packets may take any
	// profitable direction (JSQ across the dynamic VCs); deterministic
	// packets are restricted to strict dimension order (first unfinished
	// dimension only) but still use the dynamic channels - a packet-atomic
	// simulation of the pure bubble-VC deterministic mode degenerates into
	// slot-conveyor throughput that flit-level hardware does not exhibit.
	bestDir, bestVC, bestTok := -1, -1, int32(-1<<30)
	escJoining := false
	for d := torus.Dim(0); d < torus.NumDims; d++ {
		h := rf.hops[d]
		if h == 0 {
			continue
		}
		o := dirOf(d, int(h))
		if freeMask&(1<<o) != 0 {
			// Packets continuing along the same dimension stream on a
			// single flit-credit; packets entering a dimension (turns and
			// injections) need InjectTokens free. Giving dimension-
			// continuing traffic priority keeps free slack circulating
			// along each dimension chain instead of being swallowed by
			// entrants, which would collapse saturated chains into a
			// one-hole conveyor.
			need := int32(PacketGranule)
			if (inDir < 0 || dimOfDir(int(inDir)) != d) && injTok > need {
				need = injTok
			}
			for vc := 0; vc < 2; vc++ {
				if t := toks[o*NumVC+vc]; t >= need && t > bestTok {
					bestDir, bestVC, bestTok = o, vc, t
				}
			}
		}
		if rf.det {
			break // dimension order: only the first unfinished dimension
		}
	}
	if bestDir < 0 {
		// Bubble escape: a last resort for packets that have been blocked
		// here longer than EscapeDelay.
		if rf.blocked == 0 || e.now-rf.blocked < e.par.EscapeDelay {
			return -1
		}
		// Strict dimension order (X, then Y, then Z).
		var o = -1
		for d := torus.Dim(0); d < torus.NumDims; d++ {
			if rf.hops[d] != 0 {
				o = dirOf(d, int(rf.hops[d]))
				break
			}
		}
		if o < 0 || freeMask&(1<<o) == 0 {
			return -1
		}
		// The bubble rule, slot-quantized: a packet continuing around the
		// same ring needs one free slot; a packet joining the ring (from an
		// injection FIFO, a dynamic VC, or another dimension) must leave a
		// free full-packet bubble, i.e. needs two.
		need := int32(MaxPacketBytes)
		joining := rf.vc() != VCBubble || inDir < 0 || dimOfDir(int(inDir)) != dimOfDir(o)
		if joining {
			need += MaxPacketBytes
		}
		if toks[o*NumVC+VCBubble] < need {
			return -1
		}
		bestDir, bestVC, escJoining = o, VCBubble, joining
	}

	o, vc := bestDir, bestVC
	size := int32(rf.size)
	e.tok[(lnk+o)*NumVC+vc] -= vcCost(int8(vc), size)
	if e.par.Check && vc == VCBubble {
		e.checkBubbleGrant(node, o, escJoining, e.tok[(lnk+o)*NumVC+vc])
	}
	// Wire occupancy: size bytes at one unit per byte, stretched on a
	// degraded link (FaultDegrade). Stretch only ever lengthens occupancy,
	// so every cross-node delay keeps its healthy minimum and the sharded
	// window stays safe. A grant onto a down link is impossible by
	// construction (freeOutputs masks it); the checker re-verifies.
	wire := int64(size)
	if e.faulty {
		if s := e.stretch[lnk+o]; s > 1 {
			wire *= int64(s)
		}
		if e.par.Check && e.deadMask[node]&(1<<o) != 0 {
			e.checkLiveGrant(node, o)
		}
	}
	busyUntil := e.now + wire
	prevBusy := e.outBusy[lnk+o]
	e.outBusy[lnk+o] = busyUntil
	e.stats.LinkBusy[lnk+o] += wire
	e.stats.GrantsByVC[vc]++
	if e.obs != nil {
		e.obs.OnGrant(e.now, node, o, int8(vc), size)
	}
	if w := e.par.UtilSampleWindow; w > 0 {
		e.stats.noteWindowBusy(e.now, w, int32(wire))
	}
	pid := q.idAt(qi)
	p := &e.pkts[pid] // grant commit: the packet now changes state
	if e.nw.traceLog != nil && node == e.nw.traceNode && o == e.nw.traceDir {
		*e.nw.traceLog = append(*e.nw.traceLog, GrantEvent{T: e.now, Size: p.size, VC: int8(vc), Src: p.src, Dst: p.dst})
	}
	d := dimOfDir(o)
	if p.hops[d] > 0 {
		p.hops[d]--
	} else {
		p.hops[d]++
	}
	p.vc = int8(vc)
	p.inDir = int8(oppositeDir(o))
	p.blocked = 0
	p.want = wantMask(p.hops, p.det)
	// Virtual cut-through: a transit packet is eligible for its next hop as
	// soon as its 32-byte header chunk lands; only at its final hop (where
	// it is consumed) must the tail arrive first. The outgoing link can
	// start re-serializing immediately because all links run at the same
	// rate, so bytes arrive exactly as they are needed. That equal-rate
	// argument fails on a degraded link (a full-speed downstream hop would
	// outrun the trickling tail), so stretched transfers forward
	// store-and-forward: the tail's arrival defines eligibility.
	eta := e.now + wire + e.par.RouterDelay
	if p.want != 0 && !e.par.StoreForward && wire == int64(size) {
		eta = e.now + PacketGranule + e.par.RouterDelay
	}
	// The link-free wakeup is a hard deadline: an earlier coalesced pass
	// would find the link still busy and discover nothing, so it cannot be
	// merged into the soft-coalescing slot. It can, however, share one event
	// with any other link of this node freeing on the same tick: the
	// dispatch (serviceGroup) re-derives the freed set from the busy times.
	// If some other direction already ends at busyUntil, its grant pushed
	// the shared event - a link ending on a future tick cannot have been
	// re-granted, so that event is still pending - and this push is elided.
	dup := false
	for d := 0; d < numDirs; d++ {
		if d != o && e.outBusy[lnk+d] == busyUntil {
			dup = true
			break
		}
	}
	if !dup {
		e.evq.push(mkEvent(busyUntil, node, 1<<o, evService))
	}
	if e.coal {
		// This link freed exactly on the current tick and is re-granted
		// before its hard wakeup popped (the grant came from an arrival, a
		// soft pass, or a credit replay that sorts before it). Once no link
		// of this node frees on this tick anymore - busy times only ever
		// extend, so none can come back to it - that wakeup is a guaranteed
		// no-op: serviceGroup would re-derive an empty freed set, and its
		// soft drain never finds a due slot (the slot's own arg-0 event
		// sorts first and is removed at every consume; see drainSoft).
		// Remove it, counting the logical no-op pop. When the grant happens
		// inside that very wakeup's serviceGroup the event is mid-dispatch,
		// not queued: skip the scan.
		if prevBusy == e.now && (node != e.sgNode || e.now != e.sgT) {
			still := false
			for d := 0; d < numDirs; d++ {
				if d != o && e.outBusy[lnk+d] == e.now {
					still = true
					break
				}
			}
			if !still {
				if e.evq.remove(e.now, mkEvent(0, node, 1, evService).key, mkEvent(0, node, -1, evService).key) {
					e.stats.EventsByKind[evService]++
				}
			}
		}
		e.convertCredits(node, lnk, busyUntil)
	}
	e.sendArrive(eta, e.nbrs[lnk+o], pid, p)
	return o
}

// maybeRunCPU starts a CPU operation at node if the CPU is idle and work is
// available. Reception and injection (software forwards, then fresh source
// packets) are serviced in alternation - a strict receive-first policy
// would starve the forwarding half of indirect strategies and serialize
// their phases - except that a half-full reception FIFO always takes
// priority so the network keeps draining.
func (e *engine) maybeRunCPU(node int32) {
	r := &e.routers[node]
	if r.cpuBusy {
		return
	}
	preferRecv := !r.cpuToggle || 2*r.recv.bytes >= e.par.RecvFIFOBytes
	if preferRecv && e.tryRecvOp(node, r) {
		return
	}
	if e.tryInjectOp(node, r) {
		return
	}
	if !preferRecv {
		e.tryRecvOp(node, r)
	}
}

// tryRecvOp starts a reception CPU operation if one is pending.
func (e *engine) tryRecvOp(node int32, r *router) bool {
	if r.recv.empty() {
		return false
	}
	pid := r.recv.peek()
	p := &e.pkts[pid]
	r.recv.pop(p.size)
	fw, extra, final := e.nw.handler.OnDeliver(Delivered{
		Node: node, Src: p.src, Aux: p.aux, Size: p.size,
		Payload: p.payload, Enq: p.enq, Kind: p.kind,
	}, r.curFw[:0])
	r.curFw = fw
	r.curOp = opRecv
	r.curPkt = pid
	r.curFinal = final
	e.startCPUOp(node, r, e.par.CPUCost(p.size)+extra)
	// Reception FIFO space freed: blocked VC heads may now sink.
	e.scheduleService(node, e.now, maskRecv)
	return true
}

// tryInjectOp starts an injection CPU operation: a pending software forward
// first, else the next packet from the source.
func (e *engine) tryInjectOp(node int32, r *router) bool {
	if len(r.pendingFw) > 0 {
		spec := r.pendingFw[0]
		fifo := int(spec.Class) % len(r.inj)
		if !r.inj[fifo].fits(spec.Size) {
			// The CPU waits for this FIFO; it is re-kicked when the FIFO
			// drains (see tryQueue). Fresh injections stay queued behind
			// the forward, preserving ordering.
			return false
		}
		copy(r.pendingFw, r.pendingFw[1:])
		r.pendingFw = r.pendingFw[:len(r.pendingFw)-1]
		r.curOp = opInject
		r.curSpec = spec
		e.startCPUOp(node, r, e.par.CPUCost(spec.Size)+spec.ExtraCPU)
		return true
	}
	if r.srcDone {
		return false
	}
	if !r.pendValid {
		spec, status, when := e.nw.sources[node].Next(e.now)
		switch status {
		case SrcDone:
			r.srcDone = true
			e.activeSrc--
			return false
		case SrcWait:
			e.evq.push(mkEvent(when, node, 0, evCPUKick))
			return false
		case SrcReady:
			r.pendSrc = spec
			r.pendValid = true
		}
	}
	spec := r.pendSrc
	fifo := int(spec.Class) % len(r.inj)
	if !r.inj[fifo].fits(spec.Size) {
		return false // re-kicked when the FIFO drains
	}
	r.pendValid = false
	r.curOp = opInject
	r.curSpec = spec
	e.startCPUOp(node, r, e.par.CPUCost(spec.Size)+spec.ExtraCPU)
	return true
}

func (e *engine) startCPUOp(node int32, r *router, cost int64) {
	if cost < 1 {
		cost = 1
	}
	r.cpuBusy = true
	r.cpuToggle = !r.cpuToggle
	r.cpuEnd = e.now + cost
	e.stats.CPUBusy[node] += cost
	if e.obs != nil {
		e.obs.OnCPU(e.now, node, cost)
	}
	e.evq.push(mkEvent(r.cpuEnd, node, 0, evCPUKick))
}

// cpuDoneOrKick completes the current CPU operation (if one is running and
// due) and then tries to start the next one.
func (e *engine) cpuDoneOrKick(node int32) {
	r := &e.routers[node]
	if r.cpuBusy {
		if e.now < r.cpuEnd {
			// A stale wait-kick (e.g. a throttle expiry scheduled before the
			// current op started); the op's own completion kick will follow.
			return
		}
		e.finishCPUOp(node, r)
	}
	e.maybeRunCPU(node)
}

func (e *engine) finishCPUOp(node int32, r *router) {
	switch r.curOp {
	case opRecv:
		pid := r.curPkt
		p := &e.pkts[pid]
		e.stats.noteDelivery(e.now, p, r.curFinal)
		e.inFlight--
		e.freePacket(pid)
		if len(r.curFw) > 0 {
			r.pendingFw = append(r.pendingFw, r.curFw...)
			r.curFw = r.curFw[:0]
			if len(r.pendingFw) > e.stats.MaxPendingFw {
				e.stats.MaxPendingFw = len(r.pendingFw)
			}
		}
	case opInject:
		spec := r.curSpec
		pid := e.allocPkt()
		p := &e.pkts[pid]
		*p = packet{
			dst: spec.Dst, src: node, size: spec.Size, payload: spec.Payload,
			aux: spec.Aux, enq: e.now, hops: e.nw.routeHops(node, spec.Dst),
			vc: -1, inDir: -1, det: spec.Det, kind: spec.Kind,
		}
		p.want = wantMask(p.hops, p.det)
		if spec.Dst == node {
			panic("network: self-addressed packet")
		}
		if e.faulty {
			e.rerouteFresh(node, p) // route starts on a dead link: flip now
		}
		e.inFlight++
		e.stats.PacketsInjected++
		e.stats.WireBytesInjected += int64(spec.Size)
		e.stats.LastInject = e.now
		fifo := int(spec.Class) % len(r.inj)
		q := &r.inj[fifo]
		q.push(pktRef{size: int16(p.size), hops: p.hops, vcIn: packVCIn(-1, -1),
			want: p.want, det: p.det}, pid, spec.Size)
		if e.obs != nil {
			e.obs.OnInjFIFO(node, fifo, q.bytes)
		}
		e.occ[node] |= 1 << (numDirs*NumVC + fifo)
		// Only the freshly injected packet is a new candidate; a targeted
		// attempt on its FIFO suffices (it only helps if it reached the
		// FIFO head).
		if q.count == 1 {
			freeMask := e.freeOutputs(node)
			e.contTok, e.entTok = e.tokMasks(node)
			e.tryQueue(node, r, q, numDirs*NumVC+fifo, 1, &freeMask, maskAll)
		}
	}
	r.cpuBusy = false
	r.curOp = opNone
}
