package conformance

import (
	"fmt"
	"reflect"
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/network"
)

// TestCoalesceDifferential is the collective-layer byte-identity oracle for
// event coalescing: every strategy, on torus and mesh shapes, serial and
// 4-shard, must produce the same Result with Coalesce on and off - except
// QueuedEvents, whose reduction is coalescing's entire effect. The
// network-layer twin (network.TestCoalesceIdentical) pins raw Stats; this
// suite additionally crosses the collective handlers, the multi-phase
// strategies (VMesh runs two networks), and the Options plumbing.
func TestCoalesceDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, shape := range shapeMatrix() {
		for _, strat := range strategies() {
			for _, shards := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%v/shards=%d", strat, shape, shards), func(t *testing.T) {
					run := func(coalesce string) collective.Result {
						res, err := collective.Run(strat, collective.Options{
							Shape:    shape,
							MsgBytes: msgBytes,
							Seed:     1,
							Shards:   shards,
							Coalesce: coalesce,
						})
						if err != nil {
							t.Fatalf("%s on %v shards=%d coalesce=%q: %v", strat, shape, shards, coalesce, err)
						}
						return res
					}
					off := run(network.CoalesceOff)
					on := run(network.CoalesceOn)
					if off.QueuedEvents != off.Events {
						t.Errorf("uncoalesced run queued %d events but processed %d; they must agree",
							off.QueuedEvents, off.Events)
					}
					if on.QueuedEvents >= off.QueuedEvents {
						t.Errorf("coalescing did not reduce event volume: on %d, off %d",
							on.QueuedEvents, off.QueuedEvents)
					}
					on.QueuedEvents = off.QueuedEvents
					if !reflect.DeepEqual(on, off) {
						t.Errorf("coalesced run diverged from uncoalesced run:\non:  %+v\noff: %+v", on, off)
					}
				})
			}
		}
	}
}
