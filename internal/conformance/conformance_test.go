package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/torus"
)

// msgBytes is the per-pair payload for conformance runs: not a multiple of
// the packet granule, so every run exercises the packetizer's padding path.
const msgBytes = 240

// full reports whether the expanded matrix was requested (CI's conformance
// job sets CONFORMANCE_FULL=1; the default matrix keeps `go test ./...`
// fast).
func full() bool { return os.Getenv("CONFORMANCE_FULL") != "" }

// strategies is the six-strategy suite from the paper (MPI is a calibration
// baseline, not a torus algorithm, and is covered elsewhere).
func strategies() []collective.Strategy {
	return []collective.Strategy{
		collective.StratAR, collective.StratDR, collective.StratThrottle,
		collective.StratTPS, collective.StratVMesh, collective.StratXYZ,
	}
}

// shapeMatrix is the checked-run shape set: symmetric and asymmetric tori
// plus meshes, scaled to keep the default suite quick.
func shapeMatrix() []torus.Shape {
	shapes := []torus.Shape{
		torus.New(4, 4, 4),                          // symmetric torus
		torus.New(8, 4, 2),                          // asymmetric torus
		torus.NewMesh(4, 4, 2, false, false, false), // full mesh
		torus.NewMesh(4, 4, 4, false, true, false),  // mesh/torus mix
	}
	if full() {
		shapes = append(shapes,
			torus.New(8, 8, 4),
			torus.New(8, 4, 4),
			torus.NewMesh(8, 4, 2, true, false, false),
		)
	}
	return shapes
}

// runChecked performs one strategy run with the runtime invariant checker
// enabled, dumping network state to $CONFORMANCE_ARTIFACTS on failure.
func runChecked(t *testing.T, strat collective.Strategy, shape torus.Shape, shards int, seed uint64) collective.Result {
	t.Helper()
	opts := collective.Options{
		Shape:    shape,
		MsgBytes: msgBytes,
		Seed:     seed,
		Check:    true,
		Shards:   shards,
	}
	if dir := os.Getenv("CONFORMANCE_ARTIFACTS"); dir != "" {
		opts.DebugDump = filepath.Join(dir,
			fmt.Sprintf("%s-%v-shards%d-seed%d.dump", strat, shape, shards, seed))
	}
	res, err := collective.Run(strat, opts)
	if err != nil {
		t.Fatalf("%s on %v shards=%d seed=%d (checked): %v", strat, shape, shards, seed, err)
	}
	return res
}

// TestCheckedMatrix runs every strategy over the shape matrix at shard
// counts 1 and 4 with invariant checking on, and holds each result to the
// two properties that need no reference run: the run passes every runtime
// invariant (credit conservation, bubble slots, FIFO bounds, monotonic
// time, quiescence), and the finish time respects the exact Equation 2
// peak lower bound. The serial and sharded results must also be identical
// field for field.
func TestCheckedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, shape := range shapeMatrix() {
		for _, strat := range strategies() {
			t.Run(fmt.Sprintf("%s/%v", strat, shape), func(t *testing.T) {
				serial := runChecked(t, strat, shape, 1, 1)
				if ft := float64(serial.Time); ft < serial.PeakTime {
					t.Errorf("finish time %v beats the Equation 2 peak bound %v", ft, serial.PeakTime)
				}
				sharded := runChecked(t, strat, shape, 4, 1)
				// QueuedEvents is deliberately exempt from cross-shard-count
				// identity: with coalescing, boundary credits decide elision
				// at the receiving shard's barrier, shifting a few pops
				// between the queued-marker and lazy-stash paths (see
				// network.Stats.QueuedEvents). Bound the drift, then pin
				// every other field exactly.
				if d := sharded.QueuedEvents - serial.QueuedEvents; d < -64 || d > 64 {
					t.Errorf("QueuedEvents drifted across shard counts by %d (serial %d, sharded %d)",
						d, serial.QueuedEvents, sharded.QueuedEvents)
				}
				sharded.QueuedEvents = serial.QueuedEvents
				if !reflect.DeepEqual(serial, sharded) {
					t.Errorf("serial and 4-shard checked runs differ:\nserial:  %+v\nsharded: %+v", serial, sharded)
				}
			})
		}
	}
}

// TestPeakBoundAcrossSeeds re-checks the Equation 2 lower bound over several
// destination-order seeds for the schedule-sensitive strategies (the bound
// must hold for every schedule, not just the default one).
func TestPeakBoundAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seeds := []uint64{1, 2, 7}
	if full() {
		seeds = append(seeds, 11, 23)
	}
	shape := torus.New(4, 4, 4)
	for _, strat := range []collective.Strategy{collective.StratAR, collective.StratDR} {
		for _, seed := range seeds {
			res := runChecked(t, strat, shape, 1, seed)
			if ft := float64(res.Time); ft < res.PeakTime {
				t.Errorf("%s seed %d: finish %v beats peak bound %v", strat, seed, ft, res.PeakTime)
			}
		}
	}
}
