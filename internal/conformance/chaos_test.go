package conformance

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// linkExists reports whether node's output link in direction dir (2*dim,
// +1 for the negative direction) exists on shape: always on a wrapped
// dimension with more than one node, and away from the edges of a mesh one.
func linkExists(shape torus.Shape, node, dir int) bool {
	d := dir / 2
	c := shape.Coords(node)
	if shape.Wrap[d] {
		return shape.Size[d] > 1
	}
	if dir%2 == 0 {
		return c[d] < shape.Size[d]-1
	}
	return c[d] > 0
}

// randomFaults builds a seeded random fault schedule that is valid for the
// shape and keeps every destination reachable: permanent kills land only on
// wrapped dimensions (the long way around the ring stays available) with at
// most one per ring, transient outages always revive, and degrades are
// bounded. Everything else - which links, when, how hard - is random.
func randomFaults(shape torus.Shape, seed uint64) *network.FaultSchedule {
	rng := rand.New(rand.NewSource(int64(seed)<<20 ^ int64(shape.P())))
	p := shape.P()
	fs := &network.FaultSchedule{}
	taken := make(map[int]bool) // (node*6+dir) already scheduled
	pickLink := func() (int32, int, bool) {
		for try := 0; try < 64; try++ {
			n, d := rng.Intn(p), rng.Intn(6)
			if !linkExists(shape, n, d) || taken[n*6+d] {
				continue
			}
			taken[n*6+d] = true
			return int32(n), d, true
		}
		return 0, 0, false
	}

	var wrapped []int
	for d := 0; d < torus.NumDims; d++ {
		if shape.Wrap[d] {
			wrapped = append(wrapped, d)
		}
	}
	if len(wrapped) > 0 {
		usedRing := make(map[int]bool)
		for i, n := 0, rng.Intn(2); i < n; i++ {
			for try := 0; try < 64; try++ {
				node, d := rng.Intn(p), wrapped[rng.Intn(len(wrapped))]
				coord := shape.Coords(node)
				coord[d] = 0
				ring := d*p + shape.Rank(coord)
				if usedRing[ring] || taken[node*6+2*d] {
					continue
				}
				usedRing[ring] = true
				taken[node*6+2*d] = true
				fs.Events = append(fs.Events, network.FaultEvent{
					T: 0, Node: int32(node), Dir: 2 * d, Action: network.FaultKill,
				})
				break
			}
		}
	}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		if node, d, ok := pickLink(); ok {
			down := int64(100 + rng.Intn(900))
			fs.Events = append(fs.Events,
				network.FaultEvent{T: down, Node: node, Dir: d, Action: network.FaultDown},
				network.FaultEvent{T: down + int64(400+rng.Intn(1400)), Node: node, Dir: d, Action: network.FaultUp})
		}
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		if node, d, ok := pickLink(); ok {
			fs.Events = append(fs.Events, network.FaultEvent{
				T: 0, Node: node, Dir: d, Action: network.FaultDegrade, Factor: int32(2 << rng.Intn(3)),
			})
		}
	}
	return fs
}

// runChaos is runChecked with a fault schedule installed.
func runChaos(t *testing.T, strat collective.Strategy, shape torus.Shape, shards int, fs *network.FaultSchedule) collective.Result {
	t.Helper()
	opts := collective.Options{
		Shape:    shape,
		MsgBytes: msgBytes,
		Seed:     1,
		Check:    true,
		Shards:   shards,
		Faults:   fs,
	}
	if dir := os.Getenv("CONFORMANCE_ARTIFACTS"); dir != "" {
		opts.DebugDump = filepath.Join(dir,
			fmt.Sprintf("chaos-%s-%v-shards%d.dump", strat, shape, shards))
	}
	res, err := collective.Run(strat, opts)
	if err != nil {
		t.Fatalf("%s on %v shards=%d faults=%q (checked): %v", strat, shape, shards, fs, err)
	}
	return res
}

// chaosCompare holds a faulted configuration to the suite's three properties:
// serial and 4-shard runs are byte-identical (exactly-once delivery and the
// invariant audits are enforced inside each checked run), and faults never
// beat the healthy twin beyond the adaptive-routing noise band - on these
// small shapes a dead link occasionally steers the adaptive JSQ choice onto
// a serendipitously better path, so up to 5% improvement is tolerated,
// never more.
func chaosCompare(t *testing.T, strat collective.Strategy, shape torus.Shape, fs *network.FaultSchedule, healthy collective.Result) {
	t.Helper()
	serial := runChaos(t, strat, shape, 1, fs)
	sharded := runChaos(t, strat, shape, 4, fs)
	// Same QueuedEvents exemption as TestCheckedMatrix: boundary credits
	// decide coalescing elision at the receiving shard's barrier.
	if d := sharded.QueuedEvents - serial.QueuedEvents; d < -64 || d > 64 {
		t.Errorf("QueuedEvents drifted across shard counts by %d (serial %d, sharded %d)",
			d, serial.QueuedEvents, sharded.QueuedEvents)
	}
	sharded.QueuedEvents = serial.QueuedEvents
	if !reflect.DeepEqual(serial, sharded) {
		t.Errorf("serial and 4-shard faulted runs differ:\nserial:  %+v\nsharded: %+v", serial, sharded)
	}
	if serial.Time < healthy.Time*95/100 {
		t.Errorf("faults improved completion beyond the noise band: faulted %d, healthy %d (schedule %q)",
			serial.Time, healthy.Time, fs)
	}
}

// TestChaosMatrix runs randomized seeded fault schedules across the full
// conformance matrix - every strategy, torus and mesh shapes, shards 1 and
// 4 - with the invariant checker on.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seeds := []uint64{3}
	if full() {
		seeds = []uint64{3, 17, 99}
	}
	for _, shape := range shapeMatrix() {
		for _, strat := range strategies() {
			healthy := collective.Result{}
			haveHealthy := false
			for _, seed := range seeds {
				fs := randomFaults(shape, seed)
				if len(fs.Events) == 0 {
					continue
				}
				t.Run(fmt.Sprintf("%s/%v/seed=%d", strat, shape, seed), func(t *testing.T) {
					if !haveHealthy {
						healthy = runChecked(t, strat, shape, 1, 1)
						haveHealthy = true
					}
					chaosCompare(t, strat, shape, fs, healthy)
				})
			}
		}
	}
}

// TestChaosSoak drives many random schedules through one torus
// configuration, accumulating confidence that no schedule shape trips an
// invariant or breaks cross-shard identity. The full matrix (CI's chaos
// job) quadruples the seed count.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	n := uint64(8)
	if full() {
		n = 32
	}
	shape := torus.New(4, 4, 4)
	healthy := runChecked(t, collective.StratAR, shape, 1, 1)
	for seed := uint64(100); seed < 100+n; seed++ {
		fs := randomFaults(shape, seed)
		if len(fs.Events) == 0 {
			continue
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosCompare(t, collective.StratAR, shape, fs, healthy)
		})
	}
}
