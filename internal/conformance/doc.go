// Package conformance holds the simulator's property and metamorphic test
// suite: every all-to-all strategy is run over a matrix of torus and mesh
// shapes at shard counts {1, 4} with the runtime invariant checker
// (network.Params.Check, package check) enabled, and the results are held to
// the model's symmetries - rank-permutation invariance of aggregate
// throughput, dimension-relabeling symmetry, the Equation 2 peak lower
// bound, and serial/sharded identity.
//
// The package contains only tests; this file exists so the package is a
// buildable unit. Run the full matrix with CONFORMANCE_FULL=1; point
// CONFORMANCE_ARTIFACTS at a directory to collect network-state dumps from
// failing runs.
package conformance
