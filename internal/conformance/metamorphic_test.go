package conformance

import (
	"testing"

	"alltoall/internal/collective"
	"alltoall/internal/torus"
)

// Metamorphic properties: transformations of the input that must leave the
// aggregate result (near-)invariant. The tolerance bands were set at about
// twice the empirically observed spread, so they catch systematic breakage
// without flaking on schedule noise.

// TestRankPermutationInvariance: the destination-order seed permutes every
// node's traversal of its p-1 partners. Aggregate throughput is a property
// of the machine and the traffic matrix, not of the schedule, so completion
// times across seeds must stay in a narrow band (observed spread on these
// shapes is under 4.5%; the band allows 8%).
func TestRankPermutationInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	seeds := []uint64{1, 2, 3, 5, 7}
	if full() {
		seeds = append(seeds, 11, 13, 17, 19, 23)
	}
	for _, strat := range []collective.Strategy{collective.StratAR, collective.StratDR, collective.StratTPS} {
		t.Run(string(strat), func(t *testing.T) {
			min, max := int64(1<<62), int64(0)
			for _, seed := range seeds {
				res := runChecked(t, strat, torus.New(4, 4, 4), 1, seed)
				if res.Time < min {
					min = res.Time
				}
				if res.Time > max {
					max = res.Time
				}
			}
			if float64(max) > 1.08*float64(min) {
				t.Errorf("%s completion spread across seeds %v: min %d max %d (> 8%%); throughput is not schedule-invariant",
					strat, seeds, min, max)
			}
		})
	}
}

// TestDimensionRelabelingSymmetry: a torus has no preferred axis under
// adaptive routing, so relabeling the dimensions of an asymmetric shape
// (the paper's 8x8x16 vs 16x8x8, scaled to 4x4x8) must leave the Equation 2
// peak exactly equal and the AR completion time equal up to schedule noise
// (observed spread 3.4%; the band allows 10%).
func TestDimensionRelabelingSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	relabelings := []torus.Shape{
		torus.New(4, 4, 8),
		torus.New(8, 4, 4),
		torus.New(4, 8, 4),
	}
	var times []int64
	peak := relabelings[0].PeakTime(msgBytes)
	for _, shape := range relabelings {
		if got := shape.PeakTime(msgBytes); got != peak {
			t.Fatalf("Equation 2 peak is not relabeling-invariant: %v gives %v, %v gives %v",
				relabelings[0], peak, shape, got)
		}
		res := runChecked(t, collective.StratAR, shape, 1, 1)
		times = append(times, res.Time)
	}
	min, max := times[0], times[0]
	for _, ti := range times[1:] {
		if ti < min {
			min = ti
		}
		if ti > max {
			max = ti
		}
	}
	if float64(max) > 1.10*float64(min) {
		t.Errorf("AR is not relabeling-symmetric: times %v across %v (> 10%% spread)", times, relabelings)
	}
}

// TestMeshSlowerThanTorus: removing the wraparound links can only remove
// bandwidth, so the full mesh of a shape must never beat its torus (a
// metamorphic ordering, not an equality).
func TestMeshSlowerThanTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tor := runChecked(t, collective.StratAR, torus.New(4, 4, 4), 1, 1)
	mesh := runChecked(t, collective.StratAR, torus.NewMesh(4, 4, 4, false, false, false), 1, 1)
	if mesh.Time < tor.Time {
		t.Errorf("mesh 4x4x4 finished at %d, faster than torus %d; cutting links added bandwidth?",
			mesh.Time, tor.Time)
	}
}
