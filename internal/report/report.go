// Package report renders experiment results as aligned ASCII tables or CSV,
// in the style of the paper's tables and figure series.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table builder.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", x)
		case float32:
			row[i] = fmt.Sprintf("%.1f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Write renders the table as aligned ASCII.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (no quoting: cells must not contain
// commas, which holds for all experiment output).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		for _, cell := range row {
			if strings.ContainsAny(cell, ",\n\"") {
				return fmt.Errorf("report: cell %q needs quoting, refusing to emit broken CSV", cell)
			}
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
