package report

import (
	"fmt"
	"io"
	"strings"

	"alltoall/internal/observe"
	"alltoall/internal/torus"
)

// Attribution renders a bottleneck-attribution report from an observe
// Summary: per-dimension utilization with the saturated dimension flagged,
// the top links by occupancy, the head-of-line-blocking census, and a
// per-window utilization heatmap. This is the diagnostic the paper's
// Section 5 argument needs in one screen: on an asymmetric torus the X row
// pins at ~100% while Y/Z idle and the HoL counter is hot; a balanced
// schedule (TPS) shows three even rows and a cold counter.
type Attribution struct {
	// Top bounds the link ranking (default 8). Heat bounds the heatmap
	// width in windows; longer runs are downsampled (default 64).
	Top  int
	Heat int
}

// heatGlyphs maps utilization to a glyph ramp; index min(u*len, len-1).
var heatGlyphs = []rune(" .:-=+*#%@")

func heatGlyph(u float64) rune {
	i := int(u * float64(len(heatGlyphs)))
	if i < 0 {
		i = 0
	}
	if i >= len(heatGlyphs) {
		i = len(heatGlyphs) - 1
	}
	return heatGlyphs[i]
}

// Write renders the report. The collector supplies both the run-level
// summary and the windowed series for the heatmap.
func (a Attribution) Write(w io.Writer, c *observe.Collector) error {
	top, heat := a.Top, a.Heat
	if top <= 0 {
		top = 8
	}
	if heat <= 0 {
		heat = 64
	}
	s := c.Summary()

	var b strings.Builder
	fmt.Fprintf(&b, "bottleneck attribution: %s, %d run(s), finish t=%d\n\n", s.Shape, s.Runs, s.Finish)

	dims := NewTable("link utilization by dimension", "dim", "util", "bytes", "flag")
	for d := 0; d < torus.NumDims; d++ {
		name := [torus.NumDims]string{"x", "y", "z"}[d]
		flag := ""
		if name == s.SaturatedDim {
			flag = "<- saturated"
		}
		dims.AddRow(name, fmt.Sprintf("%5.1f%%", 100*s.UtilByDim[d]), s.BytesByDim[d], flag)
	}
	dims.AddNote("max single link %.1f%%; VC split dyn0/dyn1/bubble = %d/%d/%d bytes",
		100*s.MaxLinkUtil, s.BytesByVC[0], s.BytesByVC[1], s.BytesByVC[2])
	if err := dims.Write(&b); err != nil {
		return err
	}
	b.WriteByte('\n')

	links := NewTable("busiest links", "rank", "node", "coord", "link", "bytes", "util")
	for i, l := range c.RankLinks(top) {
		links.AddRow(i+1, l.Node, fmt.Sprintf("(%d,%d,%d)", l.Coord[0], l.Coord[1], l.Coord[2]),
			l.Dim+l.Dir, l.Bytes, fmt.Sprintf("%5.1f%%", 100*l.Util))
	}
	if err := links.Write(&b); err != nil {
		return err
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "head-of-line blocking: %d cross-dimension blocked passes", s.HoLBlocked)
	if s.HoLBlocked > 0 && s.SaturatedDim != "" {
		fmt.Fprintf(&b, " (packets stuck behind saturated %s links)", s.SaturatedDim)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "blocked-pass matrix [VC dim -> wanted dim]:\n")
	fmt.Fprintf(&b, "        want-x      want-y      want-z\n")
	for i := 0; i < torus.NumDims; i++ {
		fmt.Fprintf(&b, "  %s", [torus.NumDims]string{"x", "y", "z"}[i])
		for j := 0; j < torus.NumDims; j++ {
			fmt.Fprintf(&b, "  %10d", s.HoLMatrix[i][j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "injection-FIFO blocked passes: %d; FIFO high-watermarks inj=%dB recv=%dB; CPU mean/max %.1f%%/%.1f%%\n\n",
		s.InjFIFOBlocked, s.MaxInjFIFOBytes, s.MaxRecvFIFOBytes, 100*s.MeanCPUUtil, 100*s.MaxCPUUtil)

	if s.FaultEvents > 0 {
		fmt.Fprintf(&b, "fault injection: %d transition(s) (%d degrade), peak %d link(s) dead\n",
			s.FaultEvents, s.DegradeEvents, s.DeadLinks)
		fmt.Fprintf(&b, "  dead-link ticks: %d (%.2f%% of link-time lost); forced credit returns: %d\n\n",
			s.DeadLinkTicks, 100*s.DegradedCompletion, s.ForcedCreditReturns)
	}

	writeHeatmap(&b, c, heat)

	_, err := io.WriteString(w, b.String())
	return err
}

// writeHeatmap renders per-dimension utilization over time, one row per
// dimension, one glyph per (possibly downsampled) window group.
func writeHeatmap(b *strings.Builder, c *observe.Collector, width int) {
	n := c.Windows()
	if n == 0 {
		fmt.Fprintf(b, "no windowed samples (run shorter than one window?)\n")
		return
	}
	// group = ceil(n/width) windows per glyph.
	group := (n + width - 1) / width
	cols := (n + group - 1) / group
	fmt.Fprintf(b, "utilization heatmap (ramp \"%s\", %d window(s)/col, window=%d):\n",
		string(heatGlyphs), group, c.Window())
	shape := c.Shape()
	for d := 0; d < torus.NumDims; d++ {
		series := c.DimSeries(d)
		fmt.Fprintf(b, "  %s |", [torus.NumDims]string{"x", "y", "z"}[d])
		links := dimLinkCount(shape, d)
		for g := 0; g < cols; g++ {
			var bytes int64
			span := 0
			for i := g * group; i < (g+1)*group && i < n; i++ {
				if i < len(series) {
					bytes += series[i]
				}
				span++
			}
			u := 0.0
			if links > 0 && span > 0 {
				u = float64(bytes) / (float64(c.Window()) * float64(span) * float64(links))
			}
			b.WriteRune(heatGlyph(u))
		}
		b.WriteString("|\n")
	}
}

// dimLinkCount mirrors observe's per-dimension link census (Shape.LinkCount
// restricted to one dimension).
func dimLinkCount(s torus.Shape, d int) int {
	k := s.Size[d]
	if k == 1 {
		return 0
	}
	perLine := k - 1
	if s.Wrap[d] {
		perLine = k
	}
	return 2 * perLine * (s.P() / k)
}
