package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Test", "Shape", "Peak%")
	tb.AddRow("8x8x8", 99.03)
	tb.AddRow("40x32x16", 72.0)
	var b strings.Builder
	if err := tb.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Test") {
		t.Errorf("missing title")
	}
	if !strings.Contains(lines[3], "99.0") {
		t.Errorf("float not formatted: %q", lines[3])
	}
	// Columns align: "Peak%" starts at the same offset in header and rows.
	hdr := lines[1]
	off := strings.Index(hdr, "Peak%")
	if lines[3][off-1] != ' ' && lines[3][off] == ' ' {
		t.Errorf("misaligned row: %q", lines[3])
	}
}

func TestTableNotes(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow(1)
	tb.AddNote("scaled by %d", 2)
	var b strings.Builder
	if err := tb.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "note: scaled by 2") {
		t.Errorf("note missing: %q", b.String())
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("x", 1.25)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nx,1.2\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestCSVRejectsCommas(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("has,comma")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err == nil {
		t.Error("comma cell accepted")
	}
}
