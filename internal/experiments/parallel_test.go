package experiments

import (
	"strings"
	"testing"

	"alltoall/internal/collective"
)

// render runs one catalog entry and returns the ASCII table.
func render(t *testing.T, id string, cfg Config) string {
	t.Helper()
	tbl, err := Catalog[id](cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	return b.String()
}

// TestSerialParallelIdentical is the engine's determinism regression test:
// rendered tables must be byte-identical at 1 worker and at 8, for a plain
// table, a multi-run-per-row table, and a flattened error-tolerant grid.
func TestSerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, id := range []string{"table1", "table4", "ablate"} {
		serial := tiny()
		serial.Workers = 1
		par := tiny()
		par.Workers = 8
		s := render(t, id, serial)
		p := render(t, id, par)
		if s != p {
			t.Errorf("%s: 8-worker table differs from serial\n-- serial --\n%s\n-- parallel --\n%s", id, s, p)
		}
	}
}

// TestShardedRenderIdentical is the sharded engine's end-to-end determinism
// test: rendered tables must be byte-identical whether each simulation runs
// on the serial engine or on the window-parallel engine, at every shard
// count, with and without run-level workers on top.
func TestShardedRenderIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, id := range []string{"table1", "table4"} {
		serial := tiny()
		serial.Workers = 1
		serial.Shards = 1
		want := render(t, id, serial)
		for _, shards := range []int{2, 4, 7} {
			cfg := tiny()
			cfg.Workers = 2
			cfg.Shards = shards
			if got := render(t, id, cfg); got != want {
				t.Errorf("%s: %d-shard table differs from serial\n-- serial --\n%s\n-- sharded --\n%s",
					id, shards, want, got)
			}
		}
	}
}

// TestMetricsAndProgress checks the engine's observability side channels:
// metrics count every run and progress lines arrive once per row.
func TestMetricsAndProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf strings.Builder
	cfg := tiny()
	cfg.Workers = 4
	cfg.Metrics = &Metrics{}
	cfg.Progress = &buf
	if _, err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	if got := cfg.Metrics.Runs(); got != 6 {
		t.Errorf("Runs() = %d, want 6 (one per Table 1 row)", got)
	}
	if cfg.Metrics.Events() <= 0 || cfg.Metrics.Packets() <= 0 {
		t.Errorf("Events() = %d, Packets() = %d; want positive",
			cfg.Metrics.Events(), cfg.Metrics.Packets())
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 6 {
		t.Errorf("progress lines = %d, want 6\n%s", lines, buf.String())
	}
	// A nil Metrics must be safe everywhere.
	var nilM *Metrics
	nilM.note(collective.Result{})
	if nilM.Runs() != 0 || nilM.Events() != 0 || nilM.Packets() != 0 {
		t.Error("nil Metrics returned nonzero counts")
	}
}
