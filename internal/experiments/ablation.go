package experiments

import (
	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/report"
	"alltoall/internal/torus"
)

// Ablate quantifies the simulator's modeling decisions (DESIGN.md section
// "Modeling decisions forced by packet-atomic simulation") on one symmetric
// and one asymmetric partition. Each row disables one mechanism.
func Ablate(cfg Config) (*report.Table, error) {
	type variant struct {
		name string
		mut  func(*collective.Options)
	}
	variants := []variant{
		{"baseline", func(*collective.Options) {}},
		{"store-and-forward", func(o *collective.Options) {
			p := network.DefaultParams()
			p.StoreForward = true
			o.Par = p
		}},
		{"no VC lookahead", func(o *collective.Options) {
			p := network.DefaultParams()
			p.VCLookahead = 1
			o.Par = p
		}},
		{"no transit priority", func(o *collective.Options) {
			p := network.DefaultParams()
			p.InjectTokens = 0
			o.Par = p
		}},
		{"eager escape", func(o *collective.Options) {
			p := network.DefaultParams()
			p.EscapeDelay = 0
			o.Par = p
		}},
		{"unpaced injection", func(o *collective.Options) { o.Unpaced = true }},
		{"strict pacing", func(o *collective.Options) { o.PaceBurst = 1 }},
	}
	sym, _ := cfg.scale(torus.New(8, 8, 8))
	asym, _ := cfg.scale(torus.New(8, 8, 16))
	t := report.NewTable("Ablation: AR percent of peak with one mechanism disabled per row",
		"Variant", sym.String()+" %", asym.String()+" %")
	for _, v := range variants {
		row := []any{v.name}
		for _, shape := range []torus.Shape{sym, asym} {
			opts := cfg.opts(shape, cfg.largeFor(shape))
			v.mut(&opts)
			// A variant that cannot reach 12.5% of peak has collapsed;
			// cutting it off keeps the jam-regime rows from running for
			// hours.
			opts.MaxTime = int64(shape.PeakTime(opts.MsgBytes) * 8)
			res, err := collective.RunAR(opts)
			if err != nil {
				row = append(row, "<12.5 (collapsed)")
				continue
			}
			row = append(row, res.PercentPeak)
		}
		t.AddRow(row...)
	}
	t.AddNote("collapsed rows exceeded 8x the Equation 2 peak time and were cut off")
	return t, nil
}
