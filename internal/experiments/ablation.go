package experiments

import (
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/report"
	"alltoall/internal/torus"
)

// Ablate quantifies the simulator's modeling decisions (DESIGN.md section
// "Modeling decisions forced by packet-atomic simulation") on one symmetric
// and one asymmetric partition. Each row disables one mechanism; the
// (variant, shape) grid is flattened onto the worker pool since every cell
// is an independent run.
func Ablate(cfg Config) (*report.Table, error) {
	type variant struct {
		name string
		mut  func(*collective.Options)
	}
	variants := []variant{
		{"baseline", func(*collective.Options) {}},
		{"store-and-forward", func(o *collective.Options) {
			p := network.DefaultParams()
			p.StoreForward = true
			o.Par = p
		}},
		{"no VC lookahead", func(o *collective.Options) {
			p := network.DefaultParams()
			p.VCLookahead = 1
			o.Par = p
		}},
		{"no transit priority", func(o *collective.Options) {
			p := network.DefaultParams()
			p.InjectTokens = 0
			o.Par = p
		}},
		{"eager escape", func(o *collective.Options) {
			p := network.DefaultParams()
			p.EscapeDelay = 0
			o.Par = p
		}},
		{"unpaced injection", func(o *collective.Options) { o.Unpaced = true }},
		{"strict pacing", func(o *collective.Options) { o.PaceBurst = 1 }},
	}
	sym, _ := cfg.scale(torus.New(8, 8, 8))
	asym, _ := cfg.scale(torus.New(8, 8, 16))
	shapes := []torus.Shape{sym, asym}
	t := report.NewTable("Ablation: AR percent of peak with one mechanism disabled per row",
		"Variant", sym.String()+" %", asym.String()+" %")
	type job struct{ vi, si int }
	jobs := make([]job, 0, len(variants)*len(shapes))
	for vi := range variants {
		for si := range shapes {
			jobs = append(jobs, job{vi, si})
		}
	}
	cells, err := mapRows(cfg, jobs, func(cfg Config, cache *collective.NetCache, _ int, j job) (any, error) {
		start := time.Now()
		shape := shapes[j.si]
		opts := cfg.opts(shape, cfg.largeFor(shape))
		variants[j.vi].mut(&opts)
		// A variant that cannot reach 12.5% of peak has collapsed;
		// cutting it off keeps the jam-regime rows from running for
		// hours.
		opts.MaxTime = int64(shape.PeakTime(opts.MsgBytes) * 8)
		res, err := cfg.runCached(collective.StratAR, opts, cache)
		if err != nil {
			cfg.rowProgress("  ablate %s on %v: collapsed (%s)",
				variants[j.vi].name, shape, time.Since(start).Round(time.Millisecond))
			return "<12.5 (collapsed)", nil
		}
		cfg.rowProgress("  ablate %s on %v: %.1f%% of peak (%s)",
			variants[j.vi].name, shape, res.PercentPeak, time.Since(start).Round(time.Millisecond))
		return res.PercentPeak, nil
	})
	if err != nil {
		return t, err
	}
	for vi, v := range variants {
		t.AddRow(v.name, cells[vi*len(shapes)], cells[vi*len(shapes)+1])
	}
	t.AddNote("collapsed rows exceeded 8x the Equation 2 peak time and were cut off")
	return t, nil
}
