package experiments

import (
	"strings"
	"testing"

	"alltoall/internal/torus"
)

// tiny scales every experiment down to at most 64 nodes so the whole
// catalog can run in a unit test.
func tiny() Config {
	return Config{MaxNodes: 64, Seed: 1, LargeBytes: 240}
}

func TestCatalogComplete(t *testing.T) {
	if len(Catalog) != len(Order) {
		t.Fatalf("catalog has %d entries, order lists %d", len(Catalog), len(Order))
	}
	for _, id := range Order {
		if Catalog[id] == nil {
			t.Errorf("missing runner for %q", id)
		}
	}
	if len(Names()) != len(Order) {
		t.Errorf("Names() = %v", Names())
	}
}

func TestScale(t *testing.T) {
	cfg := Config{MaxNodes: 1024}
	s, scaled := cfg.scale(torus.New(40, 32, 16))
	if !scaled {
		t.Fatal("20480 nodes not scaled")
	}
	if s.P() > 1024 {
		t.Errorf("scaled to %v (%d nodes)", s, s.P())
	}
	// Aspect ratio preserved: X remains the longest dimension with the
	// same 2.5:2:1 proportions.
	if float64(s.Size[0])/float64(s.Size[2]) != 2.5 {
		t.Errorf("aspect ratio lost: %v", s)
	}
	// Small partitions pass through untouched.
	small := torus.New(8, 8, 8)
	got, scaled := cfg.scale(small)
	if scaled || got != small {
		t.Errorf("8x8x8 was scaled to %v", got)
	}
	// Full mode never scales.
	full := Config{Full: true}
	if _, scaled := full.scale(torus.New(40, 32, 16)); scaled {
		t.Error("Full config scaled a partition")
	}
}

func TestScaleKeepsMeshFlags(t *testing.T) {
	cfg := Config{MaxNodes: 64}
	s, _ := cfg.scale(torus.NewMesh(16, 16, 8, true, true, false))
	if s.Wrap[2] {
		t.Errorf("mesh dimension became a torus: %+v", s)
	}
}

func TestLargeFor(t *testing.T) {
	cfg := Config{}
	if got := cfg.largeFor(torus.New(4, 4, 4)); got != 1920 {
		t.Errorf("largeFor(64) = %d", got)
	}
	if got := cfg.largeFor(torus.New(16, 8, 8)); got != 480 {
		t.Errorf("largeFor(1024) = %d", got)
	}
	cfg.LargeBytes = 99
	if got := cfg.largeFor(torus.New(4, 4, 4)); got != 99 {
		t.Errorf("override ignored: %d", got)
	}
}

func TestTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		tbl, err := Catalog[id](tiny())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.NumRows() == 0 {
			t.Errorf("%s produced no rows", id)
		}
		var b strings.Builder
		if err := tbl.Write(&b); err != nil {
			t.Errorf("%s render: %v", id, err)
		}
	}
}

func TestFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := tiny()
	for _, id := range []string{"fig3", "fig4", "fig6", "fig7"} {
		tbl, err := Catalog[id](cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.NumRows() == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestFigSweepModelColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tbl, err := Fig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	hdr := strings.SplitN(b.String(), "\n", 2)[0]
	for _, col := range []string{"MsgBytes", "AR MB/s", "Eq3 MB/s", "Peak MB/s"} {
		if !strings.Contains(hdr, col) {
			t.Errorf("fig1 header %q missing column %q", hdr, col)
		}
	}
}
