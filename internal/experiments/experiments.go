// Package experiments regenerates every table and figure of the paper's
// evaluation: workload setup, parameter sweeps, baselines, and rendering of
// the same rows/series the paper reports, with the paper's published
// numbers alongside for comparison.
//
// The default configuration scales partitions above MaxNodes down by
// halving every dimension (preserving the aspect ratio that drives the
// paper's phenomena); Full disables scaling and simulates the true machine
// sizes, which takes hours for the largest rows.
//
// Rows of each experiment are independent simulations, so they run on a
// worker pool (Config.Workers); every run is seeded independently of
// scheduling, making output identical at any worker count.
package experiments

import (
	"fmt"
	"io"
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/model"
	"alltoall/internal/parallel"
	"alltoall/internal/report"
	"alltoall/internal/sweep"
	"alltoall/internal/torus"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Full disables partition scaling and runs the paper's true machine
	// sizes.
	Full bool
	// MaxNodes bounds simulated partition size when !Full (default 1024).
	MaxNodes int
	// Seed randomizes destination orders.
	Seed uint64
	// LargeBytes overrides the per-pair payload used for "large message"
	// rows (default: chosen per partition size to bound runtime).
	LargeBytes int

	// Workers bounds experiment concurrency: independent rows and sweep
	// points fan out over this many goroutines (0 = GOMAXPROCS, 1 =
	// serial). Tables are byte-identical at any setting.
	Workers int
	// Shards selects the intra-run engine: > 1 forces the window-parallel
	// sharded engine with that many workers per simulation, 1 forces the
	// serial engine, and 0 (default) picks automatically - sharding only
	// when a batch of runs is too small to fill the worker pool and the
	// partition is large enough to amortize the window barriers. Tables
	// are byte-identical at any setting.
	Shards int
	// Progress, when non-nil, receives one line per completed row
	// (typically os.Stderr, so tables on stdout stay clean).
	Progress io.Writer
	// Metrics, when non-nil, accumulates run/event/packet counts across
	// every collective run of the experiment.
	Metrics *Metrics

	// Check enables the simulator's runtime invariant checker for every
	// run of the experiment (collective.Options.Check). Costs roughly
	// 1.4x simulation time; tables are unchanged when the invariants hold.
	Check bool

	// EventQueue selects the simulator's pending-event structure for every
	// run (collective.Options.EventQueue): "" or "calendar" for the
	// bounded-horizon calendar queue, "heap" for the reference binary
	// heap. Tables are byte-identical either way.
	EventQueue string

	// Coalesce selects same-tick credit/arrival coalescing for every run
	// (collective.Options.Coalesce): "" or "on" for the coalescing engine
	// (the default), "off" for the one-event-per-credit reference engine.
	// Tables are byte-identical either way.
	Coalesce string

	// Sync selects the sharded engine's synchronization protocol for every
	// run (collective.Options.Sync): "" or "async" for the asynchronous
	// conservative engine (published per-shard clocks, the default), "bsp"
	// for the barrier-lockstep escape hatch. Ignored by single-shard runs;
	// tables are byte-identical either way.
	Sync string

	// Faults, when non-empty, applies the same deterministic link-fault
	// schedule (the ParseFaults "t:node:dir:action" grammar) to every run
	// of the experiment. Node ids refer to the scaled partition actually
	// simulated, so schedules are only portable across runs of one shape.
	Faults string

	// Trace, when non-nil, instruments every collective run with an
	// observe.Collector and records its per-run summary (and, if the sink
	// keeps traces, its windowed JSONL trace) under TracePrefix. Tables
	// are unchanged: observation never perturbs a simulation.
	Trace *TraceSink
	// TracePrefix labels this experiment's runs in the sink (usually the
	// experiment id).
	TracePrefix string

	// batch is the size of the current mapRows fan-out, stamped into the
	// Config each row callback receives so opts can weigh run-level
	// against intra-run parallelism.
	batch int
}

func (c Config) maxNodes() int {
	if c.Full {
		return 1 << 30
	}
	if c.MaxNodes == 0 {
		return 1024
	}
	return c.MaxNodes
}

// largeFor picks the "large message" payload for a partition: large enough
// to reach the asymptotic regime, small enough to keep the event count (and
// wall-clock) bounded.
func (c Config) largeFor(s torus.Shape) int {
	if c.LargeBytes > 0 {
		return c.LargeBytes
	}
	switch p := s.P(); {
	case p <= 256:
		return 1920
	case p <= 512:
		return 960
	case p <= 1024:
		return 480
	default:
		return 240
	}
}

// scale halves every even dimension of s until it fits maxNodes, keeping
// the wrap flags. It reports whether scaling occurred.
func (c Config) scale(s torus.Shape) (torus.Shape, bool) {
	maxN := c.maxNodes()
	scaled := false
	for s.P() > maxN {
		t := s
		for d := 0; d < torus.NumDims; d++ {
			if t.Size[d] >= 4 && t.Size[d]%2 == 0 {
				t.Size[d] /= 2
				if t.Size[d] <= 2 {
					t.Wrap[d] = false
				}
			}
		}
		if t == s {
			break // cannot shrink further
		}
		s = t
		scaled = true
	}
	return s, scaled
}

// Runner regenerates one experiment.
type Runner func(Config) (*report.Table, error)

// Catalog maps experiment ids (table1..table4, fig1..fig7) to runners, with
// Order giving presentation order.
var (
	Catalog = map[string]Runner{
		"table1":  Table1,
		"table2":  Table2,
		"table3":  Table3,
		"table4":  Table4,
		"fig1":    Fig1,
		"fig2":    Fig2,
		"fig3":    Fig3,
		"fig4":    Fig4,
		"fig5":    Fig5,
		"fig6":    Fig6,
		"fig7":    Fig7,
		"ablate":  Ablate,
		"degrade": Degrade,
	}
	Order = []string{
		"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"ablate", "degrade",
	}
)

// Names returns the catalog keys in presentation order.
func Names() []string {
	return append([]string(nil), Order...)
}

func (c Config) opts(s torus.Shape, m int) collective.Options {
	return collective.Options{Shape: s, MsgBytes: m, Seed: c.Seed, Shards: c.shardsFor(s.P()),
		Check: c.Check, EventQueue: c.EventQueue, Coalesce: c.Coalesce, Sync: c.Sync}
}

// shardsFor picks the per-run shard count for a partition of the given node
// count. Run-level parallelism is strictly cheaper (no window barriers), so
// the sharded engine is only auto-selected when the current batch of
// independent runs leaves workers idle, and only on partitions big enough
// that each shard still owns a few dozen routers. Results are identical
// either way; this is purely a scheduling decision.
func (c Config) shardsFor(nodes int) int {
	if c.Shards != 0 {
		return c.Shards
	}
	w := parallel.Workers(c.Workers)
	batch := c.batch
	if batch < 1 {
		batch = 1
	}
	if batch >= w || nodes < 512 {
		return 1
	}
	s := w / batch
	if s > 8 {
		s = 8
	}
	return s
}

func shapeLabel(paper torus.Shape, run torus.Shape, scaled bool) string {
	if !scaled {
		return paper.String()
	}
	return fmt.Sprintf("%v (run %v)", paper, run)
}

// runRow simulates one strategy on a (possibly scaled) partition at the
// config's large-message size, through the worker's network cache.
func (c Config) runRow(cache *collective.NetCache, strat collective.Strategy, paper torus.Shape) (collective.Result, string, error) {
	run, scaled := c.scale(paper)
	res, err := c.runCached(strat, c.opts(run, c.largeFor(run)), cache)
	return res, shapeLabel(paper, run, scaled), err
}

// rowResult pairs a rendered partition label with its run.
type rowResult struct {
	label string
	res   collective.Result
}

// stratRows runs one strategy across a table's partitions on the worker
// pool, one row per partition, emitting a progress line per finished row.
func (c Config) stratRows(name string, strat collective.Strategy, shapes []torus.Shape) ([]rowResult, error) {
	n := len(shapes)
	return mapRows(c, shapes, func(c Config, cache *collective.NetCache, i int, paper torus.Shape) (rowResult, error) {
		start := time.Now()
		res, label, err := c.runRow(cache, strat, paper)
		if err != nil {
			return rowResult{}, err
		}
		c.rowProgress("  %s %d/%d %s: %s %.1f%% of peak (%s)",
			name, i+1, n, label, strat, res.PercentPeak, time.Since(start).Round(time.Millisecond))
		return rowResult{label: label, res: res}, nil
	})
}

// Table1 reproduces "All-to-all peak performance of various symmetric
// partitions for large messages" (AR strategy).
func Table1(cfg Config) (*report.Table, error) {
	rows := []struct {
		shape torus.Shape
		paper float64
	}{
		{torus.New(8, 1, 1), 98.2},
		{torus.New(16, 1, 1), 97.7},
		{torus.New(8, 8, 1), 98.7},
		{torus.New(16, 16, 1), 99.7},
		{torus.New(8, 8, 8), 99.0},
		{torus.New(16, 16, 16), 99.0},
	}
	shapes := make([]torus.Shape, len(rows))
	for i, r := range rows {
		shapes[i] = r.shape
	}
	t := report.NewTable("Table 1: AR percent of peak on symmetric partitions (large messages)",
		"Partition", "Paper %", "Measured %", "MsgBytes")
	out, err := cfg.stratRows("table1", collective.StratAR, shapes)
	if err != nil {
		return t, err
	}
	for i, r := range rows {
		t.AddRow(out[i].label, r.paper, out[i].res.PercentPeak, out[i].res.MsgBytes)
	}
	t.AddNote("measured on the packet-level simulator; expect a uniform few-percent tax versus hardware")
	return t, nil
}

// table2Rows are the asymmetric partitions of Table 2 ("M" = mesh
// dimension) with the paper's AR percent of peak.
func table2Rows() []struct {
	shape torus.Shape
	paper float64
} {
	return []struct {
		shape torus.Shape
		paper float64
	}{
		{torus.NewMesh(8, 2, 1, true, false, false), 91.8},
		{torus.NewMesh(8, 4, 1, true, false, false), 89.0},
		{torus.New(8, 16, 1), 85.7},
		{torus.New(8, 32, 1), 84.0},
		{torus.NewMesh(8, 8, 2, true, true, false), 90.1},
		{torus.NewMesh(8, 8, 4, true, true, false), 87.7},
		{torus.New(8, 8, 16), 81.0},
		{torus.New(8, 16, 16), 87.0},
		{torus.New(8, 32, 16), 73.3},
		{torus.New(16, 32, 16), 71.0},
		{torus.New(32, 32, 16), 73.6},
	}
}

// Table2 reproduces "AA performance using the AR strategy for large message
// sizes on various processor partitions".
func Table2(cfg Config) (*report.Table, error) {
	rows := table2Rows()
	shapes := make([]torus.Shape, len(rows))
	for i, r := range rows {
		shapes[i] = r.shape
	}
	t := report.NewTable("Table 2: AR percent of peak on asymmetric partitions (large messages)",
		"Partition", "Paper %", "Measured %", "MsgBytes")
	out, err := cfg.stratRows("table2", collective.StratAR, shapes)
	if err != nil {
		return t, err
	}
	for i, r := range rows {
		t.AddRow(out[i].label, r.paper, out[i].res.PercentPeak, out[i].res.MsgBytes)
	}
	return t, nil
}

// Table3 reproduces "All-to-all performance using the Two Phase Schedule
// (TPS) algorithm for long messages", including the phase-1 dimension.
func Table3(cfg Config) (*report.Table, error) {
	rows := []struct {
		shape torus.Shape
		paper float64
		dim   string
	}{
		{torus.New(8, 8, 8), 77.2, "Z"},
		{torus.New(16, 8, 8), 99.0, "X"},
		{torus.New(8, 16, 8), 98.9, "Y"},
		{torus.New(8, 8, 16), 97.9, "Z"},
		{torus.New(16, 16, 8), 97.5, "Z"},
		{torus.New(16, 8, 16), 97.4, "Y"},
		{torus.New(8, 16, 16), 97.2, "X"},
		{torus.New(8, 32, 16), 99.5, "Y"},
		{torus.New(16, 16, 16), 96.1, "X"},
		{torus.New(16, 32, 16), 99.8, "Y"},
		{torus.New(32, 16, 16), 99.8, "X"},
		{torus.New(32, 32, 16), 96.8, "Z"},
		{torus.New(40, 32, 16), 99.5, "X"},
	}
	shapes := make([]torus.Shape, len(rows))
	for i, r := range rows {
		shapes[i] = r.shape
	}
	t := report.NewTable("Table 3: Two Phase Schedule percent of peak (long messages)",
		"Partition", "Paper %", "Measured %", "Paper dim", "Chosen dim")
	out, err := cfg.stratRows("table3", collective.StratTPS, shapes)
	if err != nil {
		return t, err
	}
	for i, r := range rows {
		t.AddRow(out[i].label, r.paper, out[i].res.PercentPeak, r.dim, out[i].res.TPSLinearDim.String())
	}
	t.AddNote("on fully symmetric shapes any linear dimension is equivalent; the paper picked Z for 8x8x8, this implementation picks X")
	return t, nil
}

// Table4 reproduces the 1-byte all-to-all latency comparison between TPS
// and AR. Latencies are reported in calibrated milliseconds; scaled
// partitions are proportionally faster, so the comparison column is the
// TPS/AR ratio. Both runs of a row share the worker's cached network.
func Table4(cfg Config) (*report.Table, error) {
	rows := []struct {
		shape             torus.Shape
		paperTPS, paperAR float64
	}{
		{torus.New(8, 8, 8), 0.81, 0.52},
		{torus.New(8, 8, 16), 1.64, 1.25},
		{torus.New(16, 16, 16), 7.5, 4.7},
		{torus.New(8, 32, 16), 8.1, 12.4},
		{torus.New(32, 32, 16), 35.9, 65.2},
	}
	type t4out struct {
		label   string
		tps, ar collective.Result
	}
	t := report.NewTable("Table 4: 1-byte all-to-all latency, TPS vs AR (ms)",
		"Partition", "Paper TPS", "Paper AR", "Meas TPS", "Meas AR", "Paper ratio", "Meas ratio")
	out, err := mapRows(cfg, rows, func(cfg Config, cache *collective.NetCache, i int, r struct {
		shape             torus.Shape
		paperTPS, paperAR float64
	}) (t4out, error) {
		start := time.Now()
		run, scaled := cfg.scale(r.shape)
		tps, err := cfg.runCached(collective.StratTPS, cfg.opts(run, 1), cache)
		if err != nil {
			return t4out{}, err
		}
		ar, err := cfg.runCached(collective.StratAR, cfg.opts(run, 1), cache)
		if err != nil {
			return t4out{}, err
		}
		label := shapeLabel(r.shape, run, scaled)
		cfg.rowProgress("  table4 %d/%d %s: TPS %.3fms AR %.3fms (%s)",
			i+1, len(rows), label, tps.Seconds*1e3, ar.Seconds*1e3, time.Since(start).Round(time.Millisecond))
		return t4out{label: label, tps: tps, ar: ar}, nil
	})
	if err != nil {
		return t, err
	}
	for i, r := range rows {
		t.AddRow(out[i].label,
			r.paperTPS, r.paperAR,
			fmt.Sprintf("%.3f", out[i].tps.Seconds*1e3), fmt.Sprintf("%.3f", out[i].ar.Seconds*1e3),
			fmt.Sprintf("%.2f", r.paperTPS/r.paperAR),
			fmt.Sprintf("%.2f", out[i].tps.Seconds/out[i].ar.Seconds))
	}
	t.AddNote("the sign flip matters: TPS is slower than AR on small partitions and faster on large asymmetric ones")
	return t, nil
}

// figSweep renders a message-size sweep of per-node throughput (MB/s) for
// one or more strategies, with optional model columns. The (strategy, size)
// grid is flattened into one job list so the pool stays busy even when one
// strategy's points dominate the runtime.
func figSweep(cfg Config, title string, paper torus.Shape, strats []collective.Strategy,
	sizes []int, withModel bool, vmeshCols, vmeshRows int, vmeshOrder *[3]torus.Dim) (*report.Table, error) {
	run, scaled := cfg.scale(paper)
	calib := model.DefaultCalib()
	cols := []string{"MsgBytes"}
	for _, s := range strats {
		cols = append(cols, string(s)+" MB/s", string(s)+" %peak")
	}
	if withModel {
		cols = append(cols, "Eq3 MB/s", "Peak MB/s")
	}
	t := report.NewTable(title, cols...)
	if scaled {
		t.AddNote("partition scaled from %v to %v (node budget); aspect ratio preserved", paper, run)
	}
	stratOpts := make([]collective.Options, len(strats))
	for i, s := range strats {
		opts := cfg.opts(run, 1)
		if s == collective.StratVMesh && vmeshCols > 0 {
			vc, vr := vmeshCols, vmeshRows
			if scaled {
				vc, vr = collective.BalancedFactor(run.P())
			}
			opts.VMeshCols, opts.VMeshRows = vc, vr
			opts.VMeshMapOrder = vmeshOrder
		}
		stratOpts[i] = opts
	}
	type job struct{ si, mi int }
	jobs := make([]job, 0, len(strats)*len(sizes))
	for si := range strats {
		for mi := range sizes {
			jobs = append(jobs, job{si, mi})
		}
	}
	flat, err := mapRows(cfg, jobs, func(cfg Config, cache *collective.NetCache, _ int, j job) (collective.Result, error) {
		start := time.Now()
		opts := stratOpts[j.si]
		opts.MsgBytes = sizes[j.mi]
		// stratOpts was built before the fan-out size was known; redo the
		// engine choice with the actual batch.
		opts.Shards = cfg.shardsFor(run.P())
		res, err := cfg.runCached(strats[j.si], opts, cache)
		if err != nil {
			return res, fmt.Errorf("sweep: %s at m=%d: %w", strats[j.si], sizes[j.mi], err)
		}
		cfg.rowProgress("  %s m=%d: %.1f MB/s (%s)",
			strats[j.si], sizes[j.mi], res.PerNodeMBs, time.Since(start).Round(time.Millisecond))
		return res, nil
	})
	if err != nil {
		return t, err
	}
	series := make([][]collective.Result, len(strats))
	for i := range series {
		series[i] = flat[i*len(sizes) : (i+1)*len(sizes)]
	}
	for j, m := range sizes {
		row := []any{m}
		for i := range strats {
			r := series[i][j]
			row = append(row, r.PerNodeMBs, r.PercentPeak)
		}
		if withModel {
			eq3 := model.DirectTime(calib, run, m)
			row = append(row,
				model.PerNodeBandwidth(calib, run, m, eq3),
				model.PeakPerNodeBandwidth(calib, run))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig1 reproduces the AR throughput-vs-message-size curve with the model
// prediction on the 512-node midplane.
func Fig1(cfg Config) (*report.Table, error) {
	return figSweep(cfg, "Figure 1: AR measured vs model on 8x8x8",
		torus.New(8, 8, 8), []collective.Strategy{collective.StratAR},
		sweep.MessageSizes(1, 4096), true, 0, 0, nil)
}

// Fig2 is the same study on a 4096-node 16x16x16 partition.
func Fig2(cfg Config) (*report.Table, error) {
	return figSweep(cfg, "Figure 2: AR measured vs model on 16x16x16",
		torus.New(16, 16, 16), []collective.Strategy{collective.StratAR},
		sweep.MessageSizes(1, 4096), true, 0, 0, nil)
}

// Fig3 reproduces the per-node throughput summary across partitions: the
// bisection-limited peak, a one-packet all-to-all, and a large-message
// all-to-all. Both runs of a row share the worker's cached network.
func Fig3(cfg Config) (*report.Table, error) {
	shapes := []torus.Shape{
		torus.New(8, 8, 1),
		torus.New(8, 8, 8),
		torus.New(8, 8, 16),
		torus.New(8, 16, 16),
		torus.New(8, 32, 16),
		torus.New(16, 16, 16),
	}
	calib := model.DefaultCalib()
	type f3out struct {
		label         string
		onePkt, large collective.Result
		run           torus.Shape
	}
	t := report.NewTable("Figure 3: AR per-node throughput (MB/s) by partition",
		"Partition", "Peak bisection", "1-packet AA", "Large-message AA")
	out, err := mapRows(cfg, shapes, func(cfg Config, cache *collective.NetCache, i int, paper torus.Shape) (f3out, error) {
		start := time.Now()
		run, scaled := cfg.scale(paper)
		onePkt, err := cfg.runCached(collective.StratAR, cfg.opts(run, 240), cache)
		if err != nil {
			return f3out{}, err
		}
		large, err := cfg.runCached(collective.StratAR, cfg.opts(run, cfg.largeFor(run)), cache)
		if err != nil {
			return f3out{}, err
		}
		label := shapeLabel(paper, run, scaled)
		cfg.rowProgress("  fig3 %d/%d %s (%s)", i+1, len(shapes), label, time.Since(start).Round(time.Millisecond))
		return f3out{label: label, onePkt: onePkt, large: large, run: run}, nil
	})
	if err != nil {
		return t, err
	}
	for _, o := range out {
		t.AddRow(o.label, model.PeakPerNodeBandwidth(calib, o.run), o.onePkt.PerNodeMBs, o.large.PerNodeMBs)
	}
	return t, nil
}

// Fig4 reproduces the direct-strategy comparison (AR, DR, throttled AR)
// across partition shapes, including DR's dimension-order dependence. The
// three runs of a row share the worker's cached network.
func Fig4(cfg Config) (*report.Table, error) {
	shapes := []torus.Shape{
		torus.New(8, 8, 8),
		torus.New(16, 8, 8),
		torus.New(8, 16, 8),
		torus.New(8, 8, 16),
		torus.New(8, 16, 16),
		torus.New(8, 32, 16),
	}
	type f4out struct {
		label      string
		ar, dr, th collective.Result
	}
	t := report.NewTable("Figure 4: percent of peak for direct strategies (large messages)",
		"Partition", "AR %", "DR %", "Throttled %")
	out, err := mapRows(cfg, shapes, func(cfg Config, cache *collective.NetCache, i int, paper torus.Shape) (f4out, error) {
		start := time.Now()
		run, scaled := cfg.scale(paper)
		m := cfg.largeFor(run)
		ar, err := cfg.runCached(collective.StratAR, cfg.opts(run, m), cache)
		if err != nil {
			return f4out{}, err
		}
		dr, err := cfg.runCached(collective.StratDR, cfg.opts(run, m), cache)
		if err != nil {
			return f4out{}, err
		}
		th, err := cfg.runCached(collective.StratThrottle, cfg.opts(run, m), cache)
		if err != nil {
			return f4out{}, err
		}
		label := shapeLabel(paper, run, scaled)
		cfg.rowProgress("  fig4 %d/%d %s (%s)", i+1, len(shapes), label, time.Since(start).Round(time.Millisecond))
		return f4out{label: label, ar: ar, dr: dr, th: th}, nil
	})
	if err != nil {
		return t, err
	}
	for _, o := range out {
		t.AddRow(o.label, o.ar.PercentPeak, o.dr.PercentPeak, o.th.PercentPeak)
	}
	t.AddNote("DR should lead AR when the longest dimension is X (deterministic routing starts packets on X links)")
	return t, nil
}

// Fig5 reproduces the VMesh measurement against its Equation 4 prediction
// on 512 nodes (32x16 virtual mesh).
func Fig5(cfg Config) (*report.Table, error) {
	paper := torus.New(8, 8, 8)
	run, scaled := cfg.scale(paper)
	calib := model.DefaultCalib()
	vc, vr := collective.BalancedFactor(run.P())
	t := report.NewTable(fmt.Sprintf("Figure 5: VMesh (%dx%d) measured vs Eq4 prediction on %v", vc, vr, run),
		"MsgBytes", "Measured MB/s", "Eq4 MB/s")
	if scaled {
		t.AddNote("partition scaled from %v to %v", paper, run)
	}
	sizes := sweep.MessageSizes(1, 512)
	out, err := mapRows(cfg, sizes, func(cfg Config, cache *collective.NetCache, _ int, m int) (collective.Result, error) {
		opts := cfg.opts(run, m)
		opts.VMeshCols, opts.VMeshRows = vc, vr
		res, err := cfg.runCached(collective.StratVMesh, opts, cache)
		if err != nil {
			return res, err
		}
		cfg.rowProgress("  fig5 m=%d: %.1f MB/s", m, res.PerNodeMBs)
		return res, nil
	})
	if err != nil {
		return t, err
	}
	for j, m := range sizes {
		pred := model.VMeshTime(calib, run, vc, vr, m)
		t.AddRow(m, out[j].PerNodeMBs, model.PerNodeBandwidth(calib, run, m, pred))
	}
	return t, nil
}

// Fig6 reproduces the AR-vs-VMesh comparison on 512 nodes: VMesh wins below
// the 32-64 byte crossover, loses about 2x for large messages.
func Fig6(cfg Config) (*report.Table, error) {
	return figSweep(cfg, "Figure 6: AA comparison on 8x8x8 (short messages)",
		torus.New(8, 8, 8),
		[]collective.Strategy{collective.StratAR, collective.StratVMesh},
		sweep.MessageSizes(1, 512), false, 32, 16, nil)
}

// Fig7 reproduces the three-way comparison (AR, TPS, VMesh) on the
// asymmetric 4096-node 8x32x16 partition.
func Fig7(cfg Config) (*report.Table, error) {
	return figSweep(cfg, "Figure 7: AA comparison on 8x32x16 (short messages)",
		torus.New(8, 32, 16),
		[]collective.Strategy{collective.StratAR, collective.StratTPS, collective.StratVMesh},
		sweep.MessageSizes(1, 256), false, 128, 32, &[3]torus.Dim{torus.X, torus.Z, torus.Y})
}
