package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"alltoall/internal/collective"
	"alltoall/internal/observe"
)

// ObserveSchemaVersion is the schema version of the observation summaries
// and traces a TraceSink records (observe.SchemaVersion, re-exported so
// cmd/aabench need not import observe).
const ObserveSchemaVersion = observe.SchemaVersion

// ObservedRun is one instrumented collective run recorded by a TraceSink:
// its identifying label, the run-level observation summary, and (when the
// sink keeps traces) the windowed JSONL trace.
type ObservedRun struct {
	Label   string
	Summary *observe.Summary
	Trace   []byte
}

// TraceSink collects per-run observations from an experiment's concurrent
// workers (Config.Trace). Runs are recorded in completion order under a
// lock and re-sorted by label on read, so the rendered output is
// deterministic at any worker count.
type TraceSink struct {
	keepTrace bool

	mu   sync.Mutex
	runs []ObservedRun
}

// NewTraceSink returns a sink; keepTrace retains each run's windowed JSONL
// trace (for -trace-out) in addition to its summary.
func NewTraceSink(keepTrace bool) *TraceSink {
	return &TraceSink{keepTrace: keepTrace}
}

// note records one completed run's observation.
func (t *TraceSink) note(prefix string, strat collective.Strategy, opts *collective.Options, c *observe.Collector) error {
	r := ObservedRun{
		Label:   fmt.Sprintf("%s %s %v m=%d seed=%d", prefix, strat, opts.Shape, opts.MsgBytes, opts.Seed),
		Summary: c.Summary(),
	}
	if t.keepTrace {
		var b bytes.Buffer
		if err := c.WriteTrace(&b); err != nil {
			return err
		}
		r.Trace = b.Bytes()
	}
	t.mu.Lock()
	t.runs = append(t.runs, r)
	t.mu.Unlock()
	return nil
}

// Runs returns the recorded runs sorted by label; runs sharing a label
// (repeated configurations) tie-break on content, so the order never
// depends on worker scheduling.
func (t *TraceSink) Runs() []ObservedRun {
	t.mu.Lock()
	out := append([]ObservedRun(nil), t.runs...)
	t.mu.Unlock()
	key := func(r ObservedRun) string {
		s, _ := json.Marshal(r.Summary)
		return r.Label + "\x00" + string(s) + "\x00" + string(r.Trace)
	}
	sort.Slice(out, func(i, j int) bool { return key(out[i]) < key(out[j]) })
	return out
}

// traceRunRecord delimits one run's trace in the concatenated JSONL file.
type traceRunRecord struct {
	SchemaVersion int    `json:"schema_version"`
	Record        string `json:"record"` // "run"
	Label         string `json:"label"`
}

// WriteJSONL writes every kept trace as one JSONL stream: a "run" record
// naming each run, followed by that run's header and window records.
func (t *TraceSink) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Runs() {
		if err := enc.Encode(traceRunRecord{
			SchemaVersion: observe.SchemaVersion,
			Record:        "run",
			Label:         r.Label,
		}); err != nil {
			return err
		}
		if _, err := w.Write(r.Trace); err != nil {
			return err
		}
	}
	return nil
}
