package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/report"
	"alltoall/internal/torus"
)

// KillSchedule returns a deterministic t=0 fault schedule permanently
// killing k distinct output links of shape, chosen by seed. Kills land only
// on wrapped dimensions and at most one per torus ring, so the long way
// around every ring stays available and no destination becomes unreachable.
func KillSchedule(shape torus.Shape, k int, seed uint64) (*network.FaultSchedule, error) {
	type cand struct {
		node int32
		dim  int
	}
	p := shape.P()
	var cands []cand
	for phys := 0; phys < p; phys++ {
		for d := 0; d < torus.NumDims; d++ {
			if shape.Wrap[d] {
				cands = append(cands, cand{int32(phys), d})
			}
		}
	}
	rng := rand.New(rand.NewSource(int64(seed)*0x9E3779B9 + 0xFA017))
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	fs := &network.FaultSchedule{}
	usedRing := make(map[int]bool)
	for _, c := range cands {
		if len(fs.Events) == k {
			break
		}
		// The ring a link belongs to is its node's coordinate with the
		// link's dimension zeroed; one kill per ring keeps it a path.
		coord := shape.Coords(int(c.node))
		coord[c.dim] = 0
		ring := c.dim*p + shape.Rank(coord)
		if usedRing[ring] {
			continue
		}
		usedRing[ring] = true
		fs.Events = append(fs.Events, network.FaultEvent{
			T: 0, Node: c.node, Dir: 2 * c.dim, Action: network.FaultKill,
		})
	}
	if len(fs.Events) < k {
		return nil, fmt.Errorf("experiments: %v has only %d independent torus rings, cannot kill %d links",
			shape, len(fs.Events), k)
	}
	return fs, nil
}

// Degrade produces the graceful-degradation curve the fault subsystem
// exists to answer: completion-time slowdown versus permanently dead links,
// for the Two Phase Schedule and the deterministic XYZ baseline on the
// 8x8x8 midplane. Adaptive rerouting should bend the curve; a schedule that
// cannot adapt pays the full serialization behind each dead ring.
func Degrade(cfg Config) (*report.Table, error) {
	paper := torus.New(8, 8, 8)
	run, scaled := cfg.scale(paper)
	ks := []int{0, 1, 2, 4, 8}
	strats := []collective.Strategy{collective.StratTPS, collective.StratXYZ}
	t := report.NewTable(
		fmt.Sprintf("Degradation: slowdown vs dead links on %v (large messages)", run),
		"Dead links", "TPS %peak", "TPS slowdown", "XYZ %peak", "XYZ slowdown")
	if scaled {
		t.AddNote("partition scaled from %v to %v (node budget)", paper, run)
	}
	// Each job carries its own kill schedule; a -faults spec passed on the
	// config would fight the sweep, so it is ignored here.
	cfg.Faults = ""
	m := cfg.largeFor(run)
	type job struct{ si, ki int }
	jobs := make([]job, 0, len(strats)*len(ks))
	for si := range strats {
		for ki := range ks {
			jobs = append(jobs, job{si, ki})
		}
	}
	flat, err := mapRows(cfg, jobs, func(cfg Config, cache *collective.NetCache, _ int, j job) (collective.Result, error) {
		start := time.Now()
		opts := cfg.opts(run, m)
		opts.Shards = cfg.shardsFor(run.P())
		if k := ks[j.ki]; k > 0 {
			fs, err := KillSchedule(run, k, cfg.Seed)
			if err != nil {
				return collective.Result{}, err
			}
			opts.Faults = fs
		}
		res, err := cfg.runCached(strats[j.si], opts, cache)
		if err != nil {
			return res, fmt.Errorf("degrade: %s with %d dead links: %w", strats[j.si], ks[j.ki], err)
		}
		cfg.rowProgress("  degrade %s k=%d: %.1f%% of peak, %d reroutes (%s)",
			strats[j.si], ks[j.ki], res.PercentPeak, res.Reroutes, time.Since(start).Round(time.Millisecond))
		return res, nil
	})
	if err != nil {
		return t, err
	}
	series := make([][]collective.Result, len(strats))
	for i := range series {
		series[i] = flat[i*len(ks) : (i+1)*len(ks)]
	}
	for j, k := range ks {
		row := []any{k}
		for i := range strats {
			r := series[i][j]
			row = append(row, r.PercentPeak,
				fmt.Sprintf("%.2fx", float64(r.Time)/float64(series[i][0].Time)))
		}
		t.AddRow(row...)
	}
	t.AddNote("slowdown is completion time relative to the healthy run of the same strategy")
	return t, nil
}
