package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"alltoall/internal/collective"
	"alltoall/internal/network"
	"alltoall/internal/observe"
	"alltoall/internal/parallel"
)

// Metrics accumulates simulator work across the (possibly concurrent) runs
// of one or more experiments: completed collective runs, simulator events
// processed, packets injected, and the sharded engine's synchronization
// counters (horizon advances, blocked waits, cross-shard traffic). All
// methods are safe for concurrent use; a nil *Metrics discards everything.
type Metrics struct {
	runs    atomic.Int64
	events  atomic.Int64
	queued  atomic.Int64
	packets atomic.Int64

	syncAdvances atomic.Int64
	syncWaits    atomic.Int64
	syncWaitNs   atomic.Int64
	syncXEvents  atomic.Int64
	syncXBytes   atomic.Int64
}

func (m *Metrics) note(r collective.Result) {
	if m == nil {
		return
	}
	m.runs.Add(1)
	m.events.Add(r.Events)
	m.queued.Add(r.QueuedEvents)
	m.packets.Add(r.PacketsInjected)
}

// noteSync folds one run's synchronization counters into the totals. These
// ride outside the Result (they are timing-dependent machine facts, not part
// of the byte-identity contract), so runCached collects them through the
// Options.SyncStats out-parameter.
func (m *Metrics) noteSync(ss *network.SyncStats) {
	if m == nil {
		return
	}
	m.syncAdvances.Add(ss.HorizonAdvances)
	m.syncWaits.Add(ss.BlockedWaits)
	m.syncWaitNs.Add(ss.BlockedWaitNs)
	m.syncXEvents.Add(ss.CrossShardEvents)
	m.syncXBytes.Add(ss.CrossShardBytes)
}

// Runs returns the number of completed collective runs.
func (m *Metrics) Runs() int64 {
	if m == nil {
		return 0
	}
	return m.runs.Load()
}

// Events returns the total simulator events processed.
func (m *Metrics) Events() int64 {
	if m == nil {
		return 0
	}
	return m.events.Load()
}

// QueuedEvents returns the total events popped from the pending-event
// queues: smaller than Events() when coalescing folds logical credits and
// arrivals into shared markers.
func (m *Metrics) QueuedEvents() int64 {
	if m == nil {
		return 0
	}
	return m.queued.Load()
}

// Packets returns the total packets injected.
func (m *Metrics) Packets() int64 {
	if m == nil {
		return 0
	}
	return m.packets.Load()
}

// EventsPerPacket returns the queued-event volume per injected packet, the
// hardware-independent event-volume metric the bench regression gate
// watches.
func (m *Metrics) EventsPerPacket() float64 {
	if m == nil || m.packets.Load() == 0 {
		return 0
	}
	return float64(m.queued.Load()) / float64(m.packets.Load())
}

// SyncAdvances returns the total horizon advances across sharded runs: BSP
// windows processed, or async per-shard clock advances.
func (m *Metrics) SyncAdvances() int64 {
	if m == nil {
		return 0
	}
	return m.syncAdvances.Load()
}

// SyncWaits returns the total blocked waits (barrier crossings under BSP,
// blocked backoff episodes under async).
func (m *Metrics) SyncWaits() int64 {
	if m == nil {
		return 0
	}
	return m.syncWaits.Load()
}

// SyncWaitNs returns the total wall-clock nanoseconds shards spent blocked
// waiting for other shards' clocks (async engine only; BSP barrier time is
// not separable from the Await call).
func (m *Metrics) SyncWaitNs() int64 {
	if m == nil {
		return 0
	}
	return m.syncWaitNs.Load()
}

// CrossShardEvents returns the total events that crossed a shard boundary.
func (m *Metrics) CrossShardEvents() int64 {
	if m == nil {
		return 0
	}
	return m.syncXEvents.Load()
}

// CrossShardBytes returns the total bytes shipped across shard boundaries.
func (m *Metrics) CrossShardBytes() int64 {
	if m == nil {
		return 0
	}
	return m.syncXBytes.Load()
}

// progressMu serializes per-row progress lines from concurrent workers so
// they never interleave mid-line, even across experiments.
var progressMu sync.Mutex

// rowProgress emits one progress line to cfg.Progress, if set.
func (c Config) rowProgress(format string, args ...any) {
	if c.Progress == nil {
		return
	}
	progressMu.Lock()
	defer progressMu.Unlock()
	fmt.Fprintf(c.Progress, format+"\n", args...)
}

// runCached executes one collective run through a worker-local network
// cache, recording metrics (and, when tracing, the run's observation) on
// success.
func (c Config) runCached(strat collective.Strategy, opts collective.Options, cache *collective.NetCache) (collective.Result, error) {
	opts.Cache = cache
	if c.Faults != "" {
		fs, err := network.ParseFaults(c.Faults)
		if err != nil {
			return collective.Result{}, fmt.Errorf("fault schedule: %w", err)
		}
		opts.Faults = fs
	}
	var obs *observe.Collector
	if c.Trace != nil {
		obs = observe.New(observe.Config{})
		opts.Observer = obs
	}
	var ss network.SyncStats
	opts.SyncStats = &ss
	res, err := c.dispatch(strat, opts, cache, obs)
	if err != nil {
		return res, err
	}
	c.Metrics.note(res)
	c.Metrics.noteSync(&ss)
	if c.Trace != nil {
		if err := c.Trace.note(c.TracePrefix, strat, &opts, obs); err != nil {
			return res, err
		}
	}
	return res, nil
}

// dispatch routes a run through the canonical Request path when the Options
// are representable as one - the same front door aaserve and the public
// RunRequest use, keeping the experiments engine on the code path the
// serving layer's byte-identity contract is stated for. Options that a
// Request cannot express (ablations overriding machine Params, forced TPS
// dimensions, etc.) fall back to the struct runner; machinery (cache,
// observer) is stripped before canonicalization and re-attached as extras.
func (c Config) dispatch(strat collective.Strategy, opts collective.Options, cache *collective.NetCache, obs *observe.Collector) (collective.Result, error) {
	plain := opts
	plain.Cache = nil
	plain.Observer = nil
	plain.SyncStats = nil
	req, err := collective.NewRequest(strat, plain)
	if err != nil {
		if errors.Is(err, collective.ErrNotCanonical) {
			return collective.Run(strat, opts)
		}
		return collective.Result{}, err
	}
	if obs != nil {
		req.Observe = true
	}
	return collective.RunRequest(context.Background(), req, func(o *collective.Options) {
		o.Cache = cache
		o.Observer = opts.Observer
		o.SyncStats = opts.SyncStats
	})
}

// mapRows fans an experiment's independent rows (or sweep points) across
// the config's worker pool. Each worker gets a private network cache so
// consecutive rows on one shape reuse simulator allocations; results come
// back in row order regardless of scheduling, so rendered tables are
// identical at any worker count. The Config handed to fn carries the
// fan-out size, letting opts trade run-level against intra-run parallelism
// (see Config.shardsFor); callbacks shadow the outer cfg with it.
func mapRows[T, R any](cfg Config, items []T, fn func(cfg Config, cache *collective.NetCache, i int, item T) (R, error)) ([]R, error) {
	cfg.batch = len(items)
	return parallel.MapLocal(context.Background(), cfg.Workers, items,
		func() *collective.NetCache { return &collective.NetCache{} },
		func(_ context.Context, cache *collective.NetCache, i int, item T) (R, error) {
			return fn(cfg, cache, i, item)
		})
}
