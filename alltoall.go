// Package alltoall reproduces "Performance Analysis and Optimization of
// All-to-all Communication on the Blue Gene/L Supercomputer" (Kumar &
// Heidelberger, IBM Research / ICPP 2008) as a simulation study.
//
// It bundles three things:
//
//   - a packet-level discrete-event simulator of the Blue Gene/L 3D torus
//     interconnect (internal/network): input-queued routers with two
//     dynamic virtual channels and a bubble escape channel, token flow
//     control, virtual cut-through, minimal adaptive routing with
//     join-the-shortest-queue output selection, injection/reception FIFOs
//     and a serial CPU model for packet handling;
//
//   - the paper's all-to-all strategies (internal/collective): the direct
//     randomized AR scheme on adaptive routing, DR on deterministic
//     dimension-ordered routing, bisection-rate throttling, an MPI-style
//     baseline, the Two Phase Schedule (TPS) for asymmetric tori, and the
//     2D virtual-mesh message-combining scheme (VMesh) for short messages;
//
//   - the paper's analytic performance model (internal/model): Equations
//     1-4 and the measured Blue Gene/L calibration constants.
//
// Times are reported both in abstract units (1 unit = 1 byte-time on a
// torus link, beta = 6.48 ns) and in calibrated seconds.
//
// A minimal session:
//
//	res, err := alltoall.RunContext(ctx, alltoall.TPS,
//		alltoall.WithShape(alltoall.NewTorus(8, 32, 16)),
//		alltoall.WithMsgBytes(1024))
//	fmt.Printf("%.1f%% of peak\n", res.PercentPeak)
//
// The same configuration as a canonical, cacheable job value:
//
//	req, _ := alltoall.NewRequest(alltoall.TPS,
//		alltoall.WithShape(alltoall.NewTorus(8, 32, 16)),
//		alltoall.WithMsgBytes(1024))
//	res, err := alltoall.RunRequest(ctx, req) // req.Key() identifies the result
//
// Long-lived serving of such jobs over HTTP is cmd/aaserve.
package alltoall

import (
	"alltoall/internal/collective"
	"alltoall/internal/model"
	"alltoall/internal/network"
	"alltoall/internal/torus"
)

// Shape describes a 3D torus or mesh partition (per-dimension wrap).
type Shape = torus.Shape

// Dim indexes the torus dimensions X, Y, Z.
type Dim = torus.Dim

// Dimension constants.
const (
	X = torus.X
	Y = torus.Y
	Z = torus.Z
)

// NewTorus returns a fully wrapped partition of the given dimensions; use 1
// to collapse a dimension (lines and planes).
func NewTorus(x, y, z int) Shape { return torus.New(x, y, z) }

// NewMesh returns a partition with per-dimension wrap control ("M"
// dimensions in the paper's Table 2 are meshes).
func NewMesh(x, y, z int, wrapX, wrapY, wrapZ bool) Shape {
	return torus.NewMesh(x, y, z, wrapX, wrapY, wrapZ)
}

// Strategy names an all-to-all algorithm.
type Strategy = collective.Strategy

// The implemented strategies.
const (
	AR       = collective.StratAR       // direct, randomized, adaptive routing
	DR       = collective.StratDR       // direct, deterministic dimension-order routing
	Throttle = collective.StratThrottle // AR with strict bisection-rate injection
	MPI      = collective.StratMPI      // production MPI-style baseline
	TPS      = collective.StratTPS      // Two Phase Schedule (indirect, asymmetric tori)
	VMesh    = collective.StratVMesh    // 2D virtual-mesh combining (short messages)
	XYZ      = collective.StratXYZ      // 3-phase dimension-ordered indirect (Randomaccess-style)
)

// Strategies lists every implemented strategy.
func Strategies() []Strategy { return collective.Strategies() }

// Options configures a run; see collective.Options for field documentation.
type Options = collective.Options

// Result reports a run; see collective.Result for field documentation.
type Result = collective.Result

// Params configures the simulated machine; the zero value in Options
// selects network.DefaultParams.
type Params = network.Params

// DefaultParams returns the Blue Gene/L-derived machine calibration.
func DefaultParams() Params { return network.DefaultParams() }

// Sharded-engine synchronization protocols, for WithSync / Request.Sync.
const (
	SyncAsync = network.SyncAsync // asynchronous conservative engine (default)
	SyncBSP   = network.SyncBSP   // lockstep window-barrier escape hatch
)

// Calib holds the paper's measured model constants.
type Calib = model.Calib

// DefaultCalib returns the constants measured in the paper (Section 3).
func DefaultCalib() Calib { return model.DefaultCalib() }

// Run executes one all-to-all with the given strategy. It is the legacy
// struct-options entry point, kept as a thin wrapper over the same internal
// configuration.
//
// Deprecated: prefer RunContext (cancellation, functional options,
// observability; see the Option docs for precedence rules) or RunRequest
// (the canonical, cacheable job form shared with the aaserve service).
func Run(strat Strategy, opts Options) (Result, error) {
	return collective.Run(strat, opts)
}

// PeakTime returns the Equation 2 network-limited all-to-all time in time
// units for per-pair payload m: T = P * C * m with contention factor
// C = M/8 on a torus.
func PeakTime(s Shape, m int) float64 { return model.PeakTime(s, m) }

// PredictDirect returns the Equation 3 analytic prediction for the direct
// strategies, in time units.
func PredictDirect(c Calib, s Shape, m int) float64 { return model.DirectTime(c, s, m) }

// PredictVMesh returns the Equation 4 analytic prediction for the virtual
// mesh scheme with factorization pvx x pvy, in time units.
func PredictVMesh(c Calib, s Shape, pvx, pvy, m int) float64 {
	return model.VMeshTime(c, s, pvx, pvy, m)
}

// SelectTPSLinearDim exposes the Two Phase Schedule's phase-1 dimension
// rule (Section 4.1).
func SelectTPSLinearDim(s Shape) Dim { return collective.SelectTPSLinearDim(s) }

// BalancedVMeshFactor returns the default row/column factorization used by
// the virtual-mesh scheme.
func BalancedVMeshFactor(p int) (cols, rows int) { return collective.BalancedFactor(p) }
